"""DEFLATE-like container: LZ77 tokens entropy-coded with canonical Huffman.

This is the package's "gzip" scheme.  It follows DEFLATE's structure —
a merged literal/length alphabet with extra bits, a separate distance
alphabet, blockwise dynamic Huffman tables, and stored-block fallback for
incompressible data — without being bit-compatible with RFC 1951 (the
container is byte-aligned per block and carries explicit table lengths,
which keeps the decoder simple and auditable).

Stream layout::

    magic "RZ1"  |  varint raw_size  |  u32le crc32(raw)  |  block*

    block := varint block_raw_len | u8 type | body
    type 0 (stored):  raw bytes (block_raw_len of them)
    type 1 (coded):   varint body_len | flat tables + symbols
    type 2 (coded):   varint body_len | run-length tables + symbols

Within a coded body (MSB-first bits): the literal/length and distance
code-length tables, then Huffman-coded symbols terminated by the
end-of-block symbol 256.  Type 1 stores the 316 lengths flat at 4 bits
each; type 2 run-length-codes them the way RFC 1951 does (symbol 16:
repeat previous 3-6 times, 17: zero-run 3-10, 18: zero-run 11-138),
which cuts the per-block table cost from ~158 bytes to ~25 on typical
data — the difference between a usable and an unusable factor on
small files.  The encoder emits whichever body is smaller.

The header CRC32 covers the *raw* bytes and is verified after decode:
stored blocks would otherwise pass corrupt bytes through silently, and
a desynchronized Huffman stream can decode to plausible garbage of the
right length.  gzip carries the same trailer CRC for the same reason.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.compression import lz77
from repro.compression.base import Codec, register_codec
from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression import checksum
from repro.compression import huffman as huffman_mod
from repro.compression.huffman import HuffmanTable
from repro.compression.varint import read_varint, write_varint
from repro.errors import CorruptStreamError, TruncatedStreamError

_MAGIC = b"RZ1"
_EOB = 256
_NUM_LITLEN = 286
_NUM_DIST = 30
#: Tables are serialized as 4-bit lengths, so codes are capped at 14 bits.
_TABLE_MAX_LEN = 14

#: Default block size in raw bytes; mirrors the paper's 0.128 MB buffer.
DEFAULT_BLOCK_SIZE = 128 * 1024


def _build_length_table() -> Tuple[List[Tuple[int, int]], List[int]]:
    """(base, extra_bits) per length code 257..285 and a length->code map."""
    spec = []
    base = 3
    for group, extra in enumerate([0] * 8 + [1] * 4 + [2] * 4 + [3] * 4 + [4] * 4 + [5] * 4):
        spec.append((base, extra))
        base += 1 << extra
    # Code 285 encodes length 258 exactly with 0 extra bits.
    spec = spec[:28]
    spec.append((258, 0))
    length_to_code = [0] * (lz77.MAX_MATCH + 1)
    for idx, (b, extra) in enumerate(spec):
        hi = b + (1 << extra) - 1 if idx < 28 else 258
        for ln in range(b, min(hi, 258) + 1):
            length_to_code[ln] = 257 + idx
    return spec, length_to_code


def _build_distance_table() -> Tuple[List[Tuple[int, int]], List[int]]:
    """(base, extra_bits) per distance code 0..29 and log-range lookup."""
    spec = []
    base = 1
    extras = [0, 0, 0, 0] + [e for e in range(1, 14) for _ in (0, 1)]
    for extra in extras[:_NUM_DIST]:
        spec.append((base, extra))
        base += 1 << extra
    return spec, []


_LEN_SPEC, _LENGTH_TO_CODE = _build_length_table()
_DIST_SPEC, _ = _build_distance_table()


def _distance_code(distance: int) -> int:
    """Map a distance 1..32768 to its distance code."""
    lo, hi = 0, _NUM_DIST - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _DIST_SPEC[mid][0] <= distance:
            lo = mid
        else:
            hi = mid - 1
    return lo


# The table run-length coder is shared with the bzip2-style container.
_encode_lengths_rle = huffman_mod.encode_lengths_rle
_decode_lengths_rle = huffman_mod.decode_lengths_rle


class DeflateCodec(Codec):
    """LZ77 + canonical-Huffman codec (the paper's "gzip" scheme)."""

    name = "gzip"

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        config: lz77.MatcherConfig = lz77.LEVEL_9,
        table_encoding: str = "rle",
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if table_encoding not in ("rle", "flat"):
            raise ValueError("table_encoding must be 'rle' or 'flat'")
        self.block_size = block_size
        self.config = config
        self.table_encoding = table_encoding

    # -- encoding ---------------------------------------------------------

    def compress_bytes(self, data: bytes) -> bytes:
        out = bytearray(_MAGIC)
        out += write_varint(len(data))
        out += checksum.crc32_bytes(data)
        for start in range(0, len(data), self.block_size):
            block = data[start : start + self.block_size]
            out += self._encode_block(block)
        return bytes(out)

    def _encode_block(self, block: bytes) -> bytes:
        tokens = lz77.tokenize(block, self.config)
        coded = self._encode_tokens(tokens)
        header = write_varint(len(block))
        if coded is None or len(coded) >= len(block):
            return bytes(header) + b"\x00" + block
        btype = b"\x02" if self.table_encoding == "rle" else b"\x01"
        return bytes(header) + btype + write_varint(len(coded)) + coded

    def _encode_tokens(self, tokens: Iterable[lz77.Token]) -> bytes:
        litlen_freq = [0] * _NUM_LITLEN
        dist_freq = [0] * _NUM_DIST
        litlen_freq[_EOB] = 1
        toks = list(tokens)
        for tok in toks:
            if isinstance(tok, lz77.Literal):
                litlen_freq[tok.byte] += 1
            else:
                litlen_freq[_LENGTH_TO_CODE[tok.length]] += 1
                dist_freq[_distance_code(tok.distance)] += 1

        litlen = HuffmanTable.from_frequencies(litlen_freq, _TABLE_MAX_LEN)
        dist = HuffmanTable.from_frequencies(dist_freq, _TABLE_MAX_LEN)

        w = MSBBitWriter()
        if self.table_encoding == "rle":
            _encode_lengths_rle(w, litlen.lengths)
            _encode_lengths_rle(w, dist.lengths)
        else:
            for l in litlen.lengths:
                w.write_bits(l, 4)
            for l in dist.lengths:
                w.write_bits(l, 4)
        for tok in toks:
            if isinstance(tok, lz77.Literal):
                litlen.encode_symbol(w, tok.byte)
            else:
                code = _LENGTH_TO_CODE[tok.length]
                litlen.encode_symbol(w, code)
                base, extra = _LEN_SPEC[code - 257]
                if extra:
                    w.write_bits(tok.length - base, extra)
                dcode = _distance_code(tok.distance)
                dist.encode_symbol(w, dcode)
                dbase, dextra = _DIST_SPEC[dcode]
                if dextra:
                    w.write_bits(tok.distance - dbase, dextra)
        litlen.encode_symbol(w, _EOB)
        return w.getvalue()

    # -- decoding ---------------------------------------------------------

    def decompress_bytes(self, payload: bytes) -> bytes:
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("bad magic; not a gzip-scheme stream")
        pos = len(_MAGIC)
        raw_size, pos = read_varint(payload, pos)
        stored_crc, pos = checksum.read_stored_crc(payload, pos)
        out = bytearray()
        index = 0
        while len(out) < raw_size:
            block_start = pos
            block_len, pos = read_varint(payload, pos)
            if pos >= len(payload):
                raise TruncatedStreamError(
                    f"truncated header for block {index} at byte {block_start}"
                )
            btype = payload[pos]
            pos += 1
            if btype == 0:
                block = payload[pos : pos + block_len]
                if len(block) != block_len:
                    raise TruncatedStreamError(
                        f"truncated stored block {index} at byte {block_start}"
                    )
                out += block
                pos += block_len
            elif btype in (1, 2):
                body_len, pos = read_varint(payload, pos)
                body = payload[pos : pos + body_len]
                if len(body) != body_len:
                    raise TruncatedStreamError(
                        f"truncated coded block {index} at byte {block_start}"
                    )
                out += self._decode_tokens(body, block_len, rle_tables=(btype == 2))
                pos += body_len
            else:
                raise CorruptStreamError(
                    f"unknown block type {btype} in block {index} "
                    f"at byte {block_start}"
                )
            index += 1
        if len(out) != raw_size:
            raise CorruptStreamError("decoded size mismatch")
        checksum.verify_crc(self.name, bytes(out), stored_crc)
        return bytes(out)

    def _decode_tokens(
        self, body: bytes, expect_len: int, rle_tables: bool = False
    ) -> bytes:
        r = MSBBitReader(body)
        if rle_tables:
            litlen = HuffmanTable.from_lengths(_decode_lengths_rle(r, _NUM_LITLEN))
            dist = HuffmanTable.from_lengths(_decode_lengths_rle(r, _NUM_DIST))
        else:
            litlen = HuffmanTable.from_lengths(
                [r.read_bits(4) for _ in range(_NUM_LITLEN)]
            )
            dist = HuffmanTable.from_lengths(
                [r.read_bits(4) for _ in range(_NUM_DIST)]
            )
        out = bytearray()
        while True:
            sym = litlen.decode_symbol(r)
            if sym == _EOB:
                break
            if sym < 256:
                out.append(sym)
                continue
            base, extra = _LEN_SPEC[sym - 257]
            length = base + (r.read_bits(extra) if extra else 0)
            dcode = dist.decode_symbol(r)
            dbase, dextra = _DIST_SPEC[dcode]
            distance = dbase + (r.read_bits(dextra) if dextra else 0)
            if distance > len(out):
                raise CorruptStreamError("back-reference before stream start")
            start = len(out) - distance
            for k in range(length):
                out.append(out[start + k])
        if len(out) != expect_len:
            raise CorruptStreamError(
                f"block decoded to {len(out)} bytes, expected {expect_len}"
            )
        return bytes(out)


register_codec("gzip", DeflateCodec)
register_codec("deflate", DeflateCodec)
#: Fast configuration (gzip -1): short hash chains, minimal lazy search.
#: Pairs with the device cost family "gzip-fast" used on the upload path.
register_codec("gzip-1", lambda: DeflateCodec(config=lz77.LEVEL_1))
