"""Codec interface, result record and registry.

Every compression scheme in the package implements :class:`Codec`.  A
module-level registry maps the paper's scheme names ("gzip", "compress",
"bzip2") and engine names ("zlib", "bz2", "lzw-native") to constructors so
that experiment harnesses can select codecs by string.
"""

from __future__ import annotations

import functools
import math
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import units
from repro.errors import (
    CodecError,
    CorruptStreamError,
    ResourceLimitError,
    UnknownCodecError,
)


@dataclass(frozen=True)
class ResourceLimits:
    """Decompression-bomb guards: bounds on what a decode may produce.

    A handheld decompressing an untrusted stream must not be talked into
    materializing gigabytes from a kilobyte of wire bytes.  Two caps,
    both optional (None disables):

    Attributes:
        max_output_bytes: absolute ceiling on decoded output.
        max_expansion_ratio: ceiling on output/payload size.  Tiny
            payloads legitimately expand a lot (headers dominate), so
            the ratio cap never bites below ``expansion_floor_bytes``.
        expansion_floor_bytes: outputs up to this size are always
            allowed by the ratio cap (the absolute cap still applies).

    The defaults are deliberately generous — two decimal orders of
    magnitude above the paper's best real compression factors — so no
    legitimate corpus trips them while a crafted bomb still dies early.
    """

    max_output_bytes: Optional[int] = 1 << 28  # 256 MiB
    max_expansion_ratio: Optional[float] = 4096.0
    expansion_floor_bytes: int = 1 << 16

    def __post_init__(self) -> None:
        if self.max_output_bytes is not None and self.max_output_bytes <= 0:
            raise CodecError("max_output_bytes must be positive or None")
        if self.max_expansion_ratio is not None and not (
            math.isfinite(self.max_expansion_ratio)
            and self.max_expansion_ratio > 0
        ):
            raise CodecError(
                "max_expansion_ratio must be finite and positive or None"
            )
        if self.expansion_floor_bytes < 0:
            raise CodecError("expansion_floor_bytes must be non-negative")

    def output_cap(self, payload_len: int) -> Optional[int]:
        """Largest decoded output allowed for a payload of this size."""
        caps = []
        if self.max_output_bytes is not None:
            caps.append(self.max_output_bytes)
        if self.max_expansion_ratio is not None:
            caps.append(
                max(
                    self.expansion_floor_bytes,
                    int(payload_len * self.max_expansion_ratio),
                )
            )
        return min(caps) if caps else None

    def check_output(
        self, produced: int, payload_len: int, context: str
    ) -> None:
        """Raise :class:`ResourceLimitError` if ``produced`` is over cap."""
        cap = self.output_cap(payload_len)
        if cap is not None and produced > cap:
            raise ResourceLimitError(
                f"{context}: decoded output of {produced} bytes exceeds the "
                f"resource cap of {cap} bytes for a {payload_len}-byte "
                f"payload (decompression bomb?)"
            )


#: The guard every codec carries unless overridden via ``with_limits``.
DEFAULT_LIMITS = ResourceLimits()

#: Opt-out sentinel for callers that genuinely need unbounded decodes.
UNLIMITED = ResourceLimits(
    max_output_bytes=None, max_expansion_ratio=None
)

#: Exception types that a malformed stream may provoke inside a decoder
#: (bad dict/list lookups, struct unpacking, text decoding, arithmetic on
#: nonsense values).  The decode guard converts these to
#: :class:`~repro.errors.CorruptStreamError` so callers see one typed
#: hierarchy regardless of where inside a codec the corruption surfaced.
_DECODE_FAULTS = (
    ValueError,
    KeyError,
    IndexError,
    struct.error,
    OverflowError,
    UnicodeDecodeError,
)


def _guard_decode(func):
    """Wrap a ``decompress_bytes`` so stray exceptions become typed.

    Also the backstop for the resource limits: whatever a decoder
    produced is checked against the codec's :class:`ResourceLimits`
    before it is handed to the caller.  Engines with incremental caps
    (zlib, bz2) trip earlier, mid-decode; pure-Python codecs trip here.
    """

    @functools.wraps(func)
    def wrapper(self, payload: bytes) -> bytes:
        try:
            out = func(self, payload)
        except CodecError:
            raise
        except _DECODE_FAULTS as exc:
            raise CorruptStreamError(
                f"{self.name}: malformed stream "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        self.limits.check_output(len(out), len(payload), self.name)
        return out

    wrapper._decode_guarded = True
    return wrapper


@dataclass(frozen=True)
class CodecResult:
    """Outcome of one compression call.

    Attributes:
        payload: the compressed byte stream.
        raw_size: input length in bytes.
        compressed_size: output length in bytes.
    """

    payload: bytes
    raw_size: int
    compressed_size: int

    @property
    def factor(self) -> float:
        """Compression factor (input size over output size, Section 3)."""
        return units.compression_factor(self.raw_size, self.compressed_size)

    @property
    def ratio(self) -> float:
        """Compression ratio (reciprocal of the factor)."""
        return units.compression_ratio(self.raw_size, self.compressed_size)


class Codec(ABC):
    """Abstract lossless codec.

    Subclasses must be *universal*: no prior assumption on input statistics,
    and ``decompress(compress(x).payload) == x`` for every byte string.
    """

    #: Registry key and display name, e.g. ``"gzip"``.
    name: str = "abstract"

    #: Decompression-bomb guard consulted on every decode.
    limits: ResourceLimits = DEFAULT_LIMITS

    def with_limits(self, limits: ResourceLimits) -> "Codec":
        """Set this codec's resource limits and return it (chainable)."""
        if not isinstance(limits, ResourceLimits):
            raise CodecError(
                f"limits must be a ResourceLimits, got {type(limits).__name__}"
            )
        self.limits = limits
        return self

    def __init_subclass__(cls, **kwargs) -> None:
        """Harden every concrete decoder automatically.

        Any subclass that defines its own ``decompress_bytes`` gets it
        wrapped so that non-:class:`~repro.errors.CodecError` exceptions
        provoked by malformed input (``ValueError``, ``KeyError``,
        ``IndexError``, ``struct.error``, ...) re-raise as
        :class:`~repro.errors.CorruptStreamError` — corrupt bytes must
        never leak an untyped exception to a recovery policy.
        """
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("decompress_bytes")
        if impl is not None and not getattr(impl, "_decode_guarded", False):
            cls.decompress_bytes = _guard_decode(impl)

    @abstractmethod
    def compress_bytes(self, data: bytes) -> bytes:
        """Return the compressed representation of ``data``."""

    @abstractmethod
    def decompress_bytes(self, payload: bytes) -> bytes:
        """Invert :meth:`compress_bytes`."""

    def compress(self, data: bytes) -> CodecResult:
        """Compress ``data`` and return sizes alongside the payload."""
        payload = self.compress_bytes(data)
        return CodecResult(
            payload=payload, raw_size=len(data), compressed_size=len(payload)
        )

    def decompress(self, result_or_payload) -> bytes:
        """Decompress either a :class:`CodecResult` or a raw payload."""
        if isinstance(result_or_payload, CodecResult):
            return self.decompress_bytes(result_or_payload.payload)
        return self.decompress_bytes(result_or_payload)

    def factor(self, data: bytes) -> float:
        """Convenience: compression factor achieved on ``data``."""
        return self.compress(data).factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: Dict[str, Callable[[], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec constructor under ``name`` (lowercase)."""
    _REGISTRY[name.lower()] = factory


def get_codec(name: str) -> Codec:
    """Instantiate the codec registered under ``name``.

    Raises :class:`~repro.errors.UnknownCodecError` for unknown names.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownCodecError(f"unknown codec {name!r}; known: {known}") from None
    return factory()


def available_codecs() -> List[str]:
    """Sorted list of registered codec names."""
    return sorted(_REGISTRY)
