"""Codec interface, result record and registry.

Every compression scheme in the package implements :class:`Codec`.  A
module-level registry maps the paper's scheme names ("gzip", "compress",
"bzip2") and engine names ("zlib", "bz2", "lzw-native") to constructors so
that experiment harnesses can select codecs by string.
"""

from __future__ import annotations

import functools
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro import units
from repro.errors import CodecError, CorruptStreamError, UnknownCodecError

#: Exception types that a malformed stream may provoke inside a decoder
#: (bad dict/list lookups, struct unpacking, text decoding, arithmetic on
#: nonsense values).  The decode guard converts these to
#: :class:`~repro.errors.CorruptStreamError` so callers see one typed
#: hierarchy regardless of where inside a codec the corruption surfaced.
_DECODE_FAULTS = (
    ValueError,
    KeyError,
    IndexError,
    struct.error,
    OverflowError,
    UnicodeDecodeError,
)


def _guard_decode(func):
    """Wrap a ``decompress_bytes`` so stray exceptions become typed."""

    @functools.wraps(func)
    def wrapper(self, payload: bytes) -> bytes:
        try:
            return func(self, payload)
        except CodecError:
            raise
        except _DECODE_FAULTS as exc:
            raise CorruptStreamError(
                f"{self.name}: malformed stream "
                f"({type(exc).__name__}: {exc})"
            ) from exc

    wrapper._decode_guarded = True
    return wrapper


@dataclass(frozen=True)
class CodecResult:
    """Outcome of one compression call.

    Attributes:
        payload: the compressed byte stream.
        raw_size: input length in bytes.
        compressed_size: output length in bytes.
    """

    payload: bytes
    raw_size: int
    compressed_size: int

    @property
    def factor(self) -> float:
        """Compression factor (input size over output size, Section 3)."""
        return units.compression_factor(self.raw_size, self.compressed_size)

    @property
    def ratio(self) -> float:
        """Compression ratio (reciprocal of the factor)."""
        return units.compression_ratio(self.raw_size, self.compressed_size)


class Codec(ABC):
    """Abstract lossless codec.

    Subclasses must be *universal*: no prior assumption on input statistics,
    and ``decompress(compress(x).payload) == x`` for every byte string.
    """

    #: Registry key and display name, e.g. ``"gzip"``.
    name: str = "abstract"

    def __init_subclass__(cls, **kwargs) -> None:
        """Harden every concrete decoder automatically.

        Any subclass that defines its own ``decompress_bytes`` gets it
        wrapped so that non-:class:`~repro.errors.CodecError` exceptions
        provoked by malformed input (``ValueError``, ``KeyError``,
        ``IndexError``, ``struct.error``, ...) re-raise as
        :class:`~repro.errors.CorruptStreamError` — corrupt bytes must
        never leak an untyped exception to a recovery policy.
        """
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("decompress_bytes")
        if impl is not None and not getattr(impl, "_decode_guarded", False):
            cls.decompress_bytes = _guard_decode(impl)

    @abstractmethod
    def compress_bytes(self, data: bytes) -> bytes:
        """Return the compressed representation of ``data``."""

    @abstractmethod
    def decompress_bytes(self, payload: bytes) -> bytes:
        """Invert :meth:`compress_bytes`."""

    def compress(self, data: bytes) -> CodecResult:
        """Compress ``data`` and return sizes alongside the payload."""
        payload = self.compress_bytes(data)
        return CodecResult(
            payload=payload, raw_size=len(data), compressed_size=len(payload)
        )

    def decompress(self, result_or_payload) -> bytes:
        """Decompress either a :class:`CodecResult` or a raw payload."""
        if isinstance(result_or_payload, CodecResult):
            return self.decompress_bytes(result_or_payload.payload)
        return self.decompress_bytes(result_or_payload)

    def factor(self, data: bytes) -> float:
        """Convenience: compression factor achieved on ``data``."""
        return self.compress(data).factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: Dict[str, Callable[[], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec constructor under ``name`` (lowercase)."""
    _REGISTRY[name.lower()] = factory


def get_codec(name: str) -> Codec:
    """Instantiate the codec registered under ``name``.

    Raises :class:`~repro.errors.UnknownCodecError` for unknown names.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownCodecError(f"unknown codec {name!r}; known: {known}") from None
    return factory()


def available_codecs() -> List[str]:
    """Sorted list of registered codec names."""
    return sorted(_REGISTRY)
