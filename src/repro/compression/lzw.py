"""LZW codec modelled on the UNIX ``compress`` tool.

As the paper describes (Section 3): a dictionary of previously seen
strings starts at 512 entries (the first 256 preloaded with single bytes),
pointers start at 9 bits, the pointer width grows each time the dictionary
doubles until it reaches a configurable maximum (16 bits for ``-b 16``,
which the paper uses), after which the dictionary is frozen; if the
running compression factor then drops below a threshold, the dictionary is
discarded and rebuilt ("CLEAR" code), exactly like ``ncompress``.

Stream layout::

    magic "RZ2" | u8 max_bits | varint raw_size | u32le crc32(raw) | bits

The header CRC32 covers the raw bytes and is verified after decode: a
flipped bit in the code stream usually desynchronizes the dictionary
into a *valid* but wrong decode, which no structural check can catch.
"""

from __future__ import annotations

from repro.compression.base import Codec, register_codec
from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression import checksum
from repro.compression.varint import read_varint, write_varint
from repro.errors import CorruptStreamError

_MAGIC = b"RZ2"
#: Dictionary reset code (compress reserves 256 for CLEAR).
_CLEAR = 256
_FIRST_CODE = 257
_INITIAL_BITS = 9

#: Interval (in input bytes) at which the encoder re-checks the running
#: compression factor once the dictionary is full, mirroring compress's
#: periodic ratio check.
_RATIO_CHECK_INTERVAL = 10_000


class LZWCodec(Codec):
    """LZW with growing 9..``max_bits``-bit codes and ratio-driven reset."""

    name = "compress"

    def __init__(self, max_bits: int = 16) -> None:
        if not 9 <= max_bits <= 16:
            raise ValueError("max_bits must be between 9 and 16")
        self.max_bits = max_bits

    # -- encoding ---------------------------------------------------------

    def compress_bytes(self, data: bytes) -> bytes:
        w = MSBBitWriter()
        max_code = (1 << self.max_bits) - 1

        table = {bytes([i]): i for i in range(256)}
        next_code = _FIRST_CODE
        nbits = _INITIAL_BITS

        in_count = 0
        checkpoint = 0
        best_ratio = 0.0

        current = b""
        for byte in data:
            in_count += 1
            candidate = current + bytes([byte])
            if candidate in table:
                current = candidate
                continue
            w.write_bits(table[current], nbits)
            if next_code <= max_code:
                table[candidate] = next_code
                next_code += 1
                if next_code - 1 == (1 << nbits) and nbits < self.max_bits:
                    nbits += 1
            else:
                # Dictionary frozen: watch the running factor and reset when
                # it degrades, as compress does.
                if in_count - checkpoint >= _RATIO_CHECK_INTERVAL:
                    checkpoint = in_count
                    out_bits = w.bit_length
                    ratio = in_count * 8 / out_bits if out_bits else 0.0
                    if ratio > best_ratio:
                        best_ratio = ratio
                    elif ratio < best_ratio * 0.98:
                        w.write_bits(_CLEAR, nbits)
                        table = {bytes([i]): i for i in range(256)}
                        next_code = _FIRST_CODE
                        nbits = _INITIAL_BITS
                        best_ratio = 0.0
            current = bytes([byte])
        if current:
            w.write_bits(table[current], nbits)
        return (
            _MAGIC
            + bytes([self.max_bits])
            + write_varint(len(data))
            + checksum.crc32_bytes(data)
            + w.getvalue()
        )

    # -- decoding ---------------------------------------------------------

    def decompress_bytes(self, payload: bytes) -> bytes:
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("bad magic; not a compress-scheme stream")
        if len(payload) < len(_MAGIC) + 1:
            raise CorruptStreamError("truncated header")
        max_bits = payload[len(_MAGIC)]
        if not 9 <= max_bits <= 16:
            raise CorruptStreamError(f"invalid max_bits {max_bits}")
        raw_size, pos = read_varint(payload, len(_MAGIC) + 1)
        stored_crc, pos = checksum.read_stored_crc(payload, pos)
        r = MSBBitReader(payload[pos:])
        max_code = (1 << max_bits) - 1

        out = bytearray()

        def fresh_table() -> list:
            return [bytes([i]) for i in range(256)] + [b""]  # index 256 = CLEAR

        table = fresh_table()
        nbits = _INITIAL_BITS
        prev = b""
        while len(out) < raw_size:
            code = r.read_bits(nbits)
            if code == _CLEAR:
                table = fresh_table()
                nbits = _INITIAL_BITS
                prev = b""
                continue
            if code < len(table):
                entry = table[code]
            elif code == len(table) and prev:
                # The classic KwKwK case.
                entry = prev + prev[:1]
            else:
                raise CorruptStreamError(f"invalid LZW code {code}")
            out += entry
            if prev and len(table) <= max_code:
                table.append(prev + entry[:1])
                if len(table) - 1 == (1 << nbits) - 1 and nbits < max_bits:
                    nbits += 1
            prev = entry
        if len(out) != raw_size:
            raise CorruptStreamError("decoded size mismatch")
        checksum.verify_crc(self.name, bytes(out), stored_crc)
        return bytes(out)


register_codec("compress", LZWCodec)
register_codec("lzw", LZWCodec)
