"""CPython-builtin-backed compression engines.

The from-scratch codecs in this package are faithful but pure Python;
running them over the full multi-megabyte corpus would cost wall-clock
time without changing any modelled quantity (device-side time and energy
come from the calibrated cost models, never from host wall-clock).  These
engines wrap CPython's ``zlib`` and ``bz2`` so corpus-scale experiments get
real gzip/bzip2 compression factors cheaply.

``NativeLZWEngine`` is the package's own LZW — there is no builtin LZW in
CPython — retuned with no behavioural difference; it exists so harness
code can ask for the three schemes uniformly via ``*-native`` names.
"""

from __future__ import annotations

import bz2 as _bz2
import zlib as _zlib

from repro.compression.base import Codec, register_codec
from repro.compression.lzw import LZWCodec
from repro.errors import (
    CorruptStreamError,
    ResourceLimitError,
    TruncatedStreamError,
)


class ZlibEngine(Codec):
    """gzip-scheme engine backed by CPython's zlib (DEFLATE, level 9).

    The paper uses gzip 1.2.4 / zlib 1.1.3 at level 9; CPython's zlib is
    the same DEFLATE implementation lineage, so compression factors match
    the paper's gzip column closely.

    Decoding runs through ``zlib.decompressobj`` with a bounded
    ``max_length`` so a decompression bomb trips the codec's
    :class:`~repro.compression.base.ResourceLimits` *before* the output
    materializes — never more than one byte past the cap is buffered.
    """

    name = "gzip-native"

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError("zlib level must be in 1..9")
        self.level = level

    def compress_bytes(self, data: bytes) -> bytes:
        return _zlib.compress(data, self.level)

    def decompress_bytes(self, payload: bytes) -> bytes:
        cap = self.limits.output_cap(len(payload))
        try:
            if cap is None:
                return _zlib.decompress(payload)
            decoder = _zlib.decompressobj()
            out = bytearray()
            data = payload
            while True:
                out += decoder.decompress(data, cap + 1 - len(out))
                self.limits.check_output(len(out), len(payload), self.name)
                data = decoder.unconsumed_tail
                if not data:
                    break
            out += decoder.flush()
        except _zlib.error as exc:
            raise CorruptStreamError(str(exc)) from exc
        self.limits.check_output(len(out), len(payload), self.name)
        if not decoder.eof:
            raise CorruptStreamError("incomplete or truncated zlib stream")
        return bytes(out)


class Bz2Engine(Codec):
    """bzip2-scheme engine backed by CPython's bz2 (BWT, level 9).

    Like :class:`ZlibEngine`, decoding is incremental with a bounded
    ``max_length`` so bombs die at the resource cap instead of in the
    allocator.  The multi-stream semantics of ``bz2.decompress``
    (concatenated streams decode back-to-back) are preserved.
    """

    name = "bzip2-native"

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError("bz2 level must be in 1..9")
        self.level = level

    def compress_bytes(self, data: bytes) -> bytes:
        return _bz2.compress(data, self.level)

    def decompress_bytes(self, payload: bytes) -> bytes:
        if not payload:
            # bz2.decompress(b"") returns b"" instead of raising, but a
            # valid stream is never empty (the header alone is 4 bytes),
            # so an empty payload is always a truncated delivery.
            raise TruncatedStreamError("empty bzip2 stream")
        cap = self.limits.output_cap(len(payload))
        try:
            if cap is None:
                return _bz2.decompress(payload)
            out = bytearray()
            data = payload
            while True:
                decoder = _bz2.BZ2Decompressor()
                while not decoder.eof:
                    out += decoder.decompress(data, cap + 1 - len(out))
                    self.limits.check_output(
                        len(out), len(payload), self.name
                    )
                    data = b""
                    if not decoder.eof and decoder.needs_input:
                        raise ValueError(
                            "Compressed data ended before the "
                            "end-of-stream marker was reached"
                        )
                data = decoder.unused_data
                if not data:
                    return bytes(out)
        except ResourceLimitError:
            raise
        except (OSError, ValueError) as exc:
            raise CorruptStreamError(str(exc)) from exc


class NativeLZWEngine(LZWCodec):
    """compress-scheme engine; same implementation, engine-style name."""

    name = "compress-native"


register_codec("gzip-native", ZlibEngine)
register_codec("zlib", ZlibEngine)
register_codec("bzip2-native", Bz2Engine)
register_codec("bz2", Bz2Engine)
register_codec("compress-native", NativeLZWEngine)
