"""CPython-builtin-backed compression engines.

The from-scratch codecs in this package are faithful but pure Python;
running them over the full multi-megabyte corpus would cost wall-clock
time without changing any modelled quantity (device-side time and energy
come from the calibrated cost models, never from host wall-clock).  These
engines wrap CPython's ``zlib`` and ``bz2`` so corpus-scale experiments get
real gzip/bzip2 compression factors cheaply.

``NativeLZWEngine`` is the package's own LZW — there is no builtin LZW in
CPython — retuned with no behavioural difference; it exists so harness
code can ask for the three schemes uniformly via ``*-native`` names.
"""

from __future__ import annotations

import bz2 as _bz2
import zlib as _zlib

from repro.compression.base import Codec, register_codec
from repro.compression.lzw import LZWCodec
from repro.errors import CorruptStreamError, TruncatedStreamError


class ZlibEngine(Codec):
    """gzip-scheme engine backed by CPython's zlib (DEFLATE, level 9).

    The paper uses gzip 1.2.4 / zlib 1.1.3 at level 9; CPython's zlib is
    the same DEFLATE implementation lineage, so compression factors match
    the paper's gzip column closely.
    """

    name = "gzip-native"

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError("zlib level must be in 1..9")
        self.level = level

    def compress_bytes(self, data: bytes) -> bytes:
        return _zlib.compress(data, self.level)

    def decompress_bytes(self, payload: bytes) -> bytes:
        try:
            return _zlib.decompress(payload)
        except _zlib.error as exc:
            raise CorruptStreamError(str(exc)) from exc


class Bz2Engine(Codec):
    """bzip2-scheme engine backed by CPython's bz2 (BWT, level 9)."""

    name = "bzip2-native"

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError("bz2 level must be in 1..9")
        self.level = level

    def compress_bytes(self, data: bytes) -> bytes:
        return _bz2.compress(data, self.level)

    def decompress_bytes(self, payload: bytes) -> bytes:
        if not payload:
            # bz2.decompress(b"") returns b"" instead of raising, but a
            # valid stream is never empty (the header alone is 4 bytes),
            # so an empty payload is always a truncated delivery.
            raise TruncatedStreamError("empty bzip2 stream")
        try:
            return _bz2.decompress(payload)
        except (OSError, ValueError) as exc:
            raise CorruptStreamError(str(exc)) from exc


class NativeLZWEngine(LZWCodec):
    """compress-scheme engine; same implementation, engine-style name."""

    name = "compress-native"


register_codec("gzip-native", ZlibEngine)
register_codec("zlib", ZlibEngine)
register_codec("bzip2-native", Bz2Engine)
register_codec("bz2", Bz2Engine)
register_codec("compress-native", NativeLZWEngine)
