"""LEB128-style variable-length integers used by the stream containers."""

from __future__ import annotations

from typing import Tuple

from repro.errors import CorruptStreamError, TruncatedStreamError


def write_varint(value: int) -> bytes:
    """Encode a non-negative integer, 7 bits per byte, little-endian."""
    if value < 0:
        raise ValueError("varint values must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, pos: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``pos``; returns ``(value, next_pos)``.

    Raises :class:`~repro.errors.TruncatedStreamError` on truncation and
    :class:`~repro.errors.CorruptStreamError` on a value wider than 64
    bits (a corruption guard).
    """
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TruncatedStreamError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptStreamError("varint too wide")
