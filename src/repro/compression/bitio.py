"""Bit-level readers and writers.

Two bit orders are provided because the three codec families disagree:

- DEFLATE-style streams pack bits least-significant-bit first within each
  byte (:class:`LSBBitWriter` / :class:`LSBBitReader`).
- LZW (``compress``) and bzip2-style streams pack most-significant-bit
  first (:class:`MSBBitWriter` / :class:`MSBBitReader`).
"""

from __future__ import annotations

from repro.errors import CorruptStreamError


class LSBBitWriter:
    """Accumulates bits LSB-first and renders them to bytes."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, LSB first."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc |= value << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write_bits(bit & 1, 1)

    def align_to_byte(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._nbits:
            self._out.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0

    @property
    def bit_length(self) -> int:
        """Bits written so far, including the unflushed tail."""
        return len(self._out) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Render the stream to bytes (zero-padding the last byte)."""
        self.align_to_byte()
        return bytes(self._out)


class LSBBitReader:
    """Reads bits LSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits; raises :class:`CorruptStreamError` at EOF."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        while self._nbits < nbits:
            if self._pos >= len(self._data):
                raise CorruptStreamError("bit stream exhausted")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << nbits) - 1)
        self._acc >>= nbits
        self._nbits -= nbits
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        drop = self._nbits % 8
        if drop:
            self._acc >>= drop
            self._nbits -= drop

    @property
    def bits_remaining(self) -> int:
        """Bits still readable from the stream."""
        return (len(self._data) - self._pos) * 8 + self._nbits


class MSBBitWriter:
    """Accumulates bits MSB-first and renders them to bytes."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, MSB first."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self.write_bits(bit & 1, 1)

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        if self._nbits:
            self._out.append((self._acc << (8 - self._nbits)) & 0xFF)
            self._acc = 0
            self._nbits = 0

    @property
    def bit_length(self) -> int:
        """Bits written so far, including the unflushed tail."""
        return len(self._out) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Render the stream to bytes (zero-padding the last byte)."""
        self.align_to_byte()
        return bytes(self._out)


class MSBBitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits; raises CorruptStreamError at EOF."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        while self._nbits < nbits:
            if self._pos >= len(self._data):
                raise CorruptStreamError("bit stream exhausted")
            self._acc = (self._acc << 8) | self._data[self._pos]
            self._pos += 1
            self._nbits += 8
        shift = self._nbits - nbits
        value = (self._acc >> shift) & ((1 << nbits) - 1)
        self._acc &= (1 << shift) - 1
        self._nbits = shift
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def peek_bits(self, nbits: int) -> int:
        """Look at the next ``nbits`` without consuming them.

        Requires ``bits_remaining >= nbits`` (the fast Huffman decoder
        checks before peeking).
        """
        while self._nbits < nbits:
            if self._pos >= len(self._data):
                raise CorruptStreamError("bit stream exhausted")
            self._acc = (self._acc << 8) | self._data[self._pos]
            self._pos += 1
            self._nbits += 8
        return (self._acc >> (self._nbits - nbits)) & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        """Consume ``nbits`` previously peeked bits."""
        if nbits > self._nbits:
            raise CorruptStreamError("skip past buffered bits")
        self._nbits -= nbits
        self._acc &= (1 << self._nbits) - 1

    @property
    def bits_remaining(self) -> int:
        """Bits still readable from the stream."""
        return (len(self._data) - self._pos) * 8 + self._nbits
