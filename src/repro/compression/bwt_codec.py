"""bzip2-style codec: BWT + MTF + zero-RLE + canonical Huffman.

The paper's third scheme (Section 3).  Data is processed in independent
blocks ("block sorting compression"); each block goes through the
Burrows-Wheeler transform, move-to-front coding, bzip2's RUNA/RUNB zero
run-length stage and a canonical Huffman coder.  Incompressible blocks
fall back to stored form, as bzip2's worst case effectively does.

Stream layout::

    magic "RZ3" | varint raw_size | u32le crc32(raw) | block*
    block := varint block_raw_len | u8 type | body
    type 0 (stored): raw bytes
    type 1 (coded):  varint body_len | bit stream (below)

The header CRC32 covers the raw bytes and is verified after decode;
stored blocks would otherwise pass corruption through silently.

Coded body (MSB-first bits): a 3-bit table count T (1..6), T run-length
coded length tables (RFC-1951-style, shared with the DEFLATE container),
a varint symbol count, then the symbols in groups of 50 — each group
prefixed by a 3-bit table selector when T > 1.  Multiple tables are real
bzip2's trick: the post-MTF statistics drift through a block, and
letting groups pick their own table buys several percent.  The encoder
tries 1 and k tables and emits whichever body is smaller.
"""

from __future__ import annotations

from repro.compression import bwt, mtf
from repro.compression import checksum
from repro.compression import huffman as huffman_mod
from repro.compression.base import Codec, register_codec
from repro.compression.bitio import MSBBitReader, MSBBitWriter
from repro.compression.huffman import HuffmanTable
from repro.compression.varint import read_varint, write_varint
from repro.errors import CorruptStreamError, TruncatedStreamError

_MAGIC = b"RZ3"
_TABLE_MAX_LEN = 14

#: Symbols per selector group; bzip2's constant.
GROUP_SIZE = 50

#: Default BWT block size.  bzip2 -9 uses 900 KiB; the pure-Python suffix
#: sort makes 100 KiB (bzip2 -1's block size) the practical default.  The
#: compression-factor ordering between schemes is insensitive to this.
DEFAULT_BLOCK_SIZE = 100 * 1024


class BWTCodec(Codec):
    """Block-sorting codec (the paper's "bzip2" scheme)."""

    name = "bzip2"

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    # -- encoding ---------------------------------------------------------

    def compress_bytes(self, data: bytes) -> bytes:
        out = bytearray(_MAGIC)
        out += write_varint(len(data))
        out += checksum.crc32_bytes(data)
        for start in range(0, len(data), self.block_size):
            block = data[start : start + self.block_size]
            out += self._encode_block(block)
        return bytes(out)

    def _encode_block(self, block: bytes) -> bytes:
        header = write_varint(len(block))
        coded = self._encode_body(block)
        if coded is None or len(coded) >= len(block):
            return bytes(header) + b"\x00" + block
        return bytes(header) + b"\x01" + write_varint(len(coded)) + coded

    def _encode_body(self, block: bytes) -> bytes:
        column = bwt.forward(block)
        indices = mtf.mtf_encode(column)
        symbols = mtf.rle_encode(indices)

        single = self._encode_symbols(symbols, n_tables=1)
        best = single
        if len(symbols) >= 4 * GROUP_SIZE:
            for k in (2, 4, 6):
                candidate = self._encode_symbols(symbols, n_tables=k)
                if candidate is not None and len(candidate) < len(best):
                    best = candidate
        return best

    def _encode_symbols(self, symbols, n_tables: int):
        """Encode the RLE symbol stream with ``n_tables`` Huffman tables.

        Tables are trained bzip2-style: initialize by slicing the stream
        into contiguous segments, then iterate (assign each 50-symbol
        group to its cheapest table, refit tables from their groups).
        """
        groups = [
            symbols[i : i + GROUP_SIZE] for i in range(0, len(symbols), GROUP_SIZE)
        ]
        if not groups:
            groups = [[]]
        if n_tables == 1:
            freq = [0] * mtf.RLE_ALPHABET
            for sym in symbols:
                freq[sym] += 1
            tables = [HuffmanTable.from_frequencies(freq, _TABLE_MAX_LEN)]
            selectors = [0] * len(groups)
        else:
            if n_tables > len(groups):
                return None
            tables, selectors = self._train_tables(groups, n_tables)

        w = MSBBitWriter()
        w.write_bits(len(tables), 3)
        for table in tables:
            huffman_mod.encode_lengths_rle(w, table.lengths)
        for byte in write_varint(len(symbols)):
            w.write_bits(byte, 8)
        for group, sel in zip(groups, selectors):
            if len(tables) > 1:
                w.write_bits(sel, 3)
            table = tables[sel]
            for sym in group:
                table.encode_symbol(w, sym)
        return w.getvalue()

    def _train_tables(self, groups, n_tables: int):
        """Iterative table refinement over symbol groups.

        Every table is smoothed with +1 counts over the symbols used
        anywhere in the stream (so any group can select any table);
        unused symbols keep zero lengths, keeping the RLE'd tables small.
        """
        used = [0] * mtf.RLE_ALPHABET
        for group in groups:
            for sym in group:
                used[sym] = 1
        # Initial partition: contiguous runs of groups per table.
        per = max(1, len(groups) // n_tables)
        assignments = [min(i // per, n_tables - 1) for i in range(len(groups))]
        tables = None
        for _ in range(3):
            freqs = [list(used) for _ in range(n_tables)]
            for group, a in zip(groups, assignments):
                f = freqs[a]
                for sym in group:
                    f[sym] += 1
            tables = [
                HuffmanTable.from_frequencies(f, _TABLE_MAX_LEN) for f in freqs
            ]
            new_assignments = []
            for group in groups:
                costs = []
                for table in tables:
                    costs.append(sum(table.symbol_bits(sym) for sym in group))
                new_assignments.append(costs.index(min(costs)))
            if new_assignments == assignments:
                break
            assignments = new_assignments
        return tables, assignments

    # -- decoding ---------------------------------------------------------

    def decompress_bytes(self, payload: bytes) -> bytes:
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("bad magic; not a bzip2-scheme stream")
        pos = len(_MAGIC)
        raw_size, pos = read_varint(payload, pos)
        stored_crc, pos = checksum.read_stored_crc(payload, pos)
        out = bytearray()
        index = 0
        while len(out) < raw_size:
            block_start = pos
            block_len, pos = read_varint(payload, pos)
            if pos >= len(payload):
                raise TruncatedStreamError(
                    f"truncated header for block {index} at byte {block_start}"
                )
            btype = payload[pos]
            pos += 1
            if btype == 0:
                block = payload[pos : pos + block_len]
                if len(block) != block_len:
                    raise TruncatedStreamError(
                        f"truncated stored block {index} at byte {block_start}"
                    )
                out += block
                pos += block_len
            elif btype == 1:
                body_len, pos = read_varint(payload, pos)
                body = payload[pos : pos + body_len]
                if len(body) != body_len:
                    raise TruncatedStreamError(
                        f"truncated coded block {index} at byte {block_start}"
                    )
                out += self._decode_body(body, block_len)
                pos += body_len
            else:
                raise CorruptStreamError(
                    f"unknown block type {btype} in block {index} "
                    f"at byte {block_start}"
                )
            index += 1
        if len(out) != raw_size:
            raise CorruptStreamError("decoded size mismatch")
        checksum.verify_crc(self.name, bytes(out), stored_crc)
        return bytes(out)

    def _decode_body(self, body: bytes, expect_len: int) -> bytes:
        r = MSBBitReader(body)
        n_tables = r.read_bits(3)
        if not 1 <= n_tables <= 6:
            raise CorruptStreamError(f"invalid table count {n_tables}")
        tables = [
            HuffmanTable.from_lengths(
                huffman_mod.decode_lengths_rle(r, mtf.RLE_ALPHABET)
            )
            for _ in range(n_tables)
        ]
        # The symbol count is a varint embedded in the bit stream.
        count = 0
        shift = 0
        while True:
            byte = r.read_bits(8)
            count |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise CorruptStreamError("symbol count varint too wide")
        symbols = []
        while len(symbols) < count:
            if n_tables > 1:
                sel = r.read_bits(3)
                if sel >= n_tables:
                    raise CorruptStreamError(f"selector {sel} out of range")
            else:
                sel = 0
            table = tables[sel]
            take = min(GROUP_SIZE, count - len(symbols))
            for _ in range(take):
                symbols.append(table.decode_symbol(r))
        # BWT adds one sentinel, so a valid column is expect_len + 1
        # symbols; the cap stops corrupt RUNA/RUNB streams (whose run
        # weights double per symbol) from allocating unbounded memory.
        indices = mtf.rle_decode(symbols, max_len=expect_len + 1)
        column = mtf.mtf_decode(indices)
        block = bwt.inverse(column)
        if len(block) != expect_len:
            raise CorruptStreamError(
                f"block decoded to {len(block)} bytes, expected {expect_len}"
            )
        return block


register_codec("bzip2", BWTCodec)
register_codec("bwt", BWTCodec)
