"""Burrows-Wheeler transform.

The forward transform appends a unique sentinel (symbol 256) so that
sorting cyclic rotations coincides with sorting suffixes, builds a suffix
array by prefix doubling (O(n log^2 n) with Python's sort), and outputs the
last column over the 257-symbol alphabet.  The inverse walks the LF
mapping.  As the paper notes (Section 3), the transform "groups characters
together so that the probability of finding a character close to another
instance of the same character is increased".
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import CorruptStreamError

#: Sentinel symbol appended before the transform; smaller than every byte
#: value by construction of the comparison (it is assigned rank -1).
SENTINEL = 256


def build_suffix_array(symbols: Sequence[int]) -> List[int]:
    """Suffix array by prefix doubling.

    ``symbols`` may contain any comparable non-negative integers.
    """
    n = len(symbols)
    if n == 0:
        return []
    sa = list(range(n))
    rank = list(symbols)
    k = 1
    while True:
        def sort_key(i: int, k: int = k, rank: List[int] = rank) -> tuple:
            second = rank[i + k] if i + k < n else -1
            return (rank[i], second)

        sa.sort(key=sort_key)
        new_rank = [0] * n
        prev_key = sort_key(sa[0])
        for idx in range(1, n):
            cur_key = sort_key(sa[idx])
            new_rank[sa[idx]] = new_rank[sa[idx - 1]] + (cur_key != prev_key)
            prev_key = cur_key
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            return sa
        k <<= 1


def forward(data: bytes) -> List[int]:
    """BWT of ``data``; returns a list of symbols in 0..256.

    The sentinel travels inside the output (it appears exactly once), so no
    primary index needs to be stored.
    """
    symbols = list(data) + [-1]  # sentinel sorts below every byte
    sa = build_suffix_array(symbols)
    n = len(symbols)
    out = []
    for pos in sa:
        sym = symbols[pos - 1]  # pos 0 wraps to the sentinel at n-1
        out.append(SENTINEL if sym == -1 else sym)
    return out


def inverse(last_column: Sequence[int]) -> bytes:
    """Invert :func:`forward`.

    Raises :class:`~repro.errors.CorruptStreamError` if the column does not
    contain exactly one sentinel or the LF walk does not close.
    """
    n = len(last_column)
    if n == 0:
        return b""
    counts = [0] * (SENTINEL + 1)
    for sym in last_column:
        if not 0 <= sym <= SENTINEL:
            raise CorruptStreamError(f"symbol {sym} outside BWT alphabet")
        counts[sym] += 1
    if counts[SENTINEL] != 1:
        raise CorruptStreamError("BWT column must contain exactly one sentinel")

    # The forward transform sorts the sentinel below every byte (rank -1),
    # so the first column starts with the sentinel, then bytes 0..255.
    starts = [0] * (SENTINEL + 1)
    starts[SENTINEL] = 0
    total = counts[SENTINEL]
    for sym in range(SENTINEL):
        starts[sym] = total
        total += counts[sym]

    lf = [0] * n
    seen = [0] * (SENTINEL + 1)
    primary = -1
    for i, sym in enumerate(last_column):
        lf[i] = starts[sym] + seen[sym]
        seen[sym] += 1
        if sym == SENTINEL:
            primary = i

    # Walk the LF mapping from the original rotation, collecting the text
    # backwards (sentinel first).
    out = bytearray(n - 1)
    row = primary
    sym = last_column[row]  # the sentinel
    row = lf[row]
    for k in range(n - 2, -1, -1):
        sym = last_column[row]
        if sym == SENTINEL:
            raise CorruptStreamError("sentinel encountered twice during LF walk")
        out[k] = sym
        row = lf[row]
    if row != primary:
        raise CorruptStreamError("LF walk did not return to the primary row")
    return bytes(out)
