"""Shared CRC32 helpers for the stream containers.

Every container in the package carries a CRC32 so corrupt input is
*detected* rather than decoded into plausible garbage: the RZ1/RZ2/RZ3
containers checksum the whole raw stream in their headers (verified
after decode, like gzip's trailer), while the adaptive "RZA" container
and the streaming framer checksum each block's wire bytes (verified
before decode, so a re-fetch policy can name the damaged block).
"""

from __future__ import annotations

import zlib
from typing import Tuple

from repro.errors import CorruptStreamError, TruncatedStreamError

#: Width of a serialized CRC32, little-endian.
CRC_LEN = 4


def crc32_bytes(data: bytes) -> bytes:
    """Serialize CRC32(``data``) as 4 little-endian bytes."""
    return (zlib.crc32(data) & 0xFFFFFFFF).to_bytes(CRC_LEN, "little")


def read_stored_crc(payload: bytes, pos: int) -> Tuple[bytes, int]:
    """Read a stored 4-byte CRC at ``pos``; returns ``(crc, next_pos)``."""
    if pos + CRC_LEN > len(payload):
        raise TruncatedStreamError("truncated stream checksum")
    return payload[pos : pos + CRC_LEN], pos + CRC_LEN


def verify_crc(name: str, data: bytes, stored: bytes) -> None:
    """Raise :class:`CorruptStreamError` unless CRC32(``data``) matches."""
    if crc32_bytes(data) != stored:
        raise CorruptStreamError(f"{name}: stream checksum mismatch")
