"""Move-to-front and zero-run-length stages of the bzip2-style pipeline.

After the BWT, long runs of identical symbols become long runs of zeros
under move-to-front coding.  Those zero runs are re-encoded with the two
run symbols RUNA/RUNB in bijective base 2, exactly as bzip2 does, which
turns a run of n zeros into ~log2(n) symbols.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import CorruptStreamError

#: Alphabet size entering MTF (bytes + BWT sentinel).
MTF_ALPHABET = 257
#: Run symbols appended after the MTF alphabet.
RUNA = MTF_ALPHABET
RUNB = MTF_ALPHABET + 1
#: Total alphabet entering the entropy coder.
RLE_ALPHABET = MTF_ALPHABET + 2


def mtf_encode(symbols: Sequence[int], alphabet_size: int = MTF_ALPHABET) -> List[int]:
    """Move-to-front transform over ``alphabet_size`` symbols."""
    table = list(range(alphabet_size))
    out = []
    for sym in symbols:
        idx = table.index(sym)
        out.append(idx)
        if idx:
            del table[idx]
            table.insert(0, sym)
    return out


def mtf_decode(indices: Sequence[int], alphabet_size: int = MTF_ALPHABET) -> List[int]:
    """Invert :func:`mtf_encode`."""
    table = list(range(alphabet_size))
    out = []
    for idx in indices:
        if not 0 <= idx < alphabet_size:
            raise CorruptStreamError(f"MTF index {idx} out of range")
        sym = table[idx]
        out.append(sym)
        if idx:
            del table[idx]
            table.insert(0, sym)
    return out


def _emit_run(run: int, out: List[int]) -> None:
    """Encode a run of ``run`` zeros in bijective base 2 (RUNA=1, RUNB=2)."""
    while run > 0:
        if run & 1:
            out.append(RUNA)
            run = (run - 1) >> 1
        else:
            out.append(RUNB)
            run = (run - 2) >> 1


def rle_encode(indices: Sequence[int]) -> List[int]:
    """Replace zero runs with RUNA/RUNB; shift non-zero symbols up by 0.

    Non-zero MTF indices pass through unchanged; zeros never appear in the
    output.
    """
    out: List[int] = []
    run = 0
    for idx in indices:
        if idx == 0:
            run += 1
            continue
        _emit_run(run, out)
        run = 0
        out.append(idx)
    _emit_run(run, out)
    return out


def rle_decode(
    symbols: Sequence[int], max_len: Optional[int] = None
) -> List[int]:
    """Invert :func:`rle_encode`.

    ``max_len`` caps the decoded length: RUNA/RUNB weights double per
    symbol, so a corrupt stream can claim runs of 2^k zeros from k
    symbols and a decoder without a cap would allocate unbounded memory
    before any later validation could reject the block.
    """
    out: List[int] = []
    run = 0
    weight = 1

    def emit_run() -> None:
        nonlocal run
        if run:
            if max_len is not None and len(out) + run > max_len:
                raise CorruptStreamError(
                    f"RLE zero run overflows block ({len(out) + run} "
                    f"> {max_len} symbols)"
                )
            out.extend([0] * run)
            run = 0

    for sym in symbols:
        if sym == RUNA:
            run += weight
            weight <<= 1
            continue
        if sym == RUNB:
            run += 2 * weight
            weight <<= 1
            continue
        emit_run()
        weight = 1
        if not 0 < sym < MTF_ALPHABET:
            raise CorruptStreamError(f"RLE symbol {sym} out of range")
        if max_len is not None and len(out) >= max_len:
            raise CorruptStreamError(
                f"RLE output overflows block (> {max_len} symbols)"
            )
        out.append(sym)
    emit_run()
    return out
