"""repro — reproduction of Xu, Li, Wang & Ni (ICDCS 2003).

"Impact of Data Compression on Energy Consumption of Wireless-Networked
Handheld Devices": universal lossless codecs, a handheld-device and
wireless-LAN energy simulator, the paper's energy model, interleaved
download+decompression, and selective/block-adaptive compression.

Quickstart::

    from repro import EnergyModel, get_codec
    from repro.simulator import DownloadSession

    model = EnergyModel()                  # iPAQ 3650 + 11 Mb/s WaveLAN
    session = DownloadSession(model)
    data = open("page.html", "rb").read()
    result = get_codec("gzip").compress(data)
    raw = session.raw(len(data))
    fast = session.precompressed(len(data), result.compressed_size)
    print(fast.energy_j / raw.energy_j)    # fraction of baseline energy
"""

from repro import units
from repro.errors import (
    ReproError,
    CodecError,
    CorruptStreamError,
    TruncatedStreamError,
    UnknownCodecError,
    ModelError,
    CalibrationError,
    SimulationError,
    RecoveryExhaustedError,
    WorkloadError,
)
from repro.compression import (
    Codec,
    CodecResult,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.core import (
    EnergyModel,
    CompressionAdvisor,
    AdaptiveBlockCodec,
    decide_file,
)
from repro.device import HandheldDevice
from repro.network import LinkConfig, LINK_11MBPS, LINK_2MBPS
from repro.proxy import ProxyServer
from repro.workload import Corpus

__version__ = "1.0.0"

__all__ = [
    "units",
    "ReproError",
    "CodecError",
    "CorruptStreamError",
    "TruncatedStreamError",
    "UnknownCodecError",
    "ModelError",
    "CalibrationError",
    "SimulationError",
    "RecoveryExhaustedError",
    "WorkloadError",
    "Codec",
    "CodecResult",
    "available_codecs",
    "get_codec",
    "register_codec",
    "EnergyModel",
    "CompressionAdvisor",
    "AdaptiveBlockCodec",
    "decide_file",
    "HandheldDevice",
    "LinkConfig",
    "LINK_11MBPS",
    "LINK_2MBPS",
    "ProxyServer",
    "Corpus",
    "__version__",
]
