"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``compress`` / ``decompress`` — run any registered codec on a file.
- ``advise`` — should this file be compressed before download?
- ``simulate`` — evaluate a download/upload session and print the
  time/energy breakdown (``--trace``/``--metrics`` export the session
  as JSONL spans and Prometheus text).
- ``trace`` — post-process a ``--trace`` file (``trace summarize``
  prints per-session phase tables and audits energy conservation).
- ``thresholds`` — print the Equation 6 decision thresholds.
- ``corpus`` — regenerate the Table 2 synthetic corpus to a directory.
- ``table2`` — print the Table 2 manifest.
- ``campaign`` — declarative parameter sweeps: ``run`` executes a spec,
  preset, or the whole experiment index on a process pool with a
  content-addressed result cache and ``--resume``; ``status`` inspects
  a campaign directory; ``baseline`` pins its results; ``diff`` gates a
  later run against the pin under per-metric tolerances (exit 1 on
  drift).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro import units
from repro.analysis.report import ascii_table
from repro.compression import available_codecs, get_codec
from repro.core import thresholds as thresholds_mod
from repro.core.advisor import CompressionAdvisor
from repro.core.energy_model import EnergyModel
from repro.core.recovery import RecoveryConfig
from repro.network.arq import ArqConfig
from repro.network.corruption import BitFlipCorruption
from repro.network.loss import UniformLoss
from repro.network.wlan import LINK_11MBPS, LINK_2MBPS
from repro.simulator.analytic import AnalyticSession


def _model_for(link: str) -> EnergyModel:
    if link == "11":
        return EnergyModel(link=LINK_11MBPS)
    if link == "2":
        return EnergyModel(link=LINK_2MBPS)
    raise SystemExit(f"unknown link {link!r} (use 11 or 2)")


def _loss_arq_for(args: argparse.Namespace):
    """(loss, arq) from the lossy-link flags; (None, None) when clean."""
    rate = getattr(args, "loss_rate", 0.0)
    if rate < 0 or rate >= 1:
        raise SystemExit(f"--loss-rate must be in [0, 1), got {rate}")
    if rate == 0:
        return None, None
    if args.arq_retries < 0:
        raise SystemExit("--arq-retries must be non-negative")
    if args.arq_timeout_ms < 0:
        raise SystemExit("--arq-timeout-ms must be non-negative")
    if args.arq_backoff < 1.0:
        raise SystemExit("--arq-backoff must be >= 1")
    arq = ArqConfig(
        max_retries=args.arq_retries,
        timeout_s=args.arq_timeout_ms / 1000.0,
        backoff=args.arq_backoff,
    )
    return UniformLoss(rate, seed=args.loss_seed), arq


def _faults_for(args: argparse.Namespace):
    """(faults, resume, watchdog) from the fault-timeline flags."""
    from repro.core.resume import ResumeConfig
    from repro.core.watchdog import WatchdogConfig
    from repro.network.timeline import FaultTimeline

    faults = None
    if args.rate_schedule or args.outage or args.stall:
        try:
            faults = FaultTimeline.parse(
                rate_schedule=args.rate_schedule,
                outages=args.outage,
                stalls=args.stall,
            )
        except Exception as exc:
            raise SystemExit(f"bad fault spec: {exc}")
    resume = None
    if args.resume or args.recovery == "resume":
        if args.checkpoint_kb <= 0:
            raise SystemExit("--checkpoint-kb must be positive")
        resume = ResumeConfig(
            checkpoint_bytes=int(args.checkpoint_kb * 1024),
            handshake_s=args.resume_handshake_ms / 1000.0,
        )
    watchdog = None
    if args.watchdog_s is not None:
        if args.watchdog_s <= 0:
            raise SystemExit("--watchdog-s must be positive")
        watchdog = WatchdogConfig.uniform(args.watchdog_s)
    return faults, resume, watchdog


def _limits_for(args: argparse.Namespace):
    """A ResourceLimits from the bomb-guard flags (None = codec default)."""
    from repro.compression import ResourceLimits

    max_expansion = getattr(args, "max_expansion", None)
    max_output_mb = getattr(args, "max_output_mb", None)
    if max_expansion is None and max_output_mb is None:
        return None
    if max_expansion is not None and max_expansion <= 0:
        raise SystemExit("--max-expansion must be positive")
    if max_output_mb is not None and max_output_mb <= 0:
        raise SystemExit("--max-output-mb must be positive")
    defaults = ResourceLimits()
    return ResourceLimits(
        max_output_bytes=(
            int(max_output_mb * units.BYTES_PER_MB)
            if max_output_mb is not None
            else defaults.max_output_bytes
        ),
        max_expansion_ratio=(
            max_expansion
            if max_expansion is not None
            else defaults.max_expansion_ratio
        ),
    )


def _corruption_for(args: argparse.Namespace):
    """(corruption, recovery) from the integrity flags; (None, None) clean."""
    rate = getattr(args, "corrupt_rate", 0.0)
    if rate < 0 or rate >= 1:
        raise SystemExit(f"--corrupt-rate must be in [0, 1), got {rate}")
    if rate == 0:
        return None, None
    if args.recovery_retries < 0:
        raise SystemExit("--recovery-retries must be non-negative")
    if args.deadline_s is not None and args.deadline_s <= 0:
        raise SystemExit("--deadline-s must be positive")
    recovery = RecoveryConfig(
        policy=args.recovery,
        max_retries=args.recovery_retries,
        deadline_s=args.deadline_s,
    )
    return BitFlipCorruption(rate, seed=args.corrupt_seed), recovery


def cmd_compress(args: argparse.Namespace) -> int:
    """``repro compress``: compress a file with a chosen codec."""
    data = pathlib.Path(args.file).read_bytes()
    codec = get_codec(args.codec)
    result = codec.compress(data)
    out = pathlib.Path(args.output or args.file + ".rz")
    out.write_bytes(result.payload)
    print(
        f"{args.file}: {result.raw_size} -> {result.compressed_size} bytes "
        f"(factor {result.factor:.2f}) with {args.codec} -> {out}"
    )
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    """``repro decompress``: invert :func:`cmd_compress`."""
    payload = pathlib.Path(args.file).read_bytes()
    codec = get_codec(args.codec)
    limits = _limits_for(args)
    if limits is not None:
        codec.with_limits(limits)
    data = codec.decompress_bytes(payload)
    out = pathlib.Path(args.output or args.file + ".out")
    out.write_bytes(data)
    print(f"{args.file}: {len(payload)} -> {len(data)} bytes -> {out}")
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """``repro advise``: should this file be compressed before download?"""
    data = pathlib.Path(args.file).read_bytes()
    model = _model_for(args.link)
    advisor = CompressionAdvisor(model=model, codec=get_codec(args.codec))
    rec = advisor.advise(data)
    print(
        ascii_table(
            ["field", "value"],
            [
                ("file", args.file),
                ("size (bytes)", len(data)),
                ("strategy", rec.strategy),
                ("codec", rec.codec_name or "-"),
                ("transfer (bytes)", rec.transfer_bytes),
                ("plain download (J)", f"{rec.plain_energy_j:.4f}"),
                ("estimated (J)", f"{rec.estimated_energy_j:.4f}"),
                ("saving", f"{rec.estimated_saving_fraction:.1%}"),
                ("detail", rec.details),
            ],
            title="compression advice",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: evaluate one download/upload scenario."""
    model = _model_for(args.link)
    loss, arq = _loss_arq_for(args)
    corruption, recovery = _corruption_for(args)
    faults, resume, watchdog = _faults_for(args)
    tracer = None
    if args.trace:
        from repro.observability import SessionTracer

        tracer = SessionTracer()
    if args.engine == "des":
        from repro.simulator.des import DesSession

        session = DesSession(
            model, loss=loss, arq=arq, corruption=corruption,
            recovery=recovery, faults=faults, resume=resume, watchdog=watchdog,
            tracer=tracer,
        )
    else:
        session = AnalyticSession(
            model, loss=loss, arq=arq, corruption=corruption,
            recovery=recovery, faults=faults, resume=resume, watchdog=watchdog,
            tracer=tracer,
        )
    raw_bytes = int(args.size_mb * units.BYTES_PER_MB)
    compressed = int(raw_bytes / args.factor)

    scenarios = {
        "raw": lambda: session.raw(raw_bytes),
        "sequential": lambda: session.precompressed(
            raw_bytes, compressed, codec=args.codec, interleave=False
        ),
        "interleaved": lambda: session.precompressed(
            raw_bytes, compressed, codec=args.codec, interleave=True
        ),
        "sleep": lambda: session.precompressed(
            raw_bytes, compressed, codec=args.codec, interleave=False,
            radio_power_save=True,
        ),
        "ondemand": lambda: session.ondemand(
            raw_bytes, compressed, codec=args.codec, overlap=True
        ),
        "upload-raw": lambda: session.upload_raw(raw_bytes),
        "upload": lambda: session.upload_compressed(
            raw_bytes, compressed, codec=args.codec, interleave=True
        ),
    }
    if args.scenario not in scenarios:
        raise SystemExit(
            f"unknown scenario {args.scenario!r} (choose from {sorted(scenarios)})"
        )
    result = scenarios[args.scenario]()
    baseline = (
        session.upload_raw(raw_bytes)
        if args.scenario.startswith("upload")
        else session.raw(raw_bytes)
    )
    rows = [
        ("scenario", result.scenario.value),
        ("raw size", f"{args.size_mb} MB"),
        ("factor", args.factor),
        ("codec", args.codec),
        ("time (s)", f"{result.time_s:.3f}"),
        ("energy (J)", f"{result.energy_j:.3f}"),
        ("vs raw time", f"{result.time_ratio(baseline):.3f}"),
        ("vs raw energy", f"{result.energy_ratio(baseline):.3f}"),
    ]
    if result.link_stats is not None:
        st = result.link_stats
        rows += [
            ("loss rate", args.loss_rate),
            ("retries", f"{st.retries:.1f}"),
            ("retransmitted (bytes)", f"{st.retransmitted_bytes:.0f}"),
            ("goodput (KB/s)", f"{result.goodput_bps / 1024:.1f}"),
            ("delivery probability", f"{st.delivery_probability:.6f}"),
            ("loss overhead (J)", f"{result.loss_overhead_j:.3f}"),
        ]
    if result.recovery_stats is not None:
        rs = result.recovery_stats
        rows += [
            ("corrupt rate (BER)", args.corrupt_rate),
            ("recovery policy", rs.policy.value),
            ("corrupt blocks", f"{rs.corrupt_blocks:.2f}"),
            ("re-fetched blocks", f"{rs.refetch_blocks:.2f}"),
            ("re-fetched (bytes)", f"{rs.refetch_bytes:.0f}"),
            ("restarts", f"{rs.restarts:.2f}"),
            ("degradation events", f"{rs.degrade_probability:.3f}"),
            ("deadline hit", "yes" if rs.deadline_hit else "no"),
            ("recovery energy (J)", f"{result.recovery_energy_j:.3f}"),
            ("integrity overhead (J)", f"{result.integrity_overhead_j:.3f}"),
        ]
    if result.fault_stats is not None:
        fs = result.fault_stats
        rows += [
            ("rate steps", fs.rate_steps),
            ("outages", fs.outages),
            ("stalls", fs.stalls),
            ("resume handshakes", fs.resume_handshakes),
            ("re-fetched (bytes)", f"{fs.refetched_bytes:.0f}"),
            ("dead time (s)", f"{result.fault_dead_time_s:.3f}"),
            ("fault overhead (J)", f"{result.fault_overhead_j:.3f}"),
        ]
    for tag, joules in sorted(result.energy_breakdown().items()):
        rows.append((f"  energy[{tag}]", f"{joules:.3f}"))
    print(ascii_table(["field", "value"], rows, title="simulated session"))
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"[trace: {args.trace}]")
    if args.metrics:
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        registry.observe_session(result, engine=args.engine)
        registry.write(args.metrics)
        print(f"[metrics: {args.metrics}]")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace summarize``: audit and tabulate a ``--trace`` file.

    Exits 1 when any session's spans fail to sum to its recorded energy
    total — the offline half of the conservation audit both engines run
    at session-build time.
    """
    from repro.errors import TraceFormatError
    from repro.observability.summarize import summarize

    try:
        text, ok = summarize(args.file)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file!r}: {exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"bad trace file: {exc}")
    print(text)
    return 0 if ok else 1


def cmd_thresholds(args: argparse.Namespace) -> int:
    """``repro thresholds``: print the Equation 6 break-even factors."""
    model = _model_for(args.link)
    loss_rate = args.loss_rate
    corrupt_rate = args.corrupt_rate
    if corrupt_rate < 0 or corrupt_rate >= 1:
        raise SystemExit(f"--corrupt-rate must be in [0, 1), got {corrupt_rate}")
    rows = []
    for s_mb in (0.01, 0.05, 0.128, 0.5, 1, 4, 8):
        raw_bytes = int(s_mb * units.BYTES_PER_MB)
        rows.append(
            (
                f"{s_mb} MB",
                round(
                    thresholds_mod.factor_threshold(
                        raw_bytes, model, loss_rate=loss_rate,
                        corrupt_rate=corrupt_rate,
                    ),
                    3,
                ),
            )
        )
    floor = thresholds_mod.size_threshold_bytes(
        model, loss_rate=loss_rate, corrupt_rate=corrupt_rate
    )
    title = (
        f"Equation 6 thresholds at {args.link} Mb/s (size floor: {floor} bytes)"
    )
    if loss_rate > 0:
        title += f" at loss rate {loss_rate}"
    if corrupt_rate > 0:
        title += f" at residual BER {corrupt_rate}"
    print(
        ascii_table(
            ["file size", "break-even compression factor"], rows, title=title
        )
    )
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    """``repro corpus``: regenerate the Table 2 corpus to a directory."""
    from repro.workload.corpus import Corpus

    corpus = Corpus(scale=args.scale)
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    for gf in corpus.files():
        path = out_dir / gf.name
        path.write_bytes(gf.data)
        rows.append(
            (gf.name, gf.size, gf.target_factor, round(gf.measured_factor(), 2))
        )
    print(
        ascii_table(
            ["file", "bytes", "target factor", "achieved"],
            rows,
            title=f"Table 2 corpus at scale {args.scale} -> {out_dir}",
        )
    )
    return 0


def _cmd_fleet_population(args: argparse.Namespace) -> int:
    """Population branch of ``repro fleet``: analytic, millions of devices."""
    from repro.fleet import (
        PopulationSpec,
        evaluate_population,
        summary_json,
        synthesize,
    )

    spec = PopulationSpec.from_mix(
        args.population,
        mix=args.mix,
        aps=args.aps or None,
        devices_per_ap=args.devices_per_ap,
    )
    population = synthesize(spec, seed=args.seed)
    summary = evaluate_population(population, policy=args.policy)
    if args.metrics:
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        registry.observe_fleet(summary, strategy=args.policy)
        registry.write(args.metrics)
    if args.json:
        print(summary_json(summary))
    else:
        stats = summary.metrics()
        rows = [
            ("devices", f"{stats['devices']}"),
            ("access points", f"{stats['aps']}"),
            ("cohorts", f"{stats['cohorts']}"),
            ("fleet energy", f"{stats['fleet_energy_j']:.1f} J"),
            ("mean device energy", f"{stats['mean_device_energy_j']:.4f} J"),
            ("compress fraction", f"{stats['compress_fraction']:.3f}"),
            ("flip fraction", f"{stats['flip_fraction']:.3f}"),
            ("lifetime p50", f"{stats['lifetime_h_p50']:.2f} h"),
            ("energy/MB p50", f"{stats['energy_per_mb_p50']:.3f} J"),
            ("wait p50", f"{stats['wait_s_p50']:.4f} s"),
        ]
        print(
            ascii_table(
                ["statistic", "value"],
                rows,
                title=(
                    f"{args.population} devices, mix {args.mix}, "
                    f"policy {args.policy} (seed {args.seed})"
                ),
            )
        )
    if args.metrics:
        print(f"[metrics: {args.metrics}]")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """``repro fleet``: clients sharing one AP, per-strategy totals."""
    if args.population:
        return _cmd_fleet_population(args)
    from repro.simulator.multiclient import MultiClientSimulation, Request

    model = _model_for(args.link)
    registry = None
    if args.metrics:
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
    simulation = MultiClientSimulation(model, metrics=registry)
    requests = [
        Request(
            client=f"c{i}",
            name=f"f{i}",
            raw_bytes=int(args.size_mb * units.BYTES_PER_MB),
            factor=args.factor,
            arrival_s=0.0,
        )
        for i in range(args.clients)
    ]
    reports = simulation.compare_strategies(requests)
    rows = []
    for strategy in ("raw", "compressed", "advised"):
        r = reports[strategy]
        rows.append(
            (
                strategy,
                f"{r.total_energy_j:.2f}",
                f"{r.mean_wait_s:.2f}",
                f"{r.mean_latency_s:.2f}",
                f"{r.makespan_s:.2f}",
            )
        )
    print(
        ascii_table(
            ["strategy", "fleet J", "mean wait s", "mean latency s", "makespan s"],
            rows,
            title=f"{args.clients} clients x {args.size_mb} MB (factor {args.factor})",
        )
    )
    if registry is not None:
        registry.write(args.metrics)
        print(f"[metrics: {args.metrics}]")
    return 0


def cmd_battery(args: argparse.Namespace) -> int:
    """``repro battery``: downloads per charge for one transfer shape."""
    from repro.device.batterylife import Battery

    model = _model_for(args.link)
    session = AnalyticSession(model)
    raw_bytes = int(args.size_mb * units.BYTES_PER_MB)
    compressed = int(raw_bytes / args.factor)
    battery = Battery(capacity_mah=args.capacity_mah)
    raw = session.raw(raw_bytes)
    comp = session.precompressed(raw_bytes, compressed, interleave=True)
    rows = [
        ("battery", f"{args.capacity_mah:.0f} mAh ({battery.usable_joules:.0f} J usable)"),
        ("raw download", f"{raw.energy_j:.2f} J -> "
         f"{battery.sessions_per_charge(raw.energy_j):.0f} per charge"),
        ("compressed (interleaved)", f"{comp.energy_j:.2f} J -> "
         f"{battery.sessions_per_charge(comp.energy_j):.0f} per charge"),
        ("idle lifetime", f"{battery.lifetime_hours_at(model.device.idle_power_w):.1f} h"),
        (
            "power-save idle lifetime",
            f"{battery.lifetime_hours_at(model.device.idle_power_save_w):.1f} h",
        ),
    ]
    print(ascii_table(["quantity", "value"], rows, title="battery runtime"))
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    """``repro lifetime``: hours of browsing per charge, by configuration."""
    from repro.device.batterylife import Battery
    from repro.device.powersave import (
        AlwaysOnPolicy,
        StaticPowerSavePolicy,
        TimeoutSleepPolicy,
    )
    from repro.simulator.lifetime import LifetimeSimulation
    from repro.workload.traces import ZipfTraceGenerator

    model = _model_for(args.link)
    trace = ZipfTraceGenerator(
        zipf_alpha=0.9, mean_gap_s=args.mean_gap_s, seed=args.seed
    ).generate(40)
    sim = LifetimeSimulation(model, battery=Battery(capacity_mah=args.capacity_mah))
    rows = []
    for label, strategy, policy in (
        ("raw + always-on", "raw", AlwaysOnPolicy()),
        ("advised + always-on", "advised", AlwaysOnPolicy()),
        ("advised + timeout sleep", "advised", TimeoutSleepPolicy(1.0)),
        ("advised + power-save", "advised", StaticPowerSavePolicy()),
    ):
        report = sim.run(trace, strategy=strategy, idle_policy=policy)
        rows.append((label, f"{report.hours:.2f}", report.requests_served))
    print(
        ascii_table(
            ["configuration", "hours / charge", "objects fetched"],
            rows,
            title=(
                f"battery life, {args.capacity_mah:.0f} mAh, "
                f"mean gap {args.mean_gap_s:g}s"
            ),
        )
    )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """``repro experiments``: list every table/figure bench."""
    import json

    from repro.experiments import all_experiments, bench_command, index_document

    if args.json:
        print(json.dumps(
            index_document(include_extensions=not args.paper_only),
            indent=2, sort_keys=True,
        ))
        return 0
    rows = [
        (
            e.id,
            e.paper_ref,
            e.title,
            bench_command(e.id) if args.commands else e.bench,
        )
        for e in all_experiments(include_extensions=not args.paper_only)
    ]
    print(
        ascii_table(
            ["id", "source", "experiment", "command" if args.commands else "bench"],
            rows,
            title="Experiment index (artifacts land in benchmarks/results/)",
        )
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: the live reproduction report card (exit 1 on FAIL)."""
    from repro.analysis.report_card import all_pass, render_report, run_checks

    checks = run_checks(_model_for(args.link))
    print(render_report(checks))
    return 0 if all_pass(checks) else 1


def _campaign_spec_for(args: argparse.Namespace):
    """Resolve the spec from --spec / --preset / --experiments."""
    import dataclasses

    from repro.campaign.presets import experiments_spec, get_preset
    from repro.campaign.spec import CampaignSpec, CampaignSpecError

    sources = [
        bool(getattr(args, "spec", None)),
        bool(getattr(args, "preset", None)),
        bool(getattr(args, "experiments", None)),
    ]
    if sum(sources) != 1:
        raise SystemExit(
            "choose exactly one of --spec FILE, --preset NAME, "
            "--experiments all|paper|ID[,ID...]"
        )
    if args.spec:
        try:
            spec = CampaignSpec.load(args.spec)
        except CampaignSpecError as exc:
            raise SystemExit(str(exc))
    elif args.preset:
        try:
            spec = get_preset(args.preset)
        except KeyError as exc:
            raise SystemExit(exc.args[0])
    else:
        token = args.experiments
        if token == "all":
            spec = experiments_spec()
        elif token == "paper":
            spec = experiments_spec(paper_only=True)
        else:
            try:
                spec = experiments_spec(ids=token.split(","))
            except KeyError as exc:
                raise SystemExit(exc.args[0])
    if getattr(args, "seed", None) is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    return spec


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """``repro campaign run``: execute a sweep, parallel and cached."""
    from repro.campaign.cache import ResultCache
    from repro.campaign.faultio import injector_from_env
    from repro.campaign.runner import DEFAULT_HEARTBEAT_S, CampaignRunner
    from repro.campaign.store import ResultStore, StoreError

    spec = _campaign_spec_for(args)
    out_dir = pathlib.Path(args.out)
    # One injector shared by the store and the cache so the crash-chaos
    # harness sees a single per-artifact operation counter.
    injector = injector_from_env()
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(out_dir / "cache")
        cache = ResultCache(cache_dir, injector=injector)
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    runner = CampaignRunner(
        spec,
        store=ResultStore(out_dir, injector=injector, shards=args.shards),
        cache=cache,
        jobs=args.jobs,
        retries=args.retries,
        repo_root=str(pathlib.Path.cwd()),
        trace=bool(args.trace),
        watchdog_s=args.watchdog,
        heartbeat_s=(
            args.heartbeat if args.heartbeat is not None
            else DEFAULT_HEARTBEAT_S
        ),
        batch=not args.no_batch,
    )
    try:
        result = runner.run(resume=args.resume)
    except StoreError as exc:
        raise SystemExit(str(exc))
    s = result.summary
    print(
        ascii_table(
            ["quantity", "value"],
            [
                ("campaign", s.name),
                ("spec hash", s.spec_hash[:16]),
                ("cells", s.total),
                ("ok", s.ok),
                ("failed", s.failed),
                ("executed", s.executed),
                ("cache hits", s.cache_hits),
                ("resumed", s.resumed),
                ("retries", s.retries),
                ("jobs", s.jobs),
                ("wall (s)", f"{s.wall_s:.3f}"),
                ("busy (s)", f"{s.busy_s:.3f}"),
                ("speedup", f"{s.speedup:.2f}x"),
            ],
            title=f"campaign run: executed {s.executed}, "
            f"cache hits {s.cache_hits}, resumed {s.resumed}",
        )
    )
    for record in result.records:
        if record["status"] != "ok":
            error = (record["error"] or "").strip().splitlines()
            detail = error[-1] if error else "unknown error"
            print(f"FAILED {record['cell_id']}: {detail}")
    if args.shards > 1:
        print(f"[results: {out_dir} ({args.shards} shards)]")
    else:
        print(f"[results: {runner.store.results_path}]")
    if args.trace:
        runner.store.write_trace(args.trace, spec, result.traces)
        print(f"[trace: {args.trace}]")
    if args.metrics:
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        registry.observe_campaign(s)
        registry.write(args.metrics)
        print(f"[metrics: {args.metrics}]")
    return 0 if result.ok else 1


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """``repro campaign status``: inspect a campaign directory."""
    from repro.campaign.store import ResultStore, StoreError, load_merged

    store = ResultStore(args.out)
    try:
        header, records = load_merged(store.out_dir)
    except StoreError as exc:
        raise SystemExit(str(exc))
    ok = sum(1 for r in records if r["status"] == "ok")
    failed = [r for r in records if r["status"] == "failed"]
    total = int(header.get("cells", len(records)))
    rows = [
        ("campaign", header.get("name")),
        ("spec hash", str(header.get("spec_hash"))[:16]),
        ("cells", total),
        ("ok", ok),
        ("failed", len(failed)),
        ("pending", total - len(records)),
    ]
    try:
        manifest = store.read_manifest()
    except StoreError:
        manifest = None
    if manifest:
        rows += [
            ("last wall (s)", f"{manifest.get('wall_s', 0.0):.3f}"),
            ("last speedup", f"{manifest.get('speedup', 0.0):.2f}x"),
            ("cache hit rate", f"{manifest.get('cache_hit_rate', 0.0):.1%}"),
        ]
    print(ascii_table(["quantity", "value"], rows, title="campaign status"))
    for record in failed:
        print(f"FAILED {record['cell_id']}")
    complete = ok == total and not failed
    return 0 if complete else 1


def _cli_tolerance(args: argparse.Namespace):
    from repro.campaign.regress import Tolerance

    if args.rel is None and args.abs_tol is None:
        return None
    default = Tolerance()
    return Tolerance(
        rel=args.rel if args.rel is not None else default.rel,
        abs=args.abs_tol if args.abs_tol is not None else default.abs,
    )


def cmd_campaign_diff(args: argparse.Namespace) -> int:
    """``repro campaign diff``: gate a run against a pinned baseline."""
    from repro.campaign.regress import diff_files
    from repro.campaign.spec import CampaignSpec, CampaignSpecError
    from repro.campaign.store import ResultStore, StoreError

    store = ResultStore(args.out)
    tolerances = {}
    try:
        tolerances = CampaignSpec.load(store.spec_path).tolerances
    except CampaignSpecError:
        pass
    try:
        report = diff_files(
            args.baseline,
            store.out_dir,
            tolerances=tolerances,
            default=_cli_tolerance(args),
        )
    except StoreError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    return report.exit_code


def cmd_campaign_baseline(args: argparse.Namespace) -> int:
    """``repro campaign baseline``: pin a finished run's results."""
    from repro.campaign.regress import pin_baseline
    from repro.campaign.store import ResultStore, StoreError

    store = ResultStore(args.out)
    try:
        path = pin_baseline(store.out_dir, args.baseline)
    except StoreError as exc:
        raise SystemExit(str(exc))
    print(f"[baseline: {path}]")
    return 0


def cmd_campaign_fsck(args: argparse.Namespace) -> int:
    """``repro campaign fsck``: audit (and optionally repair) artifacts.

    Exit codes: 0 clean, 1 dirty (unrepaired findings remain),
    2 repaired (was dirty, now clean), 3 fatal (artifacts unreadable).
    """
    from repro.campaign.fsck import fsck_campaign

    report = fsck_campaign(
        args.out,
        cache_dir=args.cache_dir,
        baseline=args.baseline,
        repair=args.repair,
    )
    print(report.render())
    return report.exit_code


def cmd_campaign_crash_chaos(args: argparse.Namespace) -> int:
    """``repro campaign crash-chaos``: SIGKILL/resume/compare harness."""
    from repro.campaign.crashchaos import default_crash_points, run_chaos

    spec = _campaign_spec_for(args)
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    points = None
    if args.points:
        points = default_crash_points(
            len(spec.expand()), shards=args.shards
        )[: args.points]
    report = run_chaos(
        spec,
        args.out,
        jobs=args.jobs,
        points=points,
        min_fired=args.min_fired,
        timeout_s=args.timeout,
        shards=args.shards,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_table2(args: argparse.Namespace) -> int:
    """``repro table2``: print the Table 2 manifest."""
    from repro.workload.manifest import TABLE2_FILES

    rows = [
        (
            spec.name,
            spec.size_bytes,
            spec.file_type.value,
            spec.gzip_factor,
            spec.compress_factor,
            spec.bzip2_factor,
            "~" if spec.approx else "",
        )
        for spec in TABLE2_FILES
    ]
    print(
        ascii_table(
            ["file", "bytes", "type", "gzip", "compress", "bzip2", "ocr?"],
            rows,
            title="Table 2 manifest ('~' = reconstructed around OCR damage)",
        )
    )
    return 0


def _proxy_store(args: argparse.Namespace):
    """A populated ProxyServer from --root or the scaled Table 2 corpus."""
    from repro.proxy.server import ProxyServer

    store = ProxyServer()
    root = getattr(args, "root", None)
    if root:
        root_path = pathlib.Path(root)
        if not root_path.is_dir():
            raise SystemExit(f"--root {root!r} is not a directory")
        names = sorted(p for p in root_path.iterdir() if p.is_file())
        if not names:
            raise SystemExit(f"--root {root!r} holds no files")
        for path in names:
            store.put(path.name, path.read_bytes())
    else:
        from repro.workload.corpus import Corpus

        for gf in Corpus(scale=args.corpus_scale).files():
            store.put(gf.name, gf.data)
    return store


def _proxy_service(args: argparse.Namespace):
    """A ProxyService configured from the shared proxy flags."""
    from repro.proxy.chaos import ChaosConfig
    from repro.proxy.service import ProxyService, ServiceConfig

    chaos = None
    if getattr(args, "chaos", False):
        chaos = ChaosConfig.all_on(seed=args.seed, rate=args.chaos_rate)
    config = ServiceConfig(
        max_inflight=args.max_inflight,
        default_codec=args.codec,
        verify_compressions=not getattr(args, "no_server_verify", False),
    )
    registry = None
    if getattr(args, "metrics", None):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
    return ProxyService(
        store=_proxy_store(args), config=config, chaos=chaos,
        metrics=registry,
    )


def cmd_proxy_serve(args: argparse.Namespace) -> int:
    """``repro proxy serve``: the live service on a TCP socket."""
    import asyncio

    service = _proxy_service(args)

    async def main() -> None:
        server = await service.serve_tcp(args.host, args.port)
        addr = server.sockets[0].getsockname()
        print(f"proxy: serving {len(service.store.names())} objects "
              f"on {addr[0]}:{addr[1]} (ctrl-c to drain)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.drain()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("proxy: drained")
    return 0


def cmd_proxy_load(args: argparse.Namespace) -> int:
    """``repro proxy load``: seeded load against the in-process service."""
    from repro.proxy.loadgen import LoadSpec, run_load_sync

    service = _proxy_service(args)
    spec = LoadSpec(
        requests=args.requests,
        clients=args.clients,
        seed=args.seed,
        codec=args.codec,
        link_mbps=float(args.link),
        loss_rate=args.loss_rate,
        verify=not args.no_verify,
    )
    report = run_load_sync(service, spec)
    if args.json:
        print(report.to_json())
    else:
        d = report.to_dict()
        lat = d["latency_modeled_s"]
        rows = [
            ("requests", spec.requests),
            ("ok / error / shed / disconnected",
             f'{d["outcomes"]["ok"]} / {d["outcomes"]["error"]} / '
             f'{d["outcomes"]["shed"]} / {d["outcomes"]["disconnected"]}'),
            ("served compressed / raw",
             f'{d["served"]["compressed"]} / {d["served"]["raw"]}'),
            ("retries / degraded", f'{d["retries"]} / {d["degraded"]}'),
            ("latency p50 / p99 (modeled s)",
             f'{lat["p50"]:.4f} / {lat["p99"]:.4f}'),
            ("sustained req/s (modeled)", f'{d["req_per_s_modeled"]:.2f}'),
            ("energy total / mean-per-ok (J)",
             f'{d["energy"]["total_j"]:.3f} / '
             f'{d["energy"]["mean_per_ok_j"]:.4f}'),
            ("verify energy (J)", f'{d["energy"]["verify_j"]:.4f}'),
            ("breaker trips", d["service"]["breaker_trips"]),
            ("outstanding partials", d["service"]["outstanding_partials"]),
            ("wall elapsed (s)", f"{report.wall_elapsed_s:.2f}"),
        ]
        if d["chaos_injected"]:
            rows.append(("chaos injected", ", ".join(
                f"{k}={v}" for k, v in d["chaos_injected"].items()
            )))
        print(ascii_table(
            ["metric", "value"], rows,
            title=f"proxy load: {spec.requests} requests, "
                  f"{spec.clients} clients, seed {spec.seed}",
        ))
    if report.service_stats.get("outstanding_partials"):
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compression-vs-energy toolkit (Xu et al., ICDCS 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_link(p):
        p.add_argument("--link", default="11", help="link rate: 11 or 2 (Mb/s)")

    def add_codec(p, default="zlib"):
        p.add_argument(
            "-c", "--codec", default=default,
            help=f"codec name; one of {', '.join(available_codecs())}",
        )

    def add_loss(p):
        p.add_argument(
            "--loss-rate", type=float, default=0.0,
            help="per-packet loss probability (0 = paper's clean channel)",
        )
        p.add_argument(
            "--loss-seed", type=int, default=1,
            help="seed for the DES engine's loss draws",
        )
        p.add_argument(
            "--arq-retries", type=int, default=7,
            help="stop-and-wait retry limit (802.11 long retry default)",
        )
        p.add_argument(
            "--arq-timeout-ms", type=float, default=1.0,
            help="initial retransmission timeout in milliseconds",
        )
        p.add_argument(
            "--arq-backoff", type=float, default=2.0,
            help="timeout multiplier per successive retry",
        )

    def add_corruption(p):
        p.add_argument(
            "--corrupt-rate", type=float, default=0.0,
            help="residual bit-error rate past ARQ (0 = clean channel)",
        )
        p.add_argument(
            "--corrupt-seed", type=int, default=1,
            help="seed for the DES engine's corruption draws",
        )
        p.add_argument(
            "--recovery", default="refetch",
            choices=("restart", "refetch", "degrade", "resume"),
            help="policy when a block fails its checksum (resume = "
            "range-capable re-fetch with checkpoint accounting)",
        )
        p.add_argument(
            "--recovery-retries", type=int, default=3,
            help="re-fetch attempts per block (or full restarts)",
        )
        p.add_argument(
            "--deadline-s", type=float, default=None,
            help="wall-clock budget for recovery work",
        )

    def add_faults(p):
        p.add_argument(
            "--rate-schedule", default=None,
            help="mid-session link-rate steps, 'T:RATE,T:RATE,...' "
            "(seconds : 11|5.5|2|1 Mb/s)",
        )
        p.add_argument(
            "--outage", action="append", default=[],
            help="disconnect 'AT:DURATION[:REASSOC]' (seconds); repeatable",
        )
        p.add_argument(
            "--stall", action="append", default=[],
            help="proxy stall 'AT:DURATION' (seconds); repeatable",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="range-capable receiver: resume from the last checkpoint "
            "after an outage instead of restarting from byte zero",
        )
        p.add_argument(
            "--checkpoint-kb", type=float, default=128.0,
            help="resume checkpoint granularity in KB",
        )
        p.add_argument(
            "--resume-handshake-ms", type=float, default=50.0,
            help="resume-negotiation round trip in milliseconds",
        )
        p.add_argument(
            "--watchdog-s", type=float, default=None,
            help="per-phase session deadline in simulated seconds "
            "(receive/decompress/recovery)",
        )

    def add_limits(p):
        p.add_argument(
            "--max-expansion", type=float, default=None,
            help="decompression-bomb guard: max output/payload ratio",
        )
        p.add_argument(
            "--max-output-mb", type=float, default=None,
            help="decompression-bomb guard: max decoded output in MB",
        )

    p = sub.add_parser("compress", help="compress a file")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    add_codec(p)
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("decompress", help="decompress a file")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    add_codec(p)
    add_limits(p)
    p.set_defaults(func=cmd_decompress)

    p = sub.add_parser("advise", help="should this file be compressed?")
    p.add_argument("file")
    add_codec(p)
    add_link(p)
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("simulate", help="evaluate a download/upload session")
    p.add_argument("--size-mb", type=float, required=True)
    p.add_argument("--factor", type=float, default=3.0)
    p.add_argument(
        "--scenario",
        default="interleaved",
        help="raw | sequential | interleaved | sleep | ondemand | "
        "upload-raw | upload",
    )
    p.add_argument(
        "--engine", default="analytic", choices=("analytic", "des"),
        help="analytic (expected values) or des (seeded packet replay)",
    )
    add_codec(p, default="gzip")
    add_link(p)
    add_loss(p)
    add_corruption(p)
    add_faults(p)
    p.add_argument(
        "--trace", default=None, metavar="OUT.jsonl",
        help="write the session's spans/events as JSONL "
        "(inspect with 'repro trace summarize OUT.jsonl')",
    )
    p.add_argument(
        "--metrics", default=None, metavar="OUT.prom",
        help="write session metrics (Prometheus text; '.json' for JSON)",
    )
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("trace", help="post-process a --trace JSONL file")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summarize", help="per-session phase tables + conservation audit"
    )
    ps.add_argument("file", help="JSONL written by simulate --trace")
    ps.set_defaults(func=cmd_trace)

    p = sub.add_parser("thresholds", help="print Equation 6 thresholds")
    add_link(p)
    p.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="per-packet loss probability shifting the break-even",
    )
    p.add_argument(
        "--corrupt-rate", type=float, default=0.0,
        help="residual bit-error rate shifting the break-even the other way",
    )
    p.set_defaults(func=cmd_thresholds)

    p = sub.add_parser("corpus", help="regenerate the Table 2 corpus")
    p.add_argument("-o", "--output", default="corpus-out")
    p.add_argument("--scale", type=float, default=0.05)
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("table2", help="print the Table 2 manifest")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("fleet", help="simulate clients sharing one AP")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--size-mb", type=float, default=2.0)
    p.add_argument("--factor", type=float, default=3.8)
    p.add_argument(
        "--metrics", default=None, metavar="OUT.prom",
        help="write fleet metrics (Prometheus text; '.json' for JSON)",
    )
    p.add_argument(
        "--population", type=int, default=0, metavar="N",
        help="analytic population mode: synthesize and evaluate N devices "
        "behind contended APs instead of running the per-client DES",
    )
    p.add_argument(
        "--mix", default="balanced",
        help="device/workload mix for --population "
        "(balanced, media-heavy, pda-heavy)",
    )
    p.add_argument(
        "--aps", type=int, default=0,
        help="access-point count for --population (0 = derive from density)",
    )
    p.add_argument(
        "--devices-per-ap", type=float, default=25.0,
        help="mean AP density when --aps is derived",
    )
    p.add_argument(
        "--policy", default="fleet-advised",
        choices=["raw", "compressed", "advised", "fleet-advised"],
        help="compression policy applied across the population",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="population synthesis seed (same seed -> byte-identical output)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the canonical population summary JSON (byte-stable)",
    )
    add_link(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("battery", help="downloads per charge")
    p.add_argument("--size-mb", type=float, default=2.0)
    p.add_argument("--factor", type=float, default=3.8)
    p.add_argument("--capacity-mah", type=float, default=950.0)
    add_link(p)
    p.set_defaults(func=cmd_battery)

    p = sub.add_parser("experiments", help="list every table/figure bench")
    p.add_argument("--paper-only", action="store_true")
    p.add_argument("--commands", action="store_true")
    p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable index instead of the table",
    )
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "proxy",
        help="live compression proxy: serve it over TCP, load-test it",
    )
    proxy_sub = p.add_subparsers(dest="proxy_command", required=True)

    def add_proxy_common(pp):
        pp.add_argument(
            "--root", default=None,
            help="serve the files in this directory "
            "(default: the scaled Table 2 corpus)",
        )
        pp.add_argument(
            "--corpus-scale", type=float, default=0.1,
            help="Table 2 corpus scale when --root is not given",
        )
        add_codec(pp, default="gzip")
        pp.add_argument(
            "--seed", type=int, default=1,
            help="seed for every chaos draw (fixes the whole run)",
        )
        pp.add_argument(
            "--max-inflight", type=int, default=64,
            help="admission capacity before shed frames are returned",
        )
        pp.add_argument(
            "--chaos", action="store_true",
            help="enable every fault injector (stall, corrupt, "
            "disconnect, slow reader)",
        )
        pp.add_argument(
            "--chaos-rate", type=float, default=0.15,
            help="per-request injection probability under --chaos",
        )
        pp.add_argument(
            "--no-server-verify", action="store_true",
            help="skip the proxy-side roundtrip check of each "
            "compression (the client checksum still runs)",
        )

    ps = proxy_sub.add_parser(
        "serve", help="speak the framed protocol on a TCP socket"
    )
    add_proxy_common(ps)
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8811)
    ps.set_defaults(func=cmd_proxy_serve)

    pl = proxy_sub.add_parser(
        "load", help="seeded load run against the in-process service"
    )
    add_proxy_common(pl)
    pl.add_argument("-n", "--requests", type=int, default=200)
    pl.add_argument("--clients", type=int, default=4)
    add_link(pl)
    pl.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="client loss rate fed to the Equation 6 decision",
    )
    pl.add_argument(
        "--no-verify", action="store_true",
        help="opt out of checksum-on-decompress (and its energy charge)",
    )
    pl.add_argument(
        "--json", action="store_true",
        help="emit the modeled report as JSON (byte-stable at a seed)",
    )
    pl.set_defaults(func=cmd_proxy_load)

    p = sub.add_parser(
        "campaign",
        help="run parameter sweeps: parallel, cached, regression-gated",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    pr = campaign_sub.add_parser(
        "run", help="execute a campaign spec, preset, or experiment set"
    )
    pr.add_argument("--spec", default=None, help="campaign spec JSON file")
    pr.add_argument(
        "--preset", default=None,
        help="built-in sweep: eq6, eq6-dense, loss, corruption, "
        "trajectory, smoke",
    )
    pr.add_argument(
        "--experiments", default=None, metavar="all|paper|ID[,ID...]",
        help="run indexed experiments as campaign cells (pytest benches)",
    )
    pr.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = inline, byte-identical at any -j)",
    )
    pr.add_argument(
        "--out", default="campaign-out",
        help="campaign directory (results.jsonl, manifest.json, spec.json)",
    )
    pr.add_argument(
        "--resume", action="store_true",
        help="skip cells already completed by a prior run of this spec",
    )
    pr.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache (default: OUT/cache)",
    )
    pr.add_argument(
        "--no-cache", action="store_true",
        help="always recompute, never consult or fill the cache",
    )
    pr.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failed cell, inside the worker",
    )
    pr.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's base seed",
    )
    pr.add_argument(
        "--trace", default=None, metavar="OUT.jsonl",
        help="write per-cell SessionTracer streams (simulate cells)",
    )
    pr.add_argument(
        "--metrics", default=None, metavar="OUT.prom",
        help="write campaign metrics (Prometheus text; '.json' for JSON)",
    )
    pr.add_argument(
        "--watchdog", type=float, default=None, metavar="SECONDS",
        help="kill and requeue any cell past this wall-clock budget",
    )
    pr.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="progress-manifest interval while running (default 2s)",
    )
    pr.add_argument(
        "--no-batch", action="store_true",
        help="disable the vectorized analytic fast path; evaluate every "
        "cell through the scalar executor",
    )
    pr.add_argument(
        "--shards", type=int, default=1,
        help="split results across N shard files keyed by cell hash "
        "(1 = classic single results.jsonl)",
    )
    pr.set_defaults(func=cmd_campaign_run)

    ps = campaign_sub.add_parser(
        "status", help="inspect a campaign directory's progress"
    )
    ps.add_argument("--out", default="campaign-out")
    ps.set_defaults(func=cmd_campaign_status)

    pd = campaign_sub.add_parser(
        "diff", help="gate a run against a pinned baseline (exit 1 on drift)"
    )
    pd.add_argument("--out", default="campaign-out")
    pd.add_argument("--baseline", required=True, help="pinned results JSONL")
    pd.add_argument(
        "--rel", type=float, default=None,
        help="default relative tolerance (spec tolerances still apply)",
    )
    pd.add_argument(
        "--abs", dest="abs_tol", type=float, default=None,
        help="default absolute tolerance",
    )
    pd.set_defaults(func=cmd_campaign_diff)

    pb = campaign_sub.add_parser(
        "baseline", help="pin a finished run's results as the baseline"
    )
    pb.add_argument("--out", default="campaign-out")
    pb.add_argument("--baseline", required=True, help="where to pin")
    pb.set_defaults(func=cmd_campaign_baseline)

    pf = campaign_sub.add_parser(
        "fsck",
        help="audit campaign artifacts; exit 0 clean / 1 dirty / "
        "2 repaired / 3 fatal",
    )
    pf.add_argument("--out", default="campaign-out")
    pf.add_argument(
        "--cache-dir", default=None,
        help="also scan an external result cache",
    )
    pf.add_argument(
        "--baseline", default=None,
        help="also verify a pinned baseline (report-only)",
    )
    pf.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt records and remove orphaned temp files",
    )
    pf.set_defaults(func=cmd_campaign_fsck)

    pc = campaign_sub.add_parser(
        "crash-chaos",
        help="SIGKILL a live campaign at seeded I/O points, resume, "
        "and require byte-identical results",
    )
    pc.add_argument("--spec", default=None, help="campaign spec JSON file")
    pc.add_argument(
        "--preset", default=None,
        help="named spec preset (see `repro campaign run --help`)",
    )
    pc.add_argument(
        "--experiments", default=None, metavar="all|paper|ID[,ID...]",
        help="run indexed experiments as campaign cells",
    )
    pc.add_argument("--seed", type=int, default=None)
    pc.add_argument("--out", default="chaos-out", help="harness work dir")
    pc.add_argument("-j", "--jobs", type=int, default=2)
    pc.add_argument(
        "--points", type=int, default=None,
        help="cap the crash-point schedule at its first N entries",
    )
    pc.add_argument(
        "--min-fired", type=int, default=10,
        help="fail unless at least this many points actually killed a run",
    )
    pc.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-child wall-clock limit in seconds",
    )
    pc.add_argument(
        "--shards", type=int, default=1,
        help="run the children with a sharded result store and add "
        "shard-file crash points",
    )
    pc.set_defaults(func=cmd_campaign_crash_chaos)

    p = sub.add_parser(
        "report", help="recompute the paper's headline constants, pass/fail"
    )
    add_link(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "lifetime", help="hours of browsing per charge, by configuration"
    )
    p.add_argument("--mean-gap-s", type=float, default=10.0)
    p.add_argument("--capacity-mah", type=float, default=950.0)
    p.add_argument("--seed", type=int, default=31)
    add_link(p)
    p.set_defaults(func=cmd_lifetime)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        import os

        try:
            sys.stdout.close()
        except OSError:
            pass
        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
