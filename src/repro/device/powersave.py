"""Radio power management between requests (Section 2's discussion).

Between downloads the WaveLAN card can stay idle (310 mA system draw),
enter the hardware power-saving mode (110 mA, with a 25% throughput
penalty when traffic resumes), or sleep outright (90 mA, unreachable for
incoming traffic).  "Heuristics have been proposed in literature to
predict the optimal timing to wake-up from the sleep mode [Stemm & Katz].
However the success rate of such methods highly depends on event
predictability."  The paper sidesteps the issue by using the hardware
mechanism; this module builds the policies so the trade-off can be
simulated:

- :class:`AlwaysOnPolicy` — radio idle the whole gap.
- :class:`StaticPowerSavePolicy` — hardware power-saving during gaps;
  resumed transfers pay the 25% throughput penalty.
- :class:`TimeoutSleepPolicy` — classic inactivity timer: idle for T,
  then power-save; pays a wake-up latency when a request arrives asleep.
- :class:`AdaptiveTimeoutPolicy` — the [11]-style heuristic: the timeout
  tracks a running estimate of the inter-request gap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.energy_model import EnergyModel
from repro.device.timeline import PowerTimeline
from repro.errors import ModelError


@dataclass(frozen=True)
class GapOutcome:
    """How one inter-request gap was spent."""

    gap_s: float
    idle_s: float
    power_save_s: float
    wake_latency_s: float

    @property
    def total_s(self) -> float:
        """Gap duration plus any wake-up latency."""
        return self.gap_s + self.wake_latency_s


class IdlePolicy(ABC):
    """Decides how the radio spends an inter-request gap."""

    name: str = "abstract"
    #: Whether transfers right after a gap run in power-saving mode.
    resumes_in_power_save: bool = False

    @abstractmethod
    def spend_gap(self, gap_s: float) -> GapOutcome:
        """Split a gap into idle/power-save time plus wake-up latency."""

    def observe(self, gap_s: float) -> None:
        """Feed the actual gap back to adaptive policies (no-op default)."""


class AlwaysOnPolicy(IdlePolicy):
    """Radio idle for the whole gap; zero latency, maximum draw."""

    name = "always-on"

    def spend_gap(self, gap_s: float) -> GapOutcome:
        return GapOutcome(gap_s=gap_s, idle_s=gap_s, power_save_s=0.0, wake_latency_s=0.0)


class StaticPowerSavePolicy(IdlePolicy):
    """Hardware power-saving for the whole gap.

    The card stays receptive (periodic wakeups), so there is no wake
    latency, but traffic after the gap runs 25% slower until the mode is
    left — modelled by flagging the next transfer.
    """

    name = "power-save"
    resumes_in_power_save = True

    def spend_gap(self, gap_s: float) -> GapOutcome:
        return GapOutcome(gap_s=gap_s, idle_s=0.0, power_save_s=gap_s, wake_latency_s=0.0)


class TimeoutSleepPolicy(IdlePolicy):
    """Idle for ``timeout_s``, then power-save; late arrivals pay a wake."""

    name = "timeout"

    def __init__(self, timeout_s: float = 1.0, wake_latency_s: float = 0.04) -> None:
        if timeout_s < 0 or wake_latency_s < 0:
            raise ModelError("timeout and wake latency must be non-negative")
        self.timeout_s = timeout_s
        self.wake_latency_s = wake_latency_s

    def spend_gap(self, gap_s: float) -> GapOutcome:
        if gap_s <= self.timeout_s:
            return GapOutcome(gap_s, idle_s=gap_s, power_save_s=0.0, wake_latency_s=0.0)
        return GapOutcome(
            gap_s,
            idle_s=self.timeout_s,
            power_save_s=gap_s - self.timeout_s,
            wake_latency_s=self.wake_latency_s,
        )


class AdaptiveTimeoutPolicy(TimeoutSleepPolicy):
    """Timeout follows an EWMA of observed gaps (the [11]-style idea).

    Short recent gaps pull the timeout up (stay awake: a request is
    probably imminent); long gaps pull it down (sleep early).  The
    timeout is a fixed fraction of the gap estimate.
    """

    name = "adaptive-timeout"

    def __init__(
        self,
        initial_timeout_s: float = 1.0,
        fraction: float = 0.25,
        alpha: float = 0.3,
        wake_latency_s: float = 0.04,
        min_timeout_s: float = 0.05,
        max_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(initial_timeout_s, wake_latency_s)
        if not 0 < alpha <= 1:
            raise ModelError("alpha must be in (0, 1]")
        if not 0 < fraction <= 1:
            raise ModelError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.alpha = alpha
        self.min_timeout_s = min_timeout_s
        self.max_timeout_s = max_timeout_s
        self._gap_estimate_s = initial_timeout_s / fraction

    def observe(self, gap_s: float) -> None:
        self._gap_estimate_s = (
            self.alpha * gap_s + (1 - self.alpha) * self._gap_estimate_s
        )
        self.timeout_s = min(
            self.max_timeout_s,
            max(self.min_timeout_s, self.fraction * self._gap_estimate_s),
        )


@dataclass(frozen=True)
class SessionTrace:
    """A request trace: (raw_bytes, compression_factor, gap_after_s)."""

    requests: Sequence[tuple]

    @property
    def total_gap_s(self) -> float:
        """Sum of the trace's inter-request gaps."""
        return sum(gap for _, _, gap in self.requests)


@dataclass(frozen=True)
class PolicyResult:
    """Energy and latency of running a trace under one policy."""

    policy: str
    energy_j: float
    transfer_energy_j: float
    gap_energy_j: float
    total_time_s: float
    wake_latency_s: float
    timeline: PowerTimeline


def run_trace(
    trace: SessionTrace,
    policy: IdlePolicy,
    model: Optional[EnergyModel] = None,
) -> PolicyResult:
    """Replay a request trace under an idle policy.

    Transfers use the interleaved compressed session when the factor
    clears Equation 6, raw otherwise (the paper's recommended operation);
    after a gap spent in power-save mode the next transfer runs on the
    power-save link (25% slower).
    """
    # Imported lazily: repro.simulator's package init reaches back into
    # this module (lifetime simulation), so a module-level import cycles.
    from repro.core import thresholds
    from repro.simulator.analytic import AnalyticSession

    model = model or EnergyModel()
    ps_link = model.link.with_power_save(True)
    ps_model = EnergyModel(link=ps_link, device=model.device, cpu=model.cpu)
    session = AnalyticSession(model)
    ps_session = AnalyticSession(ps_model)

    device = model.device
    timeline = PowerTimeline()
    transfer_j = 0.0
    gap_j = 0.0
    wake_s = 0.0
    in_power_save = False

    for raw_bytes, factor, gap_after in trace.requests:
        active = ps_session if (in_power_save and policy.resumes_in_power_save) else session
        if factor > 1 and thresholds.compression_worthwhile(
            raw_bytes, factor, model
        ):
            result = active.precompressed(
                raw_bytes, int(raw_bytes / factor), interleave=True
            )
        else:
            result = active.raw(raw_bytes)
        timeline.extend(result.timeline)
        transfer_j += result.energy_j

        outcome = policy.spend_gap(gap_after)
        policy.observe(gap_after)
        if outcome.idle_s:
            timeline.add(outcome.idle_s, device.idle_power_w, "gap-idle")
        if outcome.power_save_s:
            timeline.add(
                outcome.power_save_s, device.idle_power_save_w, "gap-power-save"
            )
        if outcome.wake_latency_s:
            timeline.add(outcome.wake_latency_s, device.idle_power_w, "wake")
            wake_s += outcome.wake_latency_s
        gap_j += (
            outcome.idle_s * device.idle_power_w
            + outcome.power_save_s * device.idle_power_save_w
            + outcome.wake_latency_s * device.idle_power_w
        )
        in_power_save = outcome.power_save_s > 0

    return PolicyResult(
        policy=policy.name,
        energy_j=timeline.total_energy_j,
        transfer_energy_j=transfer_j,
        gap_energy_j=gap_j,
        total_time_s=timeline.total_time_s,
        wake_latency_s=wake_s,
        timeline=timeline,
    )


def compare_policies(
    trace: SessionTrace,
    policies: Optional[List[IdlePolicy]] = None,
    model: Optional[EnergyModel] = None,
) -> List[PolicyResult]:
    """Run the trace under each policy (fresh instances recommended)."""
    if policies is None:
        policies = [
            AlwaysOnPolicy(),
            StaticPowerSavePolicy(),
            TimeoutSleepPolicy(timeout_s=1.0),
            AdaptiveTimeoutPolicy(),
        ]
    return [run_trace(trace, policy, model) for policy in policies]
