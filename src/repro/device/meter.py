"""Simulated digital multimeter (the paper's HP 3458a stand-in).

The paper measures with a low-impedance (0.1 ohm) meter that "takes
several hundred samples per second and automatically records maximum,
minimum and average electrical current", triggered by software
(Section 2).  This module samples a :class:`PowerTimeline` the same way:
point samples at a fixed rate between trigger start and stop, with a
configurable trigger overhead (the paper bounds theirs below 0.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import units
from repro.device.timeline import PowerTimeline
from repro.errors import SimulationError


@dataclass(frozen=True)
class MeterReading:
    """One triggered measurement window."""

    samples: int
    min_ma: float
    max_ma: float
    avg_ma: float
    duration_s: float

    @property
    def avg_power_w(self) -> float:
        """Average power implied by the mean current."""
        return units.current_ma_to_power_w(self.avg_ma)

    @property
    def energy_j(self) -> float:
        """Energy over the window at the mean power."""
        return self.avg_power_w * self.duration_s


class Multimeter:
    """Samples current draw over a timeline between trigger marks."""

    def __init__(
        self,
        sample_rate_hz: float = 400.0,
        trigger_overhead_fraction: float = 0.002,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if not 0 <= trigger_overhead_fraction < 0.005:
            # The paper validates its rig at < 0.5% overhead; reject
            # configurations that would not be comparable.
            raise ValueError("trigger overhead must be below 0.5%")
        self.sample_rate_hz = sample_rate_hz
        self.trigger_overhead_fraction = trigger_overhead_fraction

    def measure(
        self,
        timeline: PowerTimeline,
        start_s: float = 0.0,
        stop_s: Optional[float] = None,
    ) -> MeterReading:
        """Sample the timeline's current between ``start_s`` and ``stop_s``.

        Zero-duration (pure-energy) segments are invisible to point
        sampling, exactly as a real meter misses sub-sample transients;
        energy reports account for them instead.
        """
        total = timeline.total_time_s
        if stop_s is None:
            stop_s = total
        if stop_s < start_s:
            raise SimulationError("meter stop precedes start")

        currents = self._sample_currents(timeline, start_s, stop_s)
        if not currents:
            raise SimulationError("measurement window contains no samples")
        duration = stop_s - start_s
        avg = sum(currents) / len(currents)
        # Trigger interrupts add a small, bounded measurement overhead.
        avg *= 1.0 + self.trigger_overhead_fraction
        return MeterReading(
            samples=len(currents),
            min_ma=min(currents),
            max_ma=max(currents),
            avg_ma=avg,
            duration_s=duration,
        )

    def _sample_currents(
        self, timeline: PowerTimeline, start_s: float, stop_s: float
    ) -> List[float]:
        period = 1.0 / self.sample_rate_hz
        # Build the segment boundary list once, then walk it with the
        # sample clock.
        bounds: List[tuple] = []
        t = 0.0
        for seg in timeline:
            if seg.duration_s > 0:
                bounds.append((t, t + seg.duration_s, seg.current_ma))
                t += seg.duration_s
        samples: List[float] = []
        idx = 0
        # Offset the first sample half a period in so a sample never lands
        # exactly on a boundary.
        sample_t = start_s + period / 2.0
        while sample_t < stop_s:
            while idx < len(bounds) and bounds[idx][1] <= sample_t:
                idx += 1
            if idx >= len(bounds):
                break
            lo, hi, ma = bounds[idx]
            if lo <= sample_t < hi:
                samples.append(ma)
            sample_t += period
        return samples
