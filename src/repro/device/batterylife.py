"""Battery-runtime estimates: turning Joules into hours and page counts.

The paper measures energy with the battery disconnected; a user cares
about the battery the measurements stand in for.  The iPAQ 3650 ships a
950 mAh lithium-polymer pack at a nominal 3.7 V (~12.7 kJ); the optional
extension pack doubles it.  This module converts session energies into
charge draw and answers "how many of these downloads per charge?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: iPAQ 3650 internal battery: 950 mAh at 3.7 V nominal.
IPAQ_BATTERY_MAH = 950.0
IPAQ_BATTERY_VOLTAGE = 3.7


@dataclass(frozen=True)
class Battery:
    """An idealized battery: capacity at a nominal voltage.

    Conversion losses between the pack and the 5 V rail are folded into
    ``efficiency`` (DC-DC conversion, typically ~85-90%).
    """

    capacity_mah: float = IPAQ_BATTERY_MAH
    voltage_v: float = IPAQ_BATTERY_VOLTAGE
    efficiency: float = 0.87

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ModelError("battery capacity and voltage must be positive")
        if not 0 < self.efficiency <= 1:
            raise ModelError("efficiency must be in (0, 1]")

    @property
    def usable_joules(self) -> float:
        """Deliverable energy at the load."""
        return self.capacity_mah / 1000.0 * 3600.0 * self.voltage_v * self.efficiency

    def sessions_per_charge(self, session_energy_j: float) -> float:
        """How many identical sessions one charge supports."""
        if session_energy_j <= 0:
            raise ModelError("session energy must be positive")
        return self.usable_joules / session_energy_j

    def lifetime_hours_at(self, power_w: float) -> float:
        """Runtime at a constant draw."""
        if power_w <= 0:
            raise ModelError("power must be positive")
        return self.usable_joules / power_w / 3600.0

    def drain_fraction(self, energy_j: float) -> float:
        """Share of a full charge one session consumes."""
        if energy_j < 0:
            raise ModelError("energy must be non-negative")
        return energy_j / self.usable_joules


def downloads_per_charge(
    session_energy_j: float, battery: Battery = Battery()
) -> int:
    """Whole sessions a fresh charge supports."""
    return int(battery.sessions_per_charge(session_energy_j))
