"""HandheldDevice facade: power table + CPU cost model + timeline building.

The facade owns the translation from "the device did X for T seconds" to
tagged power segments, so session code never touches raw Table 1 lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro import units
from repro.device import power as power_mod
from repro.device.battery import EnergyReport
from repro.device.cpu import DeviceCpuModel, IPAQ_CPU
from repro.device.power import CpuState, PowerTable, RadioState, IPAQ_POWER_TABLE
from repro.device.timeline import PowerTimeline


@dataclass
class HandheldDevice:
    """An iPAQ-3650-like handheld with measured power characteristics.

    Attributes:
        power_table: Table 1 currents.
        cpu: per-codec computation cost model.
        recv_active_power_w: draw while actively receiving packets
            (derived from the paper's m; see :mod:`repro.device.power`).
    """

    power_table: PowerTable = field(default_factory=lambda: IPAQ_POWER_TABLE)
    cpu: DeviceCpuModel = field(default_factory=lambda: IPAQ_CPU)
    recv_active_power_w: float = power_mod.RECV_ACTIVE_POWER_W

    # -- power lookups ------------------------------------------------------

    @property
    def idle_power_w(self) -> float:
        """p_i: CPU idle, radio idle, no power save (310 mA)."""
        return self.power_table.power_w(CpuState.IDLE, RadioState.IDLE, False)

    @property
    def idle_power_save_w(self) -> float:
        """CPU idle with the radio in power-saving mode (110 mA)."""
        return self.power_table.power_w(CpuState.IDLE, RadioState.IDLE, True)

    @property
    def sleep_power_w(self) -> float:
        """CPU idle, radio asleep (90 mA)."""
        return self.power_table.power_w(CpuState.IDLE, RadioState.SLEEP)

    def decompress_power_w(self, power_save: bool = False) -> float:
        """p_d: 570 mA radio-idle, or 1.70 W (340 mA) in power-saving mode."""
        return self.power_table.power_w(
            CpuState.BUSY, RadioState.IDLE, power_save, activity="decompress"
        )

    def busy_power_w(self, power_save: bool = False) -> float:
        """Generic computation draw, radio idle (mid-range of Table 1)."""
        return self.power_table.power_w(CpuState.BUSY, RadioState.IDLE, power_save)

    # -- timeline builders ---------------------------------------------------

    def recv_segment(self, timeline: PowerTimeline, duration_s: float) -> None:
        """Append an active-receive segment."""
        timeline.add(duration_s, self.recv_active_power_w, "recv")

    def idle_segment(
        self, timeline: PowerTimeline, duration_s: float, power_save: bool = False
    ) -> None:
        """Append an idle segment (optionally power-saving)."""
        power = self.idle_power_save_w if power_save else self.idle_power_w
        timeline.add(duration_s, power, "idle")

    def decompress_segment(
        self, timeline: PowerTimeline, duration_s: float, power_save: bool = False
    ) -> None:
        """Append a decompression segment at p_d."""
        timeline.add(duration_s, self.decompress_power_w(power_save), "decompress")

    def compress_segment(
        self, timeline: PowerTimeline, duration_s: float, power_save: bool = False
    ) -> None:
        """Append a computation segment at the busy draw."""
        timeline.add(duration_s, self.busy_power_w(power_save), "compress")

    def startup_segment(self, timeline: PowerTimeline) -> None:
        """Network communication start-up cost cs (Equation 1)."""
        timeline.add_energy(units.COMM_STARTUP_ENERGY_J, "startup")

    # -- convenience ----------------------------------------------------------

    def report(self, timeline: PowerTimeline) -> EnergyReport:
        """Energy report for a finished timeline."""
        return EnergyReport.from_timeline(timeline)

    def decompress_time_s(
        self, codec_name: str, raw_bytes: float, compressed_bytes: float
    ) -> float:
        """Device decompression time for a codec and sizes."""
        return self.cpu.decompress_time_s(codec_name, raw_bytes, compressed_bytes)

    def compress_time_s(
        self, codec_name: str, raw_bytes: float, compressed_bytes: float
    ) -> float:
        """Device compression time for a codec and sizes."""
        return self.cpu.compress_time_s(codec_name, raw_bytes, compressed_bytes)
