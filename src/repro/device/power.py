"""Table 1 of the paper: measured iPAQ + WaveLAN current draw.

Each row of the paper's Table 1 is reproduced verbatim, including the
measured ranges for busy modes and the parenthesized averages observed
during gzip decompression.  All numbers are electrical current in mA with
the screen off and the device powered from an external 5 V supply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import units
from repro.errors import ModelError


class CpuState(enum.Enum):
    """iPAQ processor mode (Table 1, first column)."""

    #: The device does nothing.
    IDLE = "idle"
    #: The device performs computation.
    BUSY = "busy"
    #: The CPU services the network interface ('-' rows in Table 1:
    #: "the CPU is not idle even if it is not performing any computational
    #: tasks" while the card sends or receives).
    NETWORK = "network"


class RadioState(enum.Enum):
    """WaveLAN card mode (Table 1, second column)."""

    SLEEP = "sleep"
    IDLE = "idle"
    RECV = "recv"
    SEND = "send"


@dataclass(frozen=True)
class PowerRow:
    """One Table 1 row: a current range plus activity-specific averages."""

    min_ma: float
    max_ma: float
    #: Average current while running gzip/zlib decompression in this state,
    #: where the paper reports one (the parenthesized numbers).
    decompress_ma: Optional[float] = None

    @property
    def mid_ma(self) -> float:
        """Midpoint of the measured current range."""
        return (self.min_ma + self.max_ma) / 2.0

    def current_ma(self, activity: Optional[str] = None) -> float:
        """Current for an activity (decompress average when available)."""
        if activity == "decompress" and self.decompress_ma is not None:
            return self.decompress_ma
        return self.mid_ma


_Key = Tuple[CpuState, RadioState, Optional[bool]]


class PowerTable:
    """Lookup from (cpu, radio, power_save) to current draw.

    ``power_save=None`` matches rows where the paper leaves the column
    blank (sleep-mode rows, where power saving is what produces sleep).
    """

    def __init__(self, rows: Dict[_Key, PowerRow], voltage_v: float = units.SUPPLY_VOLTAGE_V):
        self._rows = dict(rows)
        self.voltage_v = voltage_v

    def row(
        self,
        cpu: CpuState,
        radio: RadioState,
        power_save: Optional[bool] = None,
    ) -> PowerRow:
        """The Table 1 row for a state combination."""
        for key in ((cpu, radio, power_save), (cpu, radio, None)):
            if key in self._rows:
                return self._rows[key]
        raise ModelError(
            f"no Table 1 row for cpu={cpu.value} radio={radio.value} "
            f"power_save={power_save}"
        )

    def current_ma(
        self,
        cpu: CpuState,
        radio: RadioState,
        power_save: Optional[bool] = None,
        activity: Optional[str] = None,
    ) -> float:
        """Current in mA for a state combination."""
        return self.row(cpu, radio, power_save).current_ma(activity)

    def power_w(
        self,
        cpu: CpuState,
        radio: RadioState,
        power_save: Optional[bool] = None,
        activity: Optional[str] = None,
    ) -> float:
        """Power in watts for a state combination."""
        ma = self.current_ma(cpu, radio, power_save, activity)
        return units.current_ma_to_power_w(ma, self.voltage_v)

    def rows(self) -> Dict[_Key, PowerRow]:
        """A copy of the underlying row mapping."""
        return dict(self._rows)


#: Table 1, transcribed.  SEND rows mirror RECV: the paper adjusts "the bit
#: rate (for both send and receive)" together and reports no separate send
#: current, and the WaveLAN card's transmit draw at this power level is
#: within the same band.
IPAQ_POWER_TABLE = PowerTable(
    {
        (CpuState.IDLE, RadioState.SLEEP, None): PowerRow(90, 90),
        (CpuState.BUSY, RadioState.SLEEP, None): PowerRow(300, 440, decompress_ma=310),
        (CpuState.IDLE, RadioState.IDLE, False): PowerRow(310, 310),
        (CpuState.IDLE, RadioState.IDLE, True): PowerRow(110, 110),
        (CpuState.BUSY, RadioState.IDLE, False): PowerRow(530, 670, decompress_ma=570),
        (CpuState.BUSY, RadioState.IDLE, True): PowerRow(330, 470, decompress_ma=340),
        (CpuState.NETWORK, RadioState.RECV, False): PowerRow(430, 430),
        (CpuState.NETWORK, RadioState.RECV, True): PowerRow(400, 400),
        (CpuState.BUSY, RadioState.RECV, False): PowerRow(550, 690),
        (CpuState.BUSY, RadioState.RECV, True): PowerRow(470, 690),
        (CpuState.NETWORK, RadioState.SEND, False): PowerRow(430, 430),
        (CpuState.NETWORK, RadioState.SEND, True): PowerRow(400, 400),
        (CpuState.BUSY, RadioState.SEND, False): PowerRow(550, 690),
        (CpuState.BUSY, RadioState.SEND, True): PowerRow(470, 690),
    }
)

#: Key model powers the paper's fitted equations imply (Section 4.2).
#: p_i: system idle between packet arrivals = idle/idle/off = 310 mA.
IDLE_POWER_W = IPAQ_POWER_TABLE.power_w(CpuState.IDLE, RadioState.IDLE, False)
#: p_d: gzip decompression, radio idle, no power save = 570 mA.
DECOMPRESS_POWER_W = IPAQ_POWER_TABLE.power_w(
    CpuState.BUSY, RadioState.IDLE, False, activity="decompress"
)
#: p_d with the radio in power-saving mode ("letting pd equal to 1.70",
#: Section 4.2) = 340 mA.
DECOMPRESS_SLEEP_POWER_W = IPAQ_POWER_TABLE.power_w(
    CpuState.BUSY, RadioState.IDLE, True, activity="decompress"
)
#: Effective power while actively receiving, derived from the paper's
#: m = 2.486 J/MB at 0.6 MB/s with the 40% idle fraction excluded:
#: active receive occupies (1 - 0.4) of 1/0.6 s per MB, so
#: p_recv = m * rate / (1 - idle_fraction).  This exceeds the steady-state
#: 430 mA Table 1 row because packet copy/assembly work rides on top.
RECV_ACTIVE_POWER_W = (
    units.RECEIVE_ENERGY_J_PER_MB
    * units.MODEL_RATE_11MBPS_MBPS
    / (1.0 - units.IDLE_FRACTION_11MBPS)
)
