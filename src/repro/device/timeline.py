"""Power timelines: the common currency between simulator and meters.

A session (download, decompress, ...) produces a sequence of
:class:`PowerSegment` records — contiguous intervals of constant power
draw tagged with what the device was doing.  Energy reports, multimeter
readings and the figure harnesses are all computed from timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro import units
from repro.errors import SimulationError


@dataclass(frozen=True)
class PowerSegment:
    """A constant-power interval.

    Attributes:
        duration_s: interval length; may be 0 for pure-energy events
            (e.g. the communication start-up cost cs).
        power_w: draw during the interval.
        tag: activity label ("recv", "idle", "decompress", ...).
        energy_j: explicit energy override; defaults to power x duration.
    """

    duration_s: float
    power_w: float
    tag: str
    energy_j: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise SimulationError(f"negative segment duration {self.duration_s}")
        if self.power_w < 0:
            raise SimulationError(f"negative segment power {self.power_w}")

    @property
    def energy(self) -> float:
        """Energy of the segment (override or power x duration)."""
        if self.energy_j is not None:
            return self.energy_j
        return self.power_w * self.duration_s

    @property
    def current_ma(self) -> float:
        """The current a meter would read during this segment."""
        return units.power_w_to_current_ma(self.power_w)


@dataclass
class PowerTimeline:
    """An ordered list of power segments with aggregation helpers."""

    segments: List[PowerSegment] = field(default_factory=list)

    def add(
        self,
        duration_s: float,
        power_w: float,
        tag: str,
        energy_j: Optional[float] = None,
    ) -> None:
        """Append a constant-power segment."""
        if duration_s == 0 and not energy_j:
            return
        self.segments.append(PowerSegment(duration_s, power_w, tag, energy_j))

    def add_energy(self, energy_j: float, tag: str) -> None:
        """Record an instantaneous energy cost (zero wall time)."""
        self.segments.append(PowerSegment(0.0, 0.0, tag, energy_j=energy_j))

    def extend(self, other: "PowerTimeline") -> None:
        """Append another timeline's segments."""
        self.segments.extend(other.segments)

    def __iter__(self) -> Iterator[PowerSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def total_time_s(self) -> float:
        """Total wall time in seconds."""
        return sum(seg.duration_s for seg in self.segments)

    @property
    def total_energy_j(self) -> float:
        """Total energy in joules."""
        return sum(seg.energy for seg in self.segments)

    def time_by_tag(self) -> Dict[str, float]:
        """Seconds per activity tag."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.tag] = out.get(seg.tag, 0.0) + seg.duration_s
        return out

    def time_for(self, *tags: str) -> float:
        """Seconds spent in the given activity tags."""
        return sum(seg.duration_s for seg in self.segments if seg.tag in tags)

    def energy_for(self, *tags: str) -> float:
        """Joules spent in the given activity tags."""
        return sum(seg.energy for seg in self.segments if seg.tag in tags)

    def energy_by_tag(self) -> Dict[str, float]:
        """Joules per activity tag."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.tag] = out.get(seg.tag, 0.0) + seg.energy
        return out

    def average_power_w(self) -> float:
        """Mean power over the timeline (0 for empty)."""
        t = self.total_time_s
        if t <= 0:
            return 0.0
        return self.total_energy_j / t

    def merged(self) -> "PowerTimeline":
        """Coalesce adjacent segments with equal power and tag."""
        merged = PowerTimeline()
        for seg in self.segments:
            if (
                merged.segments
                and merged.segments[-1].tag == seg.tag
                and merged.segments[-1].power_w == seg.power_w
                and merged.segments[-1].energy_j is None
                and seg.energy_j is None
            ):
                last = merged.segments.pop()
                merged.segments.append(
                    PowerSegment(last.duration_s + seg.duration_s, seg.power_w, seg.tag)
                )
            else:
                merged.segments.append(seg)
        return merged

    @classmethod
    def concat(cls, timelines: Iterable["PowerTimeline"]) -> "PowerTimeline":
        out = cls()
        for tl in timelines:
            out.extend(tl)
        return out
