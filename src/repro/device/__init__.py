"""Handheld-device substrate: power states, energy accounting, CPU costs.

Models the paper's Compaq iPAQ 3650 (206 MHz StrongARM SA-1110, 32 MB RAM)
with the measured Table 1 power parameters, an energy integrator standing
in for the HP 3458a multimeter rig, and calibrated per-codec computation
cost models.
"""

from repro.device.power import (
    CpuState,
    RadioState,
    PowerTable,
    IPAQ_POWER_TABLE,
)
from repro.device.timeline import PowerSegment, PowerTimeline
from repro.device.battery import EnergyReport
from repro.device.meter import Multimeter, MeterReading
from repro.device.cpu import DeviceCpuModel, IPAQ_CPU
from repro.device.handheld import HandheldDevice

__all__ = [
    "CpuState",
    "RadioState",
    "PowerTable",
    "IPAQ_POWER_TABLE",
    "PowerSegment",
    "PowerTimeline",
    "EnergyReport",
    "Multimeter",
    "MeterReading",
    "DeviceCpuModel",
    "IPAQ_CPU",
    "HandheldDevice",
]
