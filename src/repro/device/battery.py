"""Energy accounting over power timelines.

Stands in for the paper's measurement rig output: total Joules, equivalent
battery charge, and a per-activity breakdown like Figure 3's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.device.timeline import PowerTimeline


@dataclass(frozen=True)
class EnergyReport:
    """Summary of one session's energy use."""

    total_time_s: float
    total_energy_j: float
    energy_by_tag: Dict[str, float]
    time_by_tag: Dict[str, float]

    @classmethod
    def from_timeline(cls, timeline: PowerTimeline) -> "EnergyReport":
        return cls(
            total_time_s=timeline.total_time_s,
            total_energy_j=timeline.total_energy_j,
            energy_by_tag=timeline.energy_by_tag(),
            time_by_tag=timeline.time_by_tag(),
        )

    @property
    def average_power_w(self) -> float:
        """Mean power over the session."""
        if self.total_time_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    @property
    def charge_mah(self) -> float:
        """Battery charge equivalent at the supply voltage."""
        joules = self.total_energy_j
        # E = V * I * t  =>  I*t (mAh) = E / V / 3600 * 1000
        return joules / units.SUPPLY_VOLTAGE_V / 3600.0 * 1000.0

    def fraction_by_tag(self) -> Dict[str, float]:
        """Energy share per activity (sums to 1 for non-empty sessions)."""
        total = self.total_energy_j
        if total <= 0:
            return {tag: 0.0 for tag in self.energy_by_tag}
        return {tag: e / total for tag, e in self.energy_by_tag.items()}

    def relative_to(self, baseline: "EnergyReport") -> "RelativeReport":
        """Time/energy ratios versus a baseline report."""
        return RelativeReport(
            time_ratio=_safe_ratio(self.total_time_s, baseline.total_time_s),
            energy_ratio=_safe_ratio(self.total_energy_j, baseline.total_energy_j),
        )


@dataclass(frozen=True)
class RelativeReport:
    """Time/energy relative to a baseline session (the paper's bar heights,
    which are 'relative to the time spent when downloading without
    compression', Section 3.2)."""

    time_ratio: float
    energy_ratio: float


def _safe_ratio(value: float, baseline: float) -> float:
    if baseline <= 0:
        return float("inf") if value > 0 else 1.0
    return value / baseline
