"""Computation cost models for the handheld CPU (StrongARM SA-1110).

Device-side (de)compression time cannot come from host wall-clock time, so
it is modelled the way the paper itself models it: linear in the raw and
compressed sizes.  The zlib/gzip decompression coefficients are the
paper's own fit (td = 0.161*s + 0.161*sc + 0.004 s, sizes in MB,
Section 4.2, R^2 = 96.7%).  The other schemes' coefficients are calibrated
to the relative costs the paper reports qualitatively: `compress` (LZW)
decompresses slightly faster than gzip per byte but its poorer factor
yields larger compressed inputs; bzip2 "performs more computation than the
other two schemes, since it requires a reverse transformation"
(Section 3.2) and is several times slower per output byte, which is what
puts it "in energy disadvantage".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.errors import ModelError


@dataclass(frozen=True)
class LinearCost:
    """t = per_compressed_mb * sc + per_raw_mb * s + constant (seconds)."""

    per_compressed_mb: float
    per_raw_mb: float
    constant_s: float

    def seconds(self, raw_bytes: float, compressed_bytes: float) -> float:
        """Evaluate the cost line for the given byte sizes."""
        s = units.bytes_to_mb(raw_bytes)
        sc = units.bytes_to_mb(compressed_bytes)
        return self.per_compressed_mb * sc + self.per_raw_mb * s + self.constant_s

    def marginal_seconds(self, raw_bytes: float, compressed_bytes: float) -> float:
        """Per-block work excluding the per-file constant term."""
        s = units.bytes_to_mb(raw_bytes)
        sc = units.bytes_to_mb(compressed_bytes)
        return self.per_compressed_mb * sc + self.per_raw_mb * s


class DeviceCpuModel:
    """Per-scheme decompression (and upload-path compression) costs."""

    def __init__(
        self,
        decompress: Dict[str, LinearCost],
        compress: Dict[str, LinearCost],
        clock_hz: float = 206e6,
    ) -> None:
        self._decompress = dict(decompress)
        self._compress = dict(compress)
        self.clock_hz = clock_hz

    @staticmethod
    def _scheme(codec_name: str) -> str:
        """Map codec/engine names onto the cost families."""
        name = codec_name.lower()
        if name in ("gzip", "deflate", "zlib", "gzip-native"):
            return "gzip"
        if name in ("gzip-fast", "gzip-1", "zlib-fast"):
            return "gzip-fast"
        if name in ("compress", "lzw", "compress-native"):
            return "compress"
        if name in ("bzip2", "bwt", "bz2", "bzip2-native"):
            return "bzip2"
        raise ModelError(f"no cost model for codec {codec_name!r}")

    def decompress_cost(self, codec_name: str) -> LinearCost:
        """The decompression cost line for a codec name."""
        return self._decompress[self._scheme(codec_name)]

    def compress_cost(self, codec_name: str) -> LinearCost:
        """The compression cost line for a codec name."""
        return self._compress[self._scheme(codec_name)]

    def decompress_time_s(
        self, codec_name: str, raw_bytes: float, compressed_bytes: float
    ) -> float:
        """Seconds to decompress on the device."""
        if raw_bytes < 0 or compressed_bytes < 0:
            raise ModelError("sizes must be non-negative")
        return self.decompress_cost(codec_name).seconds(raw_bytes, compressed_bytes)

    def compress_time_s(
        self, codec_name: str, raw_bytes: float, compressed_bytes: float
    ) -> float:
        """Seconds to compress on the device (upload path)."""
        if raw_bytes < 0 or compressed_bytes < 0:
            raise ModelError("sizes must be non-negative")
        return self.compress_cost(codec_name).seconds(raw_bytes, compressed_bytes)


#: iPAQ 3650 cost model.  gzip decompression is the paper's fitted line;
#: the rest are calibrated as documented in the module docstring and
#: DESIGN.md.
IPAQ_CPU = DeviceCpuModel(
    decompress={
        "gzip": LinearCost(
            units.DECOMP_TIME_PER_COMP_MB_S,
            units.DECOMP_TIME_PER_RAW_MB_S,
            units.DECOMP_TIME_CONSTANT_S,
        ),
        # "a high compression factor does not increase the decompression
        # speed and energy much" (Section 3.1): level 1 decodes like level 9.
        "gzip-fast": LinearCost(
            units.DECOMP_TIME_PER_COMP_MB_S,
            units.DECOMP_TIME_PER_RAW_MB_S,
            units.DECOMP_TIME_CONSTANT_S,
        ),
        "compress": LinearCost(0.10, 0.155, 0.003),
        "bzip2": LinearCost(0.30, 0.70, 0.015),
    },
    compress={
        # Level-9 compression on a 206 MHz StrongARM is roughly an order
        # of magnitude slower than decompression for gzip, less skewed for
        # LZW, and slowest for bzip2's block sort.  gzip-fast models the
        # level-1 configuration (short hash chains, minimal lazy search),
        # the realistic choice for on-device upload compression.
        "gzip": LinearCost(0.10, 2.0, 0.010),
        "gzip-fast": LinearCost(0.06, 0.55, 0.008),
        "compress": LinearCost(0.08, 0.80, 0.005),
        "bzip2": LinearCost(0.20, 3.5, 0.020),
    },
)
