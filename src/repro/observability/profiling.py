"""Wall-clock section profiling for the benchmark harness.

The figure benchmarks regenerate every table in the paper; when one of
them slows down we want to know *which stage* without reaching for a
full profiler.  :func:`profiled` wraps a code section and records its
wall time into a process-global :class:`WallClockProfiler`;
``benchmarks/common.py`` wraps artifact generation with it and prints
the report when ``REPRO_PROFILE`` is set.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple


class WallClockProfiler:
    """Accumulates (calls, total seconds, max seconds) per section."""

    def __init__(self) -> None:
        self._records: Dict[str, Tuple[int, float, float]] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (wall clock)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            calls, total, peak = self._records.get(name, (0, 0.0, 0.0))
            self._records[name] = (calls + 1, total + elapsed, max(peak, elapsed))

    def record(self, name: str, seconds: float) -> None:
        """Fold an externally-timed duration into a section."""
        calls, total, peak = self._records.get(name, (0, 0.0, 0.0))
        self._records[name] = (calls + 1, total + seconds, max(peak, seconds))

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-section {calls, total_s, max_s}, sorted by name."""
        return {
            name: {"calls": calls, "total_s": total, "max_s": peak}
            for name, (calls, total, peak) in sorted(self._records.items())
        }

    def report(self) -> str:
        """Fixed-width table, slowest section first."""
        lines = [f"{'section':<36} {'calls':>6} {'total (s)':>10} {'max (s)':>9}"]
        by_total = sorted(self._records.items(), key=lambda kv: -kv[1][1])
        for name, (calls, total, peak) in by_total:
            lines.append(f"{name:<36} {calls:>6} {total:>10.4f} {peak:>9.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every recorded section."""
        self._records.clear()


#: The process-global profiler the benchmarks share.
PROFILER = WallClockProfiler()

#: ``with profiled("stage"): ...`` — record into the global profiler.
profiled = PROFILER.section
