"""Read a trace JSONL back and render per-session phase summaries.

This is the ``repro trace summarize`` subcommand's engine: it validates
the schema version, rebuilds each session's per-phase energy totals
from its spans, and re-checks the conservation identity against the
session record's own total — an offline replay of the audit both
engines ran when the trace was written.  A trace that fails the check
(hand-edited, truncated, or produced by a buggy engine) is reported
with a nonzero verdict so ``make trace-check`` can gate on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TraceFormatError
from repro.observability.ledger import LEDGER_REL_TOL
from repro.observability.trace import TRACE_SCHEMA_VERSION


@dataclass
class SessionSummary:
    """One session rebuilt from its trace records."""

    session_id: int
    engine: str = "?"
    scenario: str = "?"
    codec: str = "-"
    time_s: float = 0.0
    energy_j: float = 0.0
    span_energy_by_phase: Dict[str, float] = field(default_factory=dict)
    span_energy_by_tag: Dict[str, float] = field(default_factory=dict)
    events: int = 0

    @property
    def span_sum_j(self) -> float:
        """Joules summed over the session's spans."""
        return sum(self.span_energy_by_tag.values())

    @property
    def conserved(self) -> bool:
        """Do the spans sum to the session total within tolerance?"""
        scale = max(abs(self.energy_j), 1.0)
        return abs(self.span_sum_j - self.energy_j) <= LEDGER_REL_TOL * scale


def load_trace(path) -> Tuple[dict, List[SessionSummary]]:
    """Parse a trace JSONL file into (header, session summaries)."""
    header = None
    sessions: Dict[int, SessionSummary] = {}
    with open(path, "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            kind = record.get("type")
            if kind == "header":
                version = record.get("schema_version")
                if version != TRACE_SCHEMA_VERSION:
                    raise TraceFormatError(
                        f"{path}: schema version {version!r}, "
                        f"this reader understands {TRACE_SCHEMA_VERSION}"
                    )
                header = record
            elif kind == "session":
                sid = record["session_id"]
                sessions[sid] = SessionSummary(
                    session_id=sid,
                    engine=record.get("engine", "?"),
                    scenario=record.get("scenario", "?"),
                    codec=record.get("codec") or "-",
                    time_s=record.get("time_s", 0.0),
                    energy_j=record.get("energy_j", 0.0),
                )
            elif kind == "span":
                summary = sessions.get(record["session_id"])
                if summary is None:
                    raise TraceFormatError(
                        f"{path}:{lineno}: span before its session record"
                    )
                phase = record.get("phase", "unknown")
                tag = record.get("tag", "unknown")
                energy = record.get("energy_j", 0.0)
                summary.span_energy_by_phase[phase] = (
                    summary.span_energy_by_phase.get(phase, 0.0) + energy
                )
                summary.span_energy_by_tag[tag] = (
                    summary.span_energy_by_tag.get(tag, 0.0) + energy
                )
            elif kind == "event":
                sid = record.get("session_id")
                if sid is not None and sid in sessions:
                    sessions[sid].events += 1
            else:
                raise TraceFormatError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    if header is None:
        raise TraceFormatError(f"{path}: no header record found")
    return header, [sessions[k] for k in sorted(sessions)]


def summarize(path) -> Tuple[str, bool]:
    """(report text, all sessions conserved?) for one trace file."""
    header, sessions = load_trace(path)
    lines = [
        f"trace {path}: schema v{header['schema_version']}, "
        f"{len(sessions)} session(s), {header.get('failures', 0)} failure(s)"
    ]
    all_ok = True
    for s in sessions:
        verdict = "OK" if s.conserved else "CONSERVATION VIOLATED"
        if not s.conserved:
            all_ok = False
        lines.append(
            f"\nsession {s.session_id} [{s.engine}] {s.scenario} "
            f"codec={s.codec} time={s.time_s:.3f}s "
            f"energy={s.energy_j:.4f}J events={s.events}"
        )
        lines.append(f"  {'phase':<12} {'energy (J)':>12} {'share':>7}")
        total = s.energy_j or 1.0
        for phase, joules in sorted(
            s.span_energy_by_phase.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {phase:<12} {joules:>12.4f} {joules / total:>6.1%}")
        lines.append(
            f"  {'sum':<12} {s.span_sum_j:>12.4f}  -> {verdict}"
        )
    if not sessions:
        all_ok = False
        lines.append("no sessions recorded")
    return "\n".join(lines), all_ok
