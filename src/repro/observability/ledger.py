"""The energy ledger: tagged debits that must sum to the session total.

Every joule a session charges lands on its :class:`PowerTimeline` under
an activity tag.  The ledger groups those charges into per-tag debit
entries, assigns each tag to exactly one accounting *phase* (so derived
metrics like ``fault_overhead_j`` and ``recovery_energy_j`` are
provably disjoint), and :meth:`~EnergyLedger.audit` enforces the
conservation identity the paper's Equations 1-5 rest on:

    sum(entries) == total_energy_j        (to 1e-9 relative tolerance)

plus the structural invariants that make the decomposition meaningful —
every tag is registered in the taxonomy, no debit is negative or
non-finite, and the per-phase rollup re-sums to the same total.  Both
engines run the audit on every session they build, so an unregistered
tag or a double-charged window fails fast instead of silently skewing
benchmark JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import LedgerAuditError

#: Conservation tolerance: |sum(entries) - total| <= tol * max(|total|, 1).
LEDGER_REL_TOL = 1e-9

#: Every activity tag an engine may emit, mapped to its accounting
#: phase.  A tag appears in exactly one phase — that disjointness is
#: what makes the derived overhead metrics (loss vs integrity vs fault)
#: true debits rather than overlapping windows.
TAG_TAXONOMY: Mapping[str, str] = {
    # One-off protocol costs (communication startup, reassoc startup is
    # charged under its fault tag).
    "startup": "overhead",
    # Payload airtime, both directions.
    "recv": "transfer",
    "send": "transfer",
    # Link idle gaps, power-save idling and wake latency.
    "idle": "idle",
    "gap-idle": "idle",
    "wake": "idle",
    # Waiting for the proxy to compress (on-demand, tool-style).
    "wait-compress": "wait",
    # Device CPU work on payload bytes.
    "decompress": "compute",
    "compress": "compute",
    # Integrity machinery: corrupt-block re-fetches and CRC time.
    "refetch": "integrity",
    "verify": "integrity",
    # Lossy-link machinery: retransmitted airtime and ARQ timeouts.
    "retransmit": "loss",
    "retry-idle": "loss",
    # Fault-timeline machinery: dead time and re-delivered tails.
    "outage": "fault",
    "reassoc": "fault",
    "stall": "fault",
    "resume": "fault",
    "refetch-fault": "fault",
}

#: Tag groups behind the legacy ``SessionResult`` overhead properties.
LOSS_TAGS: Tuple[str, ...] = ("retransmit", "retry-idle")
INTEGRITY_TAGS: Tuple[str, ...] = ("refetch", "verify")
FAULT_TAGS: Tuple[str, ...] = ("outage", "reassoc", "resume", "refetch-fault")


@dataclass(frozen=True)
class LedgerEntry:
    """One tagged debit: all the joules (and seconds) charged to a tag."""

    tag: str
    phase: str
    energy_j: float
    time_s: float
    #: Number of timeline segments folded into this entry.
    segments: int


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one conservation audit."""

    total_energy_j: float
    entry_sum_j: float
    relative_error: float
    problems: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Did the ledger balance with no problems?"""
        return not self.problems


class EnergyLedger:
    """Tagged debit entries over one session's power timeline."""

    def __init__(
        self,
        entries: Iterable[LedgerEntry],
        total_energy_j: float,
        total_time_s: float,
    ) -> None:
        self.entries: Tuple[LedgerEntry, ...] = tuple(entries)
        self.total_energy_j = total_energy_j
        self.total_time_s = total_time_s

    @classmethod
    def from_timeline(cls, timeline) -> "EnergyLedger":
        """Fold a :class:`PowerTimeline` into per-tag debit entries.

        The reported total comes from the timeline's own accessors, so
        the audit compares two independently-computed sums.
        """
        energy: Dict[str, float] = {}
        time: Dict[str, float] = {}
        count: Dict[str, int] = {}
        for seg in timeline:
            energy[seg.tag] = energy.get(seg.tag, 0.0) + seg.energy
            time[seg.tag] = time.get(seg.tag, 0.0) + seg.duration_s
            count[seg.tag] = count.get(seg.tag, 0) + 1
        entries = [
            LedgerEntry(
                tag=tag,
                phase=TAG_TAXONOMY.get(tag, "unknown"),
                energy_j=energy[tag],
                time_s=time[tag],
                segments=count[tag],
            )
            for tag in sorted(energy)
        ]
        return cls(entries, timeline.total_energy_j, timeline.total_time_s)

    @classmethod
    def from_result(cls, result) -> "EnergyLedger":
        """Ledger of a finished :class:`SessionResult`."""
        return cls.from_timeline(result.timeline)

    # -- views ----------------------------------------------------------------

    def by_tag(self) -> Dict[str, float]:
        """Joules per tag."""
        return {e.tag: e.energy_j for e in self.entries}

    def by_phase(self) -> Dict[str, float]:
        """Joules per accounting phase."""
        out: Dict[str, float] = {}
        for e in self.entries:
            out[e.phase] = out.get(e.phase, 0.0) + e.energy_j
        return out

    def time_by_tag(self) -> Dict[str, float]:
        """Seconds per tag."""
        return {e.tag: e.time_s for e in self.entries}

    def energy(self, *tags: str) -> float:
        """Joules debited to the given tags."""
        return sum(e.energy_j for e in self.entries if e.tag in tags)

    # -- the audit -------------------------------------------------------------

    def audit(
        self, rel_tol: float = LEDGER_REL_TOL, strict: bool = True
    ) -> AuditReport:
        """Check conservation and the structural ledger invariants.

        Raises :class:`~repro.errors.LedgerAuditError` on any violation
        unless ``strict=False``, in which case the problems come back on
        the :class:`AuditReport`.
        """
        problems: List[str] = []
        entry_sum = 0.0
        for e in self.entries:
            if not math.isfinite(e.energy_j):
                problems.append(f"tag {e.tag!r}: non-finite energy {e.energy_j!r}")
                continue
            if e.energy_j < 0:
                problems.append(f"tag {e.tag!r}: negative debit {e.energy_j!r} J")
            if not math.isfinite(e.time_s) or e.time_s < 0:
                problems.append(f"tag {e.tag!r}: bad wall time {e.time_s!r} s")
            if e.tag not in TAG_TAXONOMY:
                problems.append(
                    f"tag {e.tag!r} is not registered in the ledger taxonomy"
                )
            entry_sum += e.energy_j
        if not math.isfinite(self.total_energy_j):
            problems.append(f"non-finite session total {self.total_energy_j!r}")
        else:
            scale = max(abs(self.total_energy_j), 1.0)
            if abs(entry_sum - self.total_energy_j) > rel_tol * scale:
                problems.append(
                    "conservation violated: entries sum to "
                    f"{entry_sum!r} J but the session total is "
                    f"{self.total_energy_j!r} J"
                )
            phase_sum = sum(self.by_phase().values())
            if abs(phase_sum - entry_sum) > rel_tol * scale:
                problems.append(
                    f"phase rollup {phase_sum!r} J disagrees with the "
                    f"entry sum {entry_sum!r} J"
                )
        scale = max(abs(self.total_energy_j), 1.0)
        report = AuditReport(
            total_energy_j=self.total_energy_j,
            entry_sum_j=entry_sum,
            relative_error=abs(entry_sum - self.total_energy_j) / scale,
            problems=tuple(problems),
        )
        if strict and problems:
            raise LedgerAuditError(
                "energy ledger audit failed:\n  " + "\n  ".join(problems)
            )
        return report

    # -- comparison ------------------------------------------------------------

    def diff(
        self,
        other: "EnergyLedger",
        rel_tol: float = 0.01,
        abs_tol: float = 1e-3,
        exclude_tags: Iterable[str] = (),
    ) -> List[str]:
        """Readable per-tag mismatches between two ledgers.

        A tag mismatches when the energies differ by more than
        ``rel_tol`` of the larger side *and* by more than ``abs_tol``
        joules (the absolute floor keeps near-zero phases from failing
        on rounding noise).  Returns one line per mismatching tag;
        an empty list means the ledgers agree.
        """
        excluded = set(exclude_tags)
        mine, theirs = self.by_tag(), other.by_tag()
        lines: List[str] = []
        for tag in sorted(set(mine) | set(theirs)):
            if tag in excluded:
                continue
            a, b = mine.get(tag, 0.0), theirs.get(tag, 0.0)
            scale = max(abs(a), abs(b))
            delta = abs(a - b)
            if delta > abs_tol and delta > rel_tol * scale:
                pct = 100.0 * delta / scale if scale else float("inf")
                lines.append(
                    f"tag {tag!r}: {a:.6f} J vs {b:.6f} J "
                    f"(delta {delta:.6f} J, {pct:.2f}%)"
                )
        ta, tb = self.total_energy_j, other.total_energy_j
        scale = max(abs(ta), abs(tb))
        delta = abs(ta - tb)
        if delta > abs_tol and delta > rel_tol * scale and not excluded:
            lines.append(
                f"total: {ta:.6f} J vs {tb:.6f} J (delta {delta:.6f} J)"
            )
        return lines

    def format(self, title: Optional[str] = None) -> str:
        """Fixed-width per-tag table (phase, seconds, joules, share)."""
        lines = []
        if title:
            lines.append(title)
        lines.append(
            f"{'tag':<14} {'phase':<10} {'time (s)':>12} "
            f"{'energy (J)':>12} {'share':>7}"
        )
        total = self.total_energy_j or 1.0
        for e in sorted(self.entries, key=lambda e: -e.energy_j):
            lines.append(
                f"{e.tag:<14} {e.phase:<10} {e.time_s:>12.4f} "
                f"{e.energy_j:>12.4f} {e.energy_j / total:>6.1%}"
            )
        lines.append(
            f"{'total':<14} {'':<10} {self.total_time_s:>12.4f} "
            f"{self.total_energy_j:>12.4f} {'100.0%':>7}"
        )
        return "\n".join(lines)
