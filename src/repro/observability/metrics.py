"""Metrics: counters, gauges and histograms with Prometheus/JSON export.

A :class:`MetricsRegistry` is the fleet-facing view of the same numbers
the ledger audits per session: :meth:`~MetricsRegistry.observe_session`
folds one :class:`SessionResult` into per-scenario counters and per-tag
energy totals, :meth:`~MetricsRegistry.observe_fleet` aggregates a
multiclient :class:`FleetReport`, and the registry renders either the
Prometheus text exposition format (``to_prometheus``) or a JSON
document (``to_json``) with a stable ``schema_version`` field.

No third-party client library is used: the exposition format is plain
text and the subset emitted here (HELP/TYPE comments, labelled samples,
cumulative histogram buckets) is validated by the CLI smoke tests.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Bumped whenever an exported metric changes name or meaning.
METRICS_SCHEMA_VERSION = 1

#: Default histogram buckets for session durations (seconds).
DEFAULT_TIME_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

#: Default histogram buckets for session energies (joules).
DEFAULT_ENERGY_BUCKETS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0)

LabelSet = Tuple[Tuple[str, str], ...]


def _labels(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically-increasing sample."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be finite and non-negative)."""
        if amount < 0 or not math.isfinite(amount):
            raise ValueError(f"counters only go up; got {amount!r}")
        self.value += amount


class Gauge:
    """A sample that can go anywhere."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the sample."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the sample by ``amount`` (either sign)."""
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * len(self.bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample into the cumulative buckets."""
        if not math.isfinite(value):
            raise ValueError(f"cannot observe {value!r}")
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf excluded."""
        return list(zip(self.bounds, self.counts))


class MetricsRegistry:
    """Named, labelled metrics with Prometheus and JSON renderers."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}
        self._help: Dict[str, str] = {}
        self._kind: Dict[str, str] = {}

    # -- registration ----------------------------------------------------------

    def _get(self, factory, name: str, help: str, labels: Dict[str, str]):
        full = f"{self.namespace}_{name}"
        kind = factory().kind if full not in self._kind else self._kind[full]
        if full in self._kind and self._kind[full] != factory().kind:
            raise ValueError(
                f"metric {full!r} already registered as {self._kind[full]}"
            )
        key = (full, _labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
            self._kind[full] = kind
            if help:
                self._help[full] = help
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get or create the counter for ``name`` + label set."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get or create the gauge for ``name`` + label set."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram for ``name`` + label set."""
        return self._get(lambda: Histogram(buckets), name, help, labels)

    # -- standard observations -------------------------------------------------

    def observe_session(self, result, engine: str) -> None:
        """Fold one finished session into the standard metric set."""
        scenario = result.scenario.value
        self.counter(
            "sessions_total", "Sessions simulated.",
            engine=engine, scenario=scenario,
        ).inc()
        self.counter(
            "session_energy_joules_total", "Session energy, summed.",
            engine=engine, scenario=scenario,
        ).inc(result.energy_j)
        self.counter(
            "session_bytes_total", "Payload bytes transferred, summed.",
            engine=engine, scenario=scenario,
        ).inc(result.transfer_bytes)
        self.histogram(
            "session_time_seconds", "Session wall time.",
            buckets=DEFAULT_TIME_BUCKETS, engine=engine,
        ).observe(result.time_s)
        self.histogram(
            "session_energy_joules", "Session energy.",
            buckets=DEFAULT_ENERGY_BUCKETS, engine=engine,
        ).observe(result.energy_j)
        for tag, joules in result.energy_breakdown().items():
            self.counter(
                "energy_joules_by_tag_total", "Energy per activity tag.",
                engine=engine, tag=tag,
            ).inc(joules)
        if result.link_stats is not None:
            self.counter(
                "arq_retries_total", "ARQ retransmissions.", engine=engine,
            ).inc(result.link_stats.retries)
        if result.recovery_stats is not None:
            self.counter(
                "refetch_blocks_total", "Corrupt-block re-fetches.",
                engine=engine,
            ).inc(result.recovery_stats.refetch_blocks)
        if result.fault_stats is not None:
            fs = result.fault_stats
            self.counter(
                "fault_events_total", "Fault-timeline events survived.",
                engine=engine,
            ).inc(fs.rate_steps + fs.outages + fs.stalls)

    def observe_campaign(self, summary) -> None:
        """Fold one finished campaign run into the standard metric set.

        ``summary`` is a :class:`~repro.campaign.runner.CampaignSummary`
        (duck-typed, like the other observers): per-status cell counts,
        cache hit rate, retries, and the measured parallel speedup —
        the orchestration-layer numbers a fleet dashboard watches.
        """
        name = summary.name
        self.counter(
            "campaign_runs_total", "Campaign runs finished.", campaign=name,
        ).inc()
        self.counter(
            "campaign_cells_total", "Cells by final status.",
            campaign=name, status="ok",
        ).inc(summary.ok)
        self.counter(
            "campaign_cells_total", "Cells by final status.",
            campaign=name, status="failed",
        ).inc(summary.failed)
        self.counter(
            "campaign_cells_executed_total", "Cells actually computed.",
            campaign=name,
        ).inc(summary.executed)
        self.counter(
            "campaign_cache_hits_total", "Cells served from the cache.",
            campaign=name,
        ).inc(summary.cache_hits)
        self.counter(
            "campaign_cells_resumed_total", "Cells skipped via --resume.",
            campaign=name,
        ).inc(summary.resumed)
        self.counter(
            "campaign_retries_total", "Extra attempts on failed cells.",
            campaign=name,
        ).inc(summary.retries)
        self.gauge(
            "campaign_cache_hit_rate", "Hits over cells needing results.",
            campaign=name,
        ).set(summary.cache_hit_rate)
        self.gauge(
            "campaign_speedup", "Busy time over wall time (1.0 = serial).",
            campaign=name,
        ).set(summary.speedup)
        self.gauge(
            "campaign_jobs", "Worker processes of the last run.",
            campaign=name,
        ).set(summary.jobs)
        cell_seconds = self.histogram(
            "campaign_cell_seconds", "Per-cell compute time.",
            buckets=DEFAULT_TIME_BUCKETS, campaign=name,
        )
        for duration in summary.cell_durations:
            cell_seconds.observe(duration)

    def observe_fleet(self, report, strategy: Optional[str] = None) -> None:
        """Aggregate one multiclient fleet run.

        Accepts either a DES :class:`~repro.simulator.multiclient.FleetReport`
        (has ``outcomes``) or a population-scale
        :class:`~repro.fleet.aggregate.FleetSummary`, which is routed to
        :meth:`observe_fleet_population`.
        """
        if not hasattr(report, "outcomes"):
            self.observe_fleet_population(report, policy=strategy)
            return
        label = strategy or "mixed"
        self.counter(
            "fleet_requests_total", "Requests served fleet-wide.",
            strategy=label,
        ).inc(len(report.outcomes))
        self.counter(
            "fleet_energy_joules_total", "Device energy fleet-wide.",
            strategy=label,
        ).inc(report.total_energy_j)
        self.gauge(
            "fleet_makespan_seconds", "When the last request finished.",
            strategy=label,
        ).set(report.makespan_s)
        wait = self.histogram(
            "fleet_wait_seconds", "Per-request link-queue wait.",
            buckets=DEFAULT_TIME_BUCKETS, strategy=label,
        )
        for outcome in report.outcomes:
            wait.observe(outcome.wait_s)

    def observe_fleet_population(
        self, summary, policy: Optional[str] = None
    ) -> None:
        """Aggregate one population-scale fleet evaluation.

        ``summary`` is a :class:`~repro.fleet.aggregate.FleetSummary`
        (duck-typed): population size and energy as counters, plus the
        distribution headlines a capacity dashboard watches — cohort
        count, decision flip rate, and the median lifetime / transfer
        cost from the streaming sketches.
        """
        label = policy or getattr(summary, "policy", "fleet-advised")
        stats = summary.metrics()
        self.counter(
            "fleet_population_devices_total", "Devices evaluated.",
            policy=label,
        ).inc(stats["devices"])
        self.counter(
            "fleet_population_energy_joules_total",
            "Session energy across the population.",
            policy=label,
        ).inc(stats["fleet_energy_j"])
        self.gauge(
            "fleet_population_cohorts", "Distinct (class, workload, n) cells.",
            policy=label,
        ).set(stats["cohorts"])
        self.gauge(
            "fleet_population_flip_fraction",
            "Devices whose Eq-6 verdict flips under contention.",
            policy=label,
        ).set(stats["flip_fraction"])
        self.gauge(
            "fleet_population_lifetime_hours_p50",
            "Median battery lifetime.",
            policy=label,
        ).set(stats["lifetime_h_p50"])
        self.gauge(
            "fleet_population_energy_per_mb_p50",
            "Median delivered-MB energy cost.",
            policy=label,
        ).set(stats["energy_per_mb_p50"])

    # -- export ----------------------------------------------------------------

    def _grouped(self) -> Dict[str, List[Tuple[LabelSet, object]]]:
        grouped: Dict[str, List[Tuple[LabelSet, object]]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            grouped.setdefault(name, []).append((labels, metric))
        return grouped

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines = [
            f"# HELP {self.namespace}_metrics_schema_version "
            "Export schema version.",
            f"# TYPE {self.namespace}_metrics_schema_version gauge",
            f"{self.namespace}_metrics_schema_version "
            f"{METRICS_SCHEMA_VERSION}",
        ]
        for name, series in self._grouped().items():
            help_text = self._help.get(name, name)
            kind = self._kind[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in series:
                if isinstance(metric, Histogram):
                    for bound, count in metric.cumulative():
                        le = _render_labels(labels + (("le", f"{bound:g}"),))
                        lines.append(f"{name}_bucket{le} {count}")
                    le = _render_labels(labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {metric.count}")
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {metric.sum:.9g}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{metric.value:.9g}"  # type: ignore[attr-defined]
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """A JSON document with the same samples."""
        metrics: List[Dict[str, object]] = []
        for name, series in self._grouped().items():
            for labels, metric in series:
                entry: Dict[str, object] = {
                    "name": name,
                    "kind": self._kind[name],
                    "labels": dict(labels),
                }
                if isinstance(metric, Histogram):
                    entry["sum"] = metric.sum
                    entry["count"] = metric.count
                    entry["buckets"] = [
                        {"le": bound, "count": count}
                        for bound, count in metric.cumulative()
                    ]
                else:
                    entry["value"] = metric.value  # type: ignore[attr-defined]
                metrics.append(entry)
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "namespace": self.namespace,
            "metrics": metrics,
        }

    def write(self, path) -> None:
        """Write Prometheus text, or JSON when ``path`` ends in ``.json``."""
        path = str(path)
        if path.endswith(".json"):
            with open(path, "w", encoding="utf-8") as fp:
                json.dump(self.to_json(), fp, indent=2, sort_keys=True)
                fp.write("\n")
        else:
            with open(path, "w", encoding="utf-8") as fp:
                fp.write(self.to_prometheus())
