"""Structured session traces: typed spans and events, JSONL on disk.

Both engines narrate their work in one vocabulary: *spans* are the
contiguous per-tag intervals of the session's power timeline (receive,
decompress, idle, recovery, ...) with start/end clocks and energy;
*events* are point occurrences the engines emit while simulating — ARQ
retries, fault-timeline dead intervals, recovery summaries, adaptive
block decisions, watchdog trips.  Because the spans are derived from
the same timeline the energy figures come from, a trace is a faithful,
replayable account of where every joule went — which is what lets the
cross-engine differential tests compare a DES replay against the
analytic closed forms phase by phase.

Tracing is strictly opt-in: engines default to :data:`NULL_TRACER`,
whose methods are no-ops and whose ``enabled`` flag lets hot loops skip
event construction entirely, so an untraced session does no extra work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.observability.ledger import TAG_TAXONOMY, EnergyLedger

#: Bumped whenever a record shape changes; readers refuse mismatches.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceSpan:
    """One contiguous same-tag interval of the session clock."""

    tag: str
    phase: str
    start_s: float
    end_s: float
    energy_j: float

    @property
    def duration_s(self) -> float:
        """Wall time the span covers."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class TraceEvent:
    """A point occurrence on the session clock."""

    name: str
    t_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SessionTrace:
    """Everything one session emitted: identity, spans, events, totals."""

    session_id: int
    engine: str
    scenario: str
    codec: Optional[str]
    raw_bytes: int
    transfer_bytes: int
    time_s: float
    energy_j: float
    energy_by_tag: Dict[str, float]
    spans: List[TraceSpan]
    events: List[TraceEvent]


def spans_from_timeline(timeline) -> List[TraceSpan]:
    """Walk a power timeline with a running clock, coalescing same-tag
    neighbours into spans (power changes within a tag do not split)."""
    spans: List[TraceSpan] = []
    clock = 0.0
    cur_tag: Optional[str] = None
    cur_start = 0.0
    cur_energy = 0.0
    for seg in timeline:
        if seg.tag != cur_tag:
            if cur_tag is not None:
                spans.append(
                    TraceSpan(
                        tag=cur_tag,
                        phase=TAG_TAXONOMY.get(cur_tag, "unknown"),
                        start_s=cur_start,
                        end_s=clock,
                        energy_j=cur_energy,
                    )
                )
            cur_tag, cur_start, cur_energy = seg.tag, clock, 0.0
        cur_energy += seg.energy
        clock += seg.duration_s
    if cur_tag is not None:
        spans.append(
            TraceSpan(
                tag=cur_tag,
                phase=TAG_TAXONOMY.get(cur_tag, "unknown"),
                start_s=cur_start,
                end_s=clock,
                energy_j=cur_energy,
            )
        )
    return spans


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    Engines call ``tracer.event(...)`` only behind ``tracer.enabled``
    checks in hot loops, so a session run without tracing allocates
    nothing and branches once per call site.
    """

    enabled = False

    def event(self, name: str, t_s: float, **attrs: Any) -> None:
        """Discard the event."""

    def record_session(self, result, engine: str) -> None:
        """Discard the session."""

    def record_failure(self, exc: BaseException, engine: str, t_s: float) -> None:
        """Discard the failure."""


#: The shared disabled tracer; engines default to it.
NULL_TRACER = NullTracer()


class SessionTracer(NullTracer):
    """Collects spans and events from every session an engine runs."""

    enabled = True

    def __init__(self) -> None:
        self.sessions: List[SessionTrace] = []
        self.failures: List[TraceEvent] = []
        self._pending: List[TraceEvent] = []

    def event(self, name: str, t_s: float, **attrs: Any) -> None:
        """Record a point event at session clock ``t_s``."""
        self._pending.append(TraceEvent(name=name, t_s=t_s, attrs=attrs))

    def record_session(self, result, engine: str) -> None:
        """Close out one finished session: derive its spans, attach the
        events emitted since the previous session ended."""
        ledger = EnergyLedger.from_timeline(result.timeline)
        self.sessions.append(
            SessionTrace(
                session_id=len(self.sessions),
                engine=engine,
                scenario=result.scenario.value,
                codec=result.codec,
                raw_bytes=result.raw_bytes,
                transfer_bytes=result.transfer_bytes,
                time_s=result.time_s,
                energy_j=result.energy_j,
                energy_by_tag=ledger.by_tag(),
                spans=spans_from_timeline(result.timeline),
                events=self._pending,
            )
        )
        self._pending = []

    def record_failure(self, exc: BaseException, engine: str, t_s: float) -> None:
        """Record a session that died (watchdog trip, exhausted recovery)."""
        evt = TraceEvent(
            name="session-failure",
            t_s=t_s,
            attrs={"engine": engine, "error": type(exc).__name__,
                   "detail": str(exc)},
        )
        self.failures.append(evt)
        self._pending = []

    # -- serialization ---------------------------------------------------------

    def to_records(self) -> Iterator[Dict[str, Any]]:
        """The JSONL record stream: one header, then per session a
        ``session`` record followed by its ``span`` and ``event`` records."""
        yield {
            "type": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "sessions": len(self.sessions),
            "failures": len(self.failures),
        }
        for s in self.sessions:
            yield {
                "type": "session",
                "session_id": s.session_id,
                "engine": s.engine,
                "scenario": s.scenario,
                "codec": s.codec,
                "raw_bytes": s.raw_bytes,
                "transfer_bytes": s.transfer_bytes,
                "time_s": s.time_s,
                "energy_j": s.energy_j,
                "energy_by_tag": s.energy_by_tag,
            }
            for span in s.spans:
                yield {
                    "type": "span",
                    "session_id": s.session_id,
                    "tag": span.tag,
                    "phase": span.phase,
                    "start_s": span.start_s,
                    "end_s": span.end_s,
                    "energy_j": span.energy_j,
                }
            for evt in s.events:
                yield {
                    "type": "event",
                    "session_id": s.session_id,
                    "name": evt.name,
                    "t_s": evt.t_s,
                    "attrs": evt.attrs,
                }
        for evt in self.failures:
            yield {
                "type": "event",
                "session_id": None,
                "name": evt.name,
                "t_s": evt.t_s,
                "attrs": evt.attrs,
            }

    def write_jsonl(self, path, injector=None) -> None:
        """Serialize the trace to ``path``, one JSON record per line.

        Written atomically through the campaign durability shim
        (:func:`repro.campaign.faultio.write_text_atomic`): a crash or
        an injected I/O fault mid-write leaves the previous trace file
        (or none), never a torn half-trace that a later ``repro trace
        summarize`` would misread as a conservation failure.
        """
        from repro.campaign.faultio import write_text_atomic

        text = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.to_records()
        )
        write_text_atomic(path, text, injector=injector)
