"""Observability: session traces, the conservation-audited energy
ledger, and metrics export.

The paper's argument is an accounting identity — download, decompress,
idle and overhead joules must sum to the session total (Equations 1-5).
This package makes that identity a first-class, machine-checkable
artifact:

- :mod:`repro.observability.ledger` — :class:`EnergyLedger`, tagged
  debit entries over the session's power timeline with an
  :meth:`~EnergyLedger.audit` that enforces conservation and the tag
  taxonomy on every session either engine produces.
- :mod:`repro.observability.trace` — :class:`SessionTracer`, typed
  spans and events both engines emit into, serializable to JSONL
  (zero-overhead no-op when disabled).
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry`,
  counters/gauges/histograms with Prometheus-text and JSON export,
  populated per session and aggregated across multiclient fleets.
- :mod:`repro.observability.profiling` — wall-clock section profiling
  for the benchmark harness.
- :mod:`repro.observability.summarize` — the ``repro trace summarize``
  reader: per-phase tables plus a conservation verdict.
"""

from repro.observability.ledger import (
    LEDGER_REL_TOL,
    TAG_TAXONOMY,
    AuditReport,
    EnergyLedger,
    LedgerEntry,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiling import PROFILER, WallClockProfiler, profiled
from repro.observability.trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    SessionTracer,
    TraceEvent,
    TraceSpan,
    spans_from_timeline,
)

__all__ = [
    "AuditReport",
    "Counter",
    "EnergyLedger",
    "Gauge",
    "Histogram",
    "LEDGER_REL_TOL",
    "LedgerEntry",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROFILER",
    "SessionTracer",
    "TAG_TAXONOMY",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceSpan",
    "WallClockProfiler",
    "profiled",
    "spans_from_timeline",
]
