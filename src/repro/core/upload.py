"""Upload-path energy model (the paper's Section 7 future work).

"A similar tradeoff issue exists when the handheld device uploads
information, e.g. lively captured voice and pictures" (Section 1).  The
roles flip: *compression* now runs on the handheld — an order of
magnitude more CPU work than decompression — while the proxy pays the
cheap decompression.  With gzip -9's device-side cost (~2 s/MB on the
StrongARM) compression loses outright at 0.6 MB/s; the interesting
trade-off appears with fast compressor settings (gzip -1, LZW), which is
why this module models per-scheme *device* compression costs and mirrors
Equations 1-3 for the send direction.

Table 1 reports no separate send rows; the WaveLAN card's transmit draw
at this power level sits in the same band as receive, so the send-side
m and gap powers reuse the receive-derived values (documented in
DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import units
from repro.core.energy_model import EnergyModel
from repro.errors import ModelError


class UploadModel:
    """Equations 1-3 mirrored for the upload direction."""

    def __init__(self, model: Optional[EnergyModel] = None) -> None:
        self.model = model or EnergyModel()

    @property
    def params(self):
        """The underlying model parameters."""
        return self.model.params

    # -- computation time -----------------------------------------------------

    def compression_time_s(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "compress"
    ) -> float:
        """Device-side compression time (the upload bottleneck)."""
        return self.model.cpu.compress_time_s(codec, raw_bytes, compressed_bytes)

    # -- Equation 1 mirror: plain upload ---------------------------------------

    def upload_energy_j(self, raw_bytes: float) -> float:
        """Send the original data: m*s + cs + ti*p_gap."""
        return self.model.download_energy_j(raw_bytes)

    def upload_time_s(self, raw_bytes: float) -> float:
        """Wall time to send the original data."""
        return self.model.download_time_s(raw_bytes)

    # -- Equation 2 mirror: compress fully, then send --------------------------

    def sequential_energy_j(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "compress"
    ) -> float:
        """Compress (CPU busy, radio idle), then send the compressed data."""
        p = self.params
        sc = units.bytes_to_mb(compressed_bytes)
        tc = self.compression_time_s(raw_bytes, compressed_bytes, codec)
        ti = self.model.total_idle_time_s(compressed_bytes)
        # Compression draws the busy/idle decompress-class power: the
        # paper's 570 mA average is for the same load/store-heavy kind of
        # work.
        return (
            p.m_j_per_mb * sc
            + p.cs_j
            + ti * p.gap_power_w
            + tc * p.decompress_power_w
        )

    def sequential_time_s(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "compress"
    ) -> float:
        """Compress-then-send wall time."""
        tc = self.compression_time_s(raw_bytes, compressed_bytes, codec)
        return tc + units.bytes_to_mb(compressed_bytes) / self.params.rate_mb_per_s

    # -- Equation 3 mirror: compress block i+1 while sending block i ------------

    def interleave_times(
        self, raw_bytes: float, compressed_bytes: float
    ) -> Tuple[float, float]:
        """(ts', ts''): send-gap time after/during the LAST block.

        Mirrors Equation 4: the final block's send gaps cannot host
        compression work (everything is already compressed by then), so
        they play the ti'' role.
        """
        p = self.params
        s = units.bytes_to_mb(raw_bytes)
        sc = units.bytes_to_mb(compressed_bytes)
        if s <= 0:
            return (0.0, 0.0)
        if s >= p.block_mb:
            last_block_sc = p.block_mb * sc / s
            ts_dprime = p.idle_fraction * last_block_sc / p.rate_mb_per_s
            ts_prime = p.idle_fraction * (sc - last_block_sc) / p.rate_mb_per_s
        else:
            ts_prime = 0.0
            ts_dprime = p.idle_fraction * sc / p.rate_mb_per_s
        return (ts_prime, ts_dprime)

    def interleaved_energy_j(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "compress"
    ) -> float:
        """Compress the next block in the gaps of the current block's send.

        The first block must be compressed before anything can be sent
        (the pipeline fill), charged at full compression power; the rest
        of the compression work overlaps the send gaps, Equation 3 style.
        """
        p = self.params
        sc = units.bytes_to_mb(compressed_bytes)
        s = units.bytes_to_mb(raw_bytes)
        tc = self.compression_time_s(raw_bytes, compressed_bytes, codec)
        ts_prime, ts_dprime = self.interleave_times(raw_bytes, compressed_bytes)
        # The first block's compression (the pipeline fill) happens before
        # any gap exists; only the rest can hide in send gaps.
        n_blocks = max(1.0, s / p.block_mb)
        overlap_work = tc * (1.0 - 1.0 / n_blocks)
        base = p.m_j_per_mb * sc + p.cs_j + tc * p.decompress_power_w
        if ts_prime > overlap_work:
            return base + (ts_prime - overlap_work + ts_dprime) * p.gap_power_w
        return base + ts_dprime * p.gap_power_w

    def interleaved_time_s(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "compress"
    ) -> float:
        """Send time plus whatever compression cannot hide in the gaps.

        The pipeline-fill block and any overflow extend the wall clock.
        """
        p = self.params
        s = units.bytes_to_mb(raw_bytes)
        tc = self.compression_time_s(raw_bytes, compressed_bytes, codec)
        send = units.bytes_to_mb(compressed_bytes) / p.rate_mb_per_s
        n_blocks = max(1.0, s / p.block_mb)
        fill = tc / n_blocks  # first block's compression
        ts_prime, _ = self.interleave_times(raw_bytes, compressed_bytes)
        overflow = max(0.0, (tc - fill) - ts_prime)
        return fill + send + overflow

    # -- decision support -------------------------------------------------------

    def net_saving_j(
        self,
        raw_bytes: float,
        compressed_bytes: float,
        codec: str = "compress",
        interleaved: bool = True,
    ) -> float:
        """Plain-upload energy minus compressed-upload energy."""
        plain = self.upload_energy_j(raw_bytes)
        if interleaved:
            compressed = self.interleaved_energy_j(raw_bytes, compressed_bytes, codec)
        else:
            compressed = self.sequential_energy_j(raw_bytes, compressed_bytes, codec)
        return plain - compressed

    def worthwhile(
        self,
        raw_bytes: float,
        compression_factor: float,
        codec: str = "compress",
        interleaved: bool = True,
    ) -> bool:
        """Upload-side Equation 6 analogue."""
        if compression_factor <= 0:
            raise ModelError("compression factor must be positive")
        if raw_bytes <= 0:
            return False
        return (
            self.net_saving_j(
                raw_bytes, raw_bytes / compression_factor, codec, interleaved
            )
            > 0
        )

    def factor_threshold(
        self, raw_bytes: float, codec: str = "compress", interleaved: bool = True
    ) -> float:
        """Minimum factor at which compressed upload saves energy."""
        if raw_bytes <= 0:
            return float("inf")
        hi = 1e6
        if not self.worthwhile(raw_bytes, hi, codec, interleaved):
            return float("inf")
        lo = 1.0
        if self.worthwhile(raw_bytes, lo, codec, interleaved):
            return lo
        for _ in range(200):
            mid = (lo + hi) / 2
            if self.worthwhile(raw_bytes, mid, codec, interleaved):
                hi = mid
            else:
                lo = mid
        return (lo + hi) / 2
