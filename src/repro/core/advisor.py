"""CompressionAdvisor: the user-facing decision API.

Combines the energy model, the threshold conditions and the adaptive
container into one object a proxy implementation would actually call:
"here is a file (or its metadata) — should I ship it raw, compressed, or
block-adaptively, and what will each choice cost?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import units
from repro.compression.base import Codec, get_codec
from repro.core import thresholds
from repro.core.adaptive import AdaptiveBlockCodec
from repro.core.energy_model import EnergyModel
from repro.core.selective import SelectiveDecision, decide_file


@dataclass(frozen=True)
class Recommendation:
    """Advice for one file."""

    strategy: str  # "raw" | "compress" | "adaptive"
    codec_name: Optional[str]
    transfer_bytes: int
    estimated_energy_j: float
    plain_energy_j: float
    details: str

    @property
    def estimated_saving_j(self) -> float:
        """Joules saved versus the plain download."""
        return self.plain_energy_j - self.estimated_energy_j

    @property
    def estimated_saving_fraction(self) -> float:
        """Saving as a fraction of the plain download energy."""
        if self.plain_energy_j <= 0:
            return 0.0
        return self.estimated_saving_j / self.plain_energy_j


class CompressionAdvisor:
    """Decides how to ship files for minimum handheld energy."""

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        codec: Optional[Codec] = None,
        use_paper_condition: bool = False,
    ) -> None:
        self.model = model or EnergyModel()
        self.codec = codec or get_codec("zlib")
        self.use_paper_condition = use_paper_condition

    def _condition_model(self) -> Optional[EnergyModel]:
        return None if self.use_paper_condition else self.model

    # -- metadata-only ------------------------------------------------------

    def advise_metadata(
        self, raw_bytes: int, compression_factor: float
    ) -> Recommendation:
        """Advice from (size, factor) metadata alone."""
        decision = decide_file(
            raw_bytes=raw_bytes,
            compression_factor=compression_factor,
            model=self._condition_model(),
        )
        plain = self.model.download_energy_j(raw_bytes)
        if decision.compress:
            energy = self.model.interleaved_energy_j(
                raw_bytes, decision.transfer_bytes, self.codec.name
            )
            return Recommendation(
                strategy="compress",
                codec_name=self.codec.name,
                transfer_bytes=decision.transfer_bytes,
                estimated_energy_j=energy,
                plain_energy_j=plain,
                details=decision.reason,
            )
        return Recommendation(
            strategy="raw",
            codec_name=None,
            transfer_bytes=raw_bytes,
            estimated_energy_j=plain,
            plain_energy_j=plain,
            details=decision.reason,
        )

    # -- content-aware ------------------------------------------------------

    def advise(self, data: bytes) -> Recommendation:
        """Full advice: measures the factor and considers all strategies.

        The adaptive container wins on mixed-content files where some
        blocks compress and others do not; whole-file compression wins
        when every block compresses (no per-block header overhead); raw
        wins below the thresholds.
        """
        raw_bytes = len(data)
        plain = self.model.download_energy_j(raw_bytes)
        options: Dict[str, Recommendation] = {
            "raw": Recommendation(
                strategy="raw",
                codec_name=None,
                transfer_bytes=raw_bytes,
                estimated_energy_j=plain,
                plain_energy_j=plain,
                details="baseline",
            )
        }

        if raw_bytes >= units.THRESHOLD_FILE_SIZE_BYTES:
            whole = self.codec.compress(data)
            if thresholds.compression_worthwhile(
                raw_bytes, whole.factor, self._condition_model()
            ):
                energy = self.model.interleaved_energy_j(
                    raw_bytes, whole.compressed_size, self.codec.name
                )
                options["compress"] = Recommendation(
                    strategy="compress",
                    codec_name=self.codec.name,
                    transfer_bytes=whole.compressed_size,
                    estimated_energy_j=energy,
                    plain_energy_j=plain,
                    details=f"whole-file factor {whole.factor:.2f}",
                )

            adaptive = AdaptiveBlockCodec(
                inner=self.codec, model=self._condition_model()
            )
            result = adaptive.compress(data)
            if result.blocks_compressed:
                energy = self._adaptive_energy(result, raw_bytes)
                options["adaptive"] = Recommendation(
                    strategy="adaptive",
                    codec_name=adaptive.name,
                    transfer_bytes=result.compressed_size,
                    estimated_energy_j=energy,
                    plain_energy_j=plain,
                    details=(
                        f"{result.blocks_compressed}/{len(result.decisions)} "
                        "blocks compressed"
                    ),
                )

        return min(options.values(), key=lambda r: r.estimated_energy_j)

    def decide(self, data: bytes) -> SelectiveDecision:
        """The plain Section 4.3 file-level decision (no adaptive option)."""
        return decide_file(
            data=data, codec=self.codec, model=self._condition_model()
        )

    def _adaptive_energy(self, result, raw_bytes: int) -> float:
        """Energy for an adaptive transfer: receive everything, decompress
        only the compressed blocks' payload."""
        model = self.model
        p = model.params
        transfer = result.compressed_size
        sc_mb = units.bytes_to_mb(transfer)
        ti_prime, ti_dprime = model.idle_times(raw_bytes, transfer)
        if result.blocks_compressed:
            td = model.cpu.decompress_time_s(
                self.codec.name,
                result.raw_covered_bytes,
                result.compressed_payload_bytes,
            )
        else:
            td = 0.0
        base = p.m_j_per_mb * sc_mb + p.cs_j + td * p.decompress_power_w
        if ti_prime > td:
            return base + (ti_prime - td + ti_dprime) * p.gap_power_w
        return base + ti_dprime * p.gap_power_w
