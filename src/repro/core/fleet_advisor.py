"""Contention-aware compression advice.

Equation 6 is a single-device criterion: it balances one device's radio
saving against its own decompression cost.  On a shared medium there is
a second term — every byte removed from the air shortens the queueing
delay of the *other* devices, which wait at idle power.  The fleet test
suite demonstrates the effect (a factor-1.10 file that loses alone wins
with four contenders); this module makes it a first-class decision rule.

Model: with ``contenders`` other devices backlogged behind a transfer of
T seconds, shrinking it by dT saves, in addition to the device's own
radio energy, ``contenders * dT * p_idle`` joules of fleet waiting
energy.  The contention-adjusted condition is therefore

    E_int(s, sc) + n*p_i*(t(sc) - t(s)) < E_plain(s)

with t() the transfer wall time — the left side *gains* a negative term
as sc < s, so the break-even factor falls monotonically with n.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.core.energy_model import EnergyModel
from repro.errors import ModelError


class FleetAdvisor:
    """Compression decisions that price in shared-medium queueing.

    The waiting-energy arithmetic itself lives in
    :class:`repro.fleet.contention.ContentionModel` (the population
    layer's closed forms); this class keeps the decision API — the
    worthwhile test and the factor/size thresholds — and delegates the
    cost form.  ``collision_overhead`` passes through to the contention
    model's MAC efficiency knob; the default ``0.0`` preserves the
    original fluid-limit answers bit for bit.
    """

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        contenders: int = 0,
        collision_overhead: float = 0.0,
    ) -> None:
        if contenders < 0:
            raise ModelError("contenders must be non-negative")
        from repro.fleet.contention import ContentionModel

        self.model = model or EnergyModel()
        self.contenders = contenders
        self.contention = ContentionModel(
            self.model, collision_overhead=collision_overhead
        )

    def _waiting_power_w(self) -> float:
        return self.model.device.idle_power_w

    def fleet_cost_j(self, raw_bytes: int, transfer_bytes: int) -> float:
        """Total cost: device session energy plus contender waiting energy.

        The contenders wait for the transfer's link occupancy (its wall
        time on the medium); interleaved decompression overflow happens
        off-air and does not hold the link.  Delegates to
        :meth:`~repro.fleet.contention.ContentionModel.fleet_cost_j`.
        """
        return self.contention.fleet_cost_j(
            raw_bytes, transfer_bytes, self.contenders
        )

    def compression_worthwhile(
        self, raw_bytes: int, compression_factor: float
    ) -> bool:
        """Contention-adjusted Equation 6."""
        if compression_factor <= 0:
            raise ModelError("compression factor must be positive")
        if raw_bytes <= 0:
            return False
        compressed = int(raw_bytes / compression_factor)
        return self.fleet_cost_j(raw_bytes, compressed) < self.fleet_cost_j(
            raw_bytes, raw_bytes
        )

    def factor_threshold(self, raw_bytes: int) -> float:
        """Fleet break-even factor; falls toward 1 as contenders grow."""
        if raw_bytes <= 0:
            return float("inf")
        hi = 1e6
        if not self.compression_worthwhile(raw_bytes, hi):
            return float("inf")
        lo = 1.0
        if self.compression_worthwhile(raw_bytes, 1.0 + 1e-9):
            return 1.0
        for _ in range(200):
            mid = (lo + hi) / 2
            if self.compression_worthwhile(raw_bytes, mid):
                hi = mid
            else:
                lo = mid
        return (lo + hi) / 2

    def size_threshold_bytes(self) -> int:
        """Fleet size floor; also falls with contention (the startup cost
        amortizes against other devices' waiting)."""
        huge = 1e9

        def ever(n_bytes: float) -> bool:
            return self.compression_worthwhile(int(n_bytes), huge)

        lo, hi = 1.0, float(units.BYTES_PER_MB)
        if ever(lo):
            return 1
        if not ever(hi):
            raise ModelError("compression never worthwhile under this model")
        for _ in range(200):
            mid = (lo + hi) / 2
            if ever(mid):
                hi = mid
            else:
                lo = mid
        return int(round((lo + hi) / 2))
