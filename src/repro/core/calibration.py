"""Re-deriving the paper's model constants from measurements (Section 4.2).

The paper fits two linear models from measured data points:

- download energy vs file size:  E = 3.519*s + 0.012  (avg error 7.2%)
- zlib decompression time:       td = 0.161*s + 0.161*sc + 0.004
  (avg error 3%, max 13%, R^2 = 96.7%)

and then derives m and cs from the energy fit via Equations 1 and 4.
This module performs the same fits over measurement samples (simulated or
otherwise), so the Figure 8 bench can regenerate the fits and the error
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import units
from repro.analysis import fitting
from repro.errors import CalibrationError


@dataclass(frozen=True)
class DownloadEnergyFit:
    """E = slope*s + intercept, with derived m and cs."""

    slope_j_per_mb: float
    intercept_j: float
    #: Derived per-MB receive energy (gaps excluded).
    m_j_per_mb: float
    #: Derived start-up cost.
    cs_j: float
    average_error: float
    r_squared: float

    def energy_j(self, raw_bytes: float) -> float:
        """Predicted download energy for ``raw_bytes``."""
        return self.slope_j_per_mb * units.bytes_to_mb(raw_bytes) + self.intercept_j


@dataclass(frozen=True)
class DecompressionTimeFit:
    """td = a*s + b*sc + c."""

    per_raw_mb_s: float
    per_compressed_mb_s: float
    constant_s: float
    average_error: float
    max_error: float
    r_squared: float

    def time_s(self, raw_bytes: float, compressed_bytes: float) -> float:
        """Predicted decompression time for the given sizes."""
        return (
            self.per_raw_mb_s * units.bytes_to_mb(raw_bytes)
            + self.per_compressed_mb_s * units.bytes_to_mb(compressed_bytes)
            + self.constant_s
        )


def fit_download_energy(
    samples: Sequence[Tuple[float, float]],
    idle_fraction: float = units.IDLE_FRACTION_11MBPS,
    rate_mb_per_s: float = units.MODEL_RATE_11MBPS_MBPS,
    idle_power_w: float = 1.55,
) -> DownloadEnergyFit:
    """Fit E = slope*s + intercept from (raw_bytes, joules) samples.

    m and cs are recovered exactly as the paper does: the idle energy
    ti*pi (with ti = idle_fraction*s/rate) is subtracted from the fitted
    line, leaving m*s + cs.
    """
    if len(samples) < 2:
        raise CalibrationError("need at least two samples to fit a line")
    xs = [units.bytes_to_mb(s) for s, _ in samples]
    ys = [e for _, e in samples]
    fit = fitting.linear_fit(xs, ys)
    idle_j_per_mb = idle_fraction / rate_mb_per_s * idle_power_w
    m = fit.slope - idle_j_per_mb
    if m <= 0:
        raise CalibrationError(
            "fitted slope below the idle energy; check idle parameters"
        )
    predicted = [fit.slope * x + fit.intercept for x in xs]
    return DownloadEnergyFit(
        slope_j_per_mb=fit.slope,
        intercept_j=fit.intercept,
        m_j_per_mb=m,
        cs_j=fit.intercept,
        average_error=fitting.average_error(ys, predicted),
        r_squared=fit.r_squared,
    )


def fit_decompression_time(
    samples: Sequence[Tuple[float, float, float]],
) -> DecompressionTimeFit:
    """Fit td = a*s + b*sc + c from (raw_bytes, compressed_bytes, seconds)."""
    if len(samples) < 3:
        raise CalibrationError("need at least three samples to fit a plane")
    rows: List[List[float]] = []
    ys: List[float] = []
    for raw_b, comp_b, td in samples:
        rows.append([units.bytes_to_mb(raw_b), units.bytes_to_mb(comp_b)])
        ys.append(td)
    coeffs, intercept, r2 = fitting.multilinear_fit(rows, ys)
    predicted = [
        coeffs[0] * row[0] + coeffs[1] * row[1] + intercept for row in rows
    ]
    errors = fitting.relative_errors(ys, predicted)
    return DecompressionTimeFit(
        per_raw_mb_s=coeffs[0],
        per_compressed_mb_s=coeffs[1],
        constant_s=intercept,
        average_error=sum(abs(e) for e in errors) / len(errors),
        max_error=max(abs(e) for e in errors),
        r_squared=r2,
    )
