"""The paper's energy model for compressed downloading (Equations 1-5).

Equation 1 (plain download):      E = m*s + cs + ti*pi
Equation 2 (download, decompress): E = m*sc + cs + (ti' + ti'')*pi + td*pd
Equation 3 (interleaved):
    if ti' >  td:  E = m*sc + cs + td*pd + (ti' - td + ti'')*pi
    if ti' <= td:  E = m*sc + cs + td*pd + ti''*pi
Equation 4 (idle-time split):     ti'' is the idle time while the first
    0.128 MB (raw) block arrives — it cannot be filled with decompression
    because nothing is available to decompress yet; ti' is the rest.

All sizes in the public API are bytes; internally the model uses the
paper's MB (MiB).  The default parameterization reproduces the paper's
fitted constants exactly: with p_i = 1.55 W (310 mA), p_d = 2.85 W
(570 mA), m = 2.486 J/MB and cs = 0.012 J, Equation 3 expands to the
paper's Equation 5 coefficients (0.4589/2.945/0.132/0.0234 for F > 3.14,
0.2093/3.729/0.0172 otherwise, 0.4589/3.9784/0.0234 for small files).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro import units
from repro.device.cpu import DeviceCpuModel, IPAQ_CPU
from repro.device.handheld import HandheldDevice
from repro.errors import ModelError
from repro.network.wlan import LinkConfig, LINK_11MBPS, LINK_2MBPS


@dataclass(frozen=True)
class ModelParams:
    """Everything Equations 1-5 need, in the paper's units.

    Attributes:
        m_j_per_mb: energy to receive one MB of data (active receive only).
        cs_j: network communication start-up cost.
        idle_power_w: p_i, draw during unfilled CPU-idle gaps.
        gap_power_w: draw during receive gaps; equals p_i at 11 Mb/s,
            but at 2 Mb/s the card never quiesces between slow packets, so
            gaps draw closer to the 430 mA receive level.
        decompress_power_w: p_d (570 mA for gzip at 11 Mb/s).
        decompress_sleep_power_w: p_d with the radio power-saving
            ("letting pd equal to 1.70", Section 4.2).
        rate_mb_per_s: delivered download rate in MB/s.
        idle_fraction: CPU-idle share of download wall time.
        block_mb: the compression buffer size (0.128 MB).
    """

    m_j_per_mb: float
    cs_j: float
    idle_power_w: float
    gap_power_w: float
    decompress_power_w: float
    decompress_sleep_power_w: float
    rate_mb_per_s: float
    idle_fraction: float
    block_mb: float = units.BLOCK_SIZE_MB

    def __post_init__(self) -> None:
        if self.rate_mb_per_s <= 0:
            raise ModelError("rate must be positive")
        if not 0 <= self.idle_fraction < 1:
            raise ModelError("idle fraction must be in [0, 1)")

    @classmethod
    def for_link(
        cls,
        link: LinkConfig,
        device: Optional[HandheldDevice] = None,
    ) -> "ModelParams":
        """Derive parameters for a link from the device power table.

        m comes from the active-receive power and the link's active time
        per MB; the gap power is p_i when gaps are long enough for the
        card to go idle (11 Mb/s) and the 430 mA receive level when the
        slow stream keeps the card receptive (2 Mb/s and below).
        """
        device = device or HandheldDevice()
        rate = link.delivered_rate_mbps
        active_s_per_mb = (1.0 - link.idle_fraction) / rate
        m = device.recv_active_power_w * active_s_per_mb
        if link.nominal_rate_bps >= units.NOMINAL_RATE_11MBPS:
            gap_power = device.idle_power_w
        else:
            from repro.device.power import CpuState, RadioState

            gap_power = device.power_table.power_w(
                CpuState.NETWORK, RadioState.RECV, False
            )
        return cls(
            m_j_per_mb=m,
            cs_j=units.COMM_STARTUP_ENERGY_J,
            idle_power_w=device.idle_power_w,
            gap_power_w=gap_power,
            decompress_power_w=device.decompress_power_w(power_save=False),
            decompress_sleep_power_w=device.decompress_power_w(power_save=True),
            rate_mb_per_s=rate,
            idle_fraction=link.idle_fraction,
        )


#: Paper Equation 5 literal coefficients (11 Mb/s, interleaved zlib).
PAPER_EQ5_HIGH_F = (0.4589, 2.945, 0.132, 0.0234)  # F > 3.14 - 0.265/s
PAPER_EQ5_LOW_F = (0.2093, 3.729, 0.0172)  # F <= 3.14 - 0.265/s
PAPER_EQ5_SMALL = (0.4589, 3.9784, 0.0234)  # s <= 0.128


class EnergyModel:
    """Equations 1-5 over a link + device + CPU-cost parameterization."""

    def __init__(
        self,
        link: LinkConfig = LINK_11MBPS,
        device: Optional[HandheldDevice] = None,
        cpu: Optional[DeviceCpuModel] = None,
        params: Optional[ModelParams] = None,
    ) -> None:
        self.link = link
        self.device = device or HandheldDevice()
        self.cpu = cpu or (self.device.cpu if device else IPAQ_CPU)
        self.params = params or ModelParams.for_link(link, self.device)

    # -- Equation 4: idle-time split ---------------------------------------

    def total_idle_time_s(self, transfer_bytes: float) -> float:
        """ti: total CPU idle time while downloading ``transfer_bytes``."""
        mb = units.bytes_to_mb(transfer_bytes)
        return self.params.idle_fraction * mb / self.params.rate_mb_per_s

    def idle_times(self, raw_bytes: float, compressed_bytes: float) -> Tuple[float, float]:
        """(ti', ti'') of Equation 4 for a compressed download."""
        p = self.params
        s = units.bytes_to_mb(raw_bytes)
        sc = units.bytes_to_mb(compressed_bytes)
        if s <= 0:
            return (0.0, 0.0)
        if s >= p.block_mb:
            first_block_sc = p.block_mb * sc / s
            ti_dprime = p.idle_fraction * first_block_sc / p.rate_mb_per_s
            ti_prime = p.idle_fraction * (sc - first_block_sc) / p.rate_mb_per_s
        else:
            ti_prime = 0.0
            ti_dprime = p.idle_fraction * sc / p.rate_mb_per_s
        return (ti_prime, ti_dprime)

    # -- computation time ----------------------------------------------------

    def decompression_time_s(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "gzip"
    ) -> float:
        """td: the device-side decompression time (paper's fit for gzip)."""
        return self.cpu.decompress_time_s(codec, raw_bytes, compressed_bytes)

    # -- Equation 1: plain download -------------------------------------------

    def download_energy_j(self, raw_bytes: float) -> float:
        """E = m*s + cs + ti*pi (Equation 1)."""
        p = self.params
        s = units.bytes_to_mb(raw_bytes)
        ti = self.total_idle_time_s(raw_bytes)
        return p.m_j_per_mb * s + p.cs_j + ti * p.gap_power_w

    def download_time_s(self, raw_bytes: float) -> float:
        """Wall time to download ``raw_bytes`` at the model rate."""
        return units.bytes_to_mb(raw_bytes) / self.params.rate_mb_per_s

    def fitted_download_energy_j(self, raw_bytes: float) -> float:
        """The paper's measured linear fit E = 3.519*s + 0.012 (11 Mb/s)."""
        s = units.bytes_to_mb(raw_bytes)
        return (
            units.DOWNLOAD_ENERGY_SLOPE_J_PER_MB * s
            + units.DOWNLOAD_ENERGY_INTERCEPT_J
        )

    # -- Equation 2: download then decompress ---------------------------------

    def sequential_energy_j(
        self,
        raw_bytes: float,
        compressed_bytes: float,
        codec: str = "gzip",
        radio_power_save: bool = False,
    ) -> float:
        """E = m*sc + cs + (ti' + ti'')*pi + td*pd (Equation 2).

        ``radio_power_save`` switches p_d to the 1.70 W power-saving value
        the paper uses when the card sleeps during decompression.
        """
        p = self.params
        sc = units.bytes_to_mb(compressed_bytes)
        ti_prime, ti_dprime = self.idle_times(raw_bytes, compressed_bytes)
        td = self.decompression_time_s(raw_bytes, compressed_bytes, codec)
        pd = p.decompress_sleep_power_w if radio_power_save else p.decompress_power_w
        return (
            p.m_j_per_mb * sc
            + p.cs_j
            + (ti_prime + ti_dprime) * p.gap_power_w
            + td * pd
        )

    # -- Equation 3: interleaved ----------------------------------------------

    def interleaved_energy_j(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "gzip"
    ) -> float:
        """Equation 3: decompress block i while block i+1 downloads."""
        p = self.params
        sc = units.bytes_to_mb(compressed_bytes)
        ti_prime, ti_dprime = self.idle_times(raw_bytes, compressed_bytes)
        td = self.decompression_time_s(raw_bytes, compressed_bytes, codec)
        base = p.m_j_per_mb * sc + p.cs_j + td * p.decompress_power_w
        if ti_prime > td:
            return base + (ti_prime - td + ti_dprime) * p.gap_power_w
        return base + ti_dprime * p.gap_power_w

    def interleaved_time_s(
        self, raw_bytes: float, compressed_bytes: float, codec: str = "gzip"
    ) -> float:
        """Wall time with interleaving: decompression hides in the gaps."""
        ti_prime, _ = self.idle_times(raw_bytes, compressed_bytes)
        td = self.decompression_time_s(raw_bytes, compressed_bytes, codec)
        receive = units.bytes_to_mb(compressed_bytes) / self.params.rate_mb_per_s
        overflow = max(0.0, td - ti_prime)
        return receive + overflow

    # -- Equation 5: the closed form for gzip at 11 Mb/s ------------------------

    def closed_form_energy_j(self, raw_bytes: float, compression_factor: float) -> float:
        """Interleaved energy as a function of (s, F) only.

        Algebraically identical to :meth:`interleaved_energy_j` with
        sc = s/F; kept separate because the paper presents it this way
        (Equation 5) and the threshold analysis builds on it.
        """
        if compression_factor <= 0:
            raise ModelError("compression factor must be positive")
        return self.interleaved_energy_j(
            raw_bytes, raw_bytes / compression_factor, codec="gzip"
        )

    @staticmethod
    def paper_eq5_energy_j(raw_bytes: float, compression_factor: float) -> float:
        """The paper's literal Equation 5 (11 Mb/s constants)."""
        if compression_factor <= 0:
            raise ModelError("compression factor must be positive")
        s = units.bytes_to_mb(raw_bytes)
        f = compression_factor
        sc = s / f
        if s <= units.BLOCK_SIZE_MB:
            a, b, c = PAPER_EQ5_SMALL
            return a * s + b * sc + c
        if f > 3.14 - 0.265 / s:
            a, b, c, d = PAPER_EQ5_HIGH_F
            return a * s + b * sc + c / f + d
        a, b, c = PAPER_EQ5_LOW_F
        return a * s + b * sc + c

    # -- crossovers (Section 4.2) ----------------------------------------------

    def sleep_vs_interleave_crossover_factor(
        self, raw_bytes: float = 4 * units.BYTES_PER_MB, codec: str = "gzip"
    ) -> float:
        """Compression factor above which sequential + power-save beats
        interleaving (the paper derives "must exceed 4.6")."""
        lo, hi = 1.01, 1000.0

        def sleep_minus_interleave(f: float) -> float:
            sc = raw_bytes / f
            return self.sequential_energy_j(
                raw_bytes, sc, codec, radio_power_save=True
            ) - self.interleaved_energy_j(raw_bytes, sc, codec)

        if sleep_minus_interleave(hi) > 0:
            return float("inf")
        for _ in range(200):
            mid = (lo + hi) / 2
            if sleep_minus_interleave(mid) > 0:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    def fill_idle_factor(self, raw_bytes: float = 4 * units.BYTES_PER_MB) -> float:
        """Compression factor needed for decompression to exactly fill the
        idle time (td = ti'); the paper derives 27 at 2 Mb/s."""
        lo, hi = 1.01, 10000.0

        def td_minus_idle(f: float) -> float:
            sc = raw_bytes / f
            ti_prime, _ = self.idle_times(raw_bytes, sc)
            return self.decompression_time_s(raw_bytes, sc) - ti_prime

        # td - ti' increases with f (less idle, similar td), so bisection
        # finds where decompression stops fitting in the gaps.
        if td_minus_idle(lo) > 0:
            return lo
        if td_minus_idle(hi) < 0:
            return float("inf")
        for _ in range(200):
            mid = (lo + hi) / 2
            if td_minus_idle(mid) < 0:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    # -- convenience -------------------------------------------------------------

    def net_saving_j(
        self,
        raw_bytes: float,
        compressed_bytes: float,
        codec: str = "gzip",
        interleaved: bool = True,
    ) -> float:
        """Plain-download energy minus compressed-download energy."""
        plain = self.download_energy_j(raw_bytes)
        if interleaved:
            compressed = self.interleaved_energy_j(raw_bytes, compressed_bytes, codec)
        else:
            compressed = self.sequential_energy_j(raw_bytes, compressed_bytes, codec)
        return plain - compressed

    def with_params(self, **overrides) -> "EnergyModel":
        """A copy of this model with selected parameters overridden."""
        return EnergyModel(
            link=self.link,
            device=self.device,
            cpu=self.cpu,
            params=replace(self.params, **overrides),
        )


#: Ready-made models for the paper's two operating points.
def model_11mbps() -> EnergyModel:
    """The paper's main operating point (11 Mb/s WaveLAN)."""
    return EnergyModel(link=LINK_11MBPS)


def model_2mbps() -> EnergyModel:
    """The paper's 2 Mb/s validation operating point."""
    return EnergyModel(link=LINK_2MBPS)
