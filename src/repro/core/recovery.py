"""Session-level recovery from corrupted transfers.

The checksummed containers detect damage; this module decides what the
device *does* about it, and what that costs in joules.  Three policies:

``restart``
    Re-download the whole file when any block fails verification.  The
    simplest receiver — and the right model for a device that cannot
    issue range requests.

``refetch``
    Re-request only the CRC-failed blocks (the checksummed framing
    names them).  Retransfers scale with the damage, not the file.

``degrade``
    Re-fetch like ``refetch``, but when a block exhausts its retry
    budget fall back to downloading the file RAW: uncompressed data has
    no framing to poison, so a flipped bit costs one wrong byte instead
    of a dead transfer.  This is the graceful-degradation endpoint of
    the paper's Equation 6 reasoning under corruption.

Every policy takes exponential backoff between attempts and an optional
wall-clock deadline.  The closed-form expectations here are what the
analytic engine charges under the ``refetch``/``verify`` tags; the DES
engine replays the same policies with seeded draws; and
:class:`RecoverySession` runs them for real over corrupted bytes (the
property-test data path).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional

from repro import units
from repro.compression.base import Codec
from repro.compression.streaming import decode_frame, encode_frames
from repro.errors import CodecError, ModelError, RecoveryExhaustedError
from repro.network import arq as arq_mod
from repro.network.corruption import BitFlipCorruption, CorruptionModel

#: CRC32 throughput on the handheld, MB/s.  A SA-1110-class CPU hashes
#: a byte in a few cycles; 50 MB/s keeps the verify term visible but
#: small next to decompression (~10 s/MB for gzip in Table 4).
DEFAULT_VERIFY_MB_PER_S = 50.0


class RecoveryPolicy(str, enum.Enum):
    """What the device does when a block fails verification.

    ``resume`` behaves like ``refetch`` for corrupt *data* (damaged
    blocks are range-requested individually), and additionally marks
    the receiver as range-capable for *link* faults: the fault-timeline
    planner restarts an interrupted transfer from the last checkpoint
    instead of byte zero (see :mod:`repro.core.resume`).
    """

    RESTART = "restart"
    REFETCH = "refetch"
    DEGRADE = "degrade"
    RESUME = "resume"


@dataclass(frozen=True)
class RecoveryConfig:
    """Retry budget, backoff and deadline for a recovery policy.

    Attributes:
        policy: which recovery strategy to run.
        max_retries: re-fetch attempts per block (or full restarts)
            before the policy gives up.
        timeout_s: idle wait before the first re-fetch attempt.
        backoff: multiplier on the wait per further attempt.
        deadline_s: wall-clock budget for recovery work; exceeding it
            truncates recovery (analytic: clamps the charged overhead
            and flags ``deadline_hit``; data path: raises).
        block_bytes: re-fetch granularity; defaults to the paper's
            0.128 MB compression buffer.
        verify_mb_per_s: CRC throughput used to charge verify time.
    """

    policy: RecoveryPolicy = RecoveryPolicy.REFETCH
    max_retries: int = 3
    timeout_s: float = 0.05
    backoff: float = 2.0
    deadline_s: Optional[float] = None
    block_bytes: int = units.BLOCK_SIZE_BYTES
    verify_mb_per_s: float = DEFAULT_VERIFY_MB_PER_S

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "policy", RecoveryPolicy(self.policy)
        )
        if self.max_retries < 0:
            raise ModelError("max_retries must be non-negative")
        if self.timeout_s < 0:
            raise ModelError("timeout_s must be non-negative")
        if self.backoff < 1.0:
            raise ModelError("backoff must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ModelError("deadline_s must be positive")
        if self.block_bytes <= 0:
            raise ModelError("block_bytes must be positive")
        if self.verify_mb_per_s <= 0:
            raise ModelError("verify_mb_per_s must be positive")

    def wait_before_attempt_s(self, attempt: int) -> float:
        """Backoff idle before re-fetch ``attempt`` (1-based)."""
        if attempt < 1:
            raise ModelError("attempt is 1-based")
        return self.timeout_s * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class RecoveryStats:
    """What recovery did (expected values analytically, counts in DES).

    Attributes:
        policy: policy that ran.
        blocks: verification units in the transfer.
        block_corrupt_rate: first-delivery damage probability per block.
        corrupt_blocks: blocks that failed verification.
        refetch_blocks: block re-fetches (or restart-equivalent blocks).
        refetch_bytes: extra bytes fetched by recovery, including a
            degrade fallback's raw download.
        restarts: whole-file restarts (``restart`` policy only).
        backoff_wait_s: idle time spent in exponential backoff.
        stall_s: idle time injected by proxy stall faults.
        verify_s: CPU time spent checksumming delivered bytes.
        degrade_probability: probability the session fell back to RAW
            (realized 0/1 in the DES engine and the data path).
        residual_failure_probability: probability the transfer is still
            corrupt after the budget (``restart``/``refetch``; a
            ``degrade`` session always ends with usable bytes).
        deadline_hit: recovery ran into the wall-clock deadline.
    """

    policy: RecoveryPolicy
    blocks: int
    block_corrupt_rate: float
    corrupt_blocks: float
    refetch_blocks: float
    refetch_bytes: float
    restarts: float
    backoff_wait_s: float
    stall_s: float
    verify_s: float
    degrade_probability: float
    residual_failure_probability: float
    deadline_hit: bool

    @property
    def degraded(self) -> bool:
        """Did the session (probably) fall back to RAW?"""
        return self.degrade_probability >= 0.5


@dataclass(frozen=True)
class RecoveryOverhead:
    """Time decomposition of recovery, ready for timeline charging."""

    refetch_active_s: float
    refetch_gap_s: float
    wait_s: float
    stall_s: float
    verify_s: float
    stats: RecoveryStats

    @property
    def wall_s(self) -> float:
        """Total wall-clock the recovery adds."""
        return (
            self.refetch_active_s
            + self.refetch_gap_s
            + self.wait_s
            + self.stall_s
            + self.verify_s
        )


def _truncated_geometric_sum(q: float, terms: int) -> float:
    """``sum_{j=0..terms-1} q^j`` without float drift for q ~ 1."""
    if terms <= 0:
        return 0.0
    if q >= 1.0:
        return float(terms)
    if q <= 0.0:
        return 1.0
    return (1.0 - q**terms) / (1.0 - q)


def _expected_wait_s(
    config: RecoveryConfig, first: float, again: float
) -> float:
    """Expected backoff idle for one block (or one whole restart chain).

    Attempt 1 happens with probability ``first`` (the first delivery was
    corrupt); attempt k with ``first * again^(k-1)``.
    """
    total = 0.0
    p = first
    for attempt in range(1, config.max_retries + 1):
        total += p * config.wait_before_attempt_s(attempt)
        p *= again
    return total


def expected_recovery(
    params,
    transfer_bytes: float,
    raw_bytes: float,
    corruption: CorruptionModel,
    config: Optional[RecoveryConfig] = None,
) -> RecoveryOverhead:
    """Closed-form recovery overhead for one compressed transfer.

    ``params`` is a :class:`~repro.core.energy_model.ModelParams`.  The
    transfer is verified in ``config.block_bytes`` units; damaged units
    are repaired per the policy.  With a clean channel every term is
    zero — the integrity machinery must cost nothing when checksums
    pass, so zero-corruption sessions stay identical to the baseline.
    """
    config = config or RecoveryConfig()
    if transfer_bytes <= 0:
        raise ModelError("transfer size must be positive")
    block = max(1, min(config.block_bytes, int(transfer_bytes)))
    n_blocks = max(1, math.ceil(transfer_bytes / config.block_bytes))
    q1 = corruption.block_corrupt_rate(block)
    qr = corruption.retry_corrupt_rate(block)
    stall = corruption.stall_s()
    if q1 <= 0.0 and stall <= 0.0:
        stats = RecoveryStats(
            policy=config.policy,
            blocks=n_blocks,
            block_corrupt_rate=0.0,
            corrupt_blocks=0.0,
            refetch_blocks=0.0,
            refetch_bytes=0.0,
            restarts=0.0,
            backoff_wait_s=0.0,
            stall_s=0.0,
            verify_s=0.0,
            degrade_probability=0.0,
            residual_failure_probability=0.0,
            deadline_hit=False,
        )
        return RecoveryOverhead(0.0, 0.0, 0.0, 0.0, 0.0, stats)

    mean_block_bytes = transfer_bytes / n_blocks
    degrade_probability = 0.0
    degraded_bytes = 0.0
    restarts = 0.0

    if config.policy is RecoveryPolicy.RESTART:
        p1 = 1.0 - (1.0 - q1) ** n_blocks
        pr = 1.0 - (1.0 - qr) ** n_blocks
        restarts = p1 * _truncated_geometric_sum(pr, config.max_retries)
        refetch_blocks = restarts * n_blocks
        refetch_bytes = restarts * transfer_bytes
        residual = p1 * pr**config.max_retries
        wait_s = _expected_wait_s(config, p1, pr)
        corrupt_blocks = n_blocks * q1
    else:
        per_block = q1 * _truncated_geometric_sum(qr, config.max_retries)
        refetch_blocks = n_blocks * per_block
        refetch_bytes = refetch_blocks * mean_block_bytes
        block_residual = q1 * qr**config.max_retries
        residual = 1.0 - (1.0 - block_residual) ** n_blocks
        wait_s = n_blocks * _expected_wait_s(config, q1, qr)
        corrupt_blocks = n_blocks * q1
        if config.policy is RecoveryPolicy.DEGRADE:
            degrade_probability = residual
            degraded_bytes = residual * raw_bytes
            residual = 0.0

    extra_bytes = refetch_bytes + degraded_bytes
    wall = units.bytes_to_mb(extra_bytes) / params.rate_mb_per_s
    active_s = wall * (1.0 - params.idle_fraction)
    gap_s = wall - active_s
    verified_bytes = transfer_bytes + refetch_bytes
    verify_s = units.bytes_to_mb(verified_bytes) / config.verify_mb_per_s

    deadline_hit = False
    total = active_s + gap_s + wait_s + stall + verify_s
    if config.deadline_s is not None and total > config.deadline_s:
        # The device abandons recovery at the deadline: charge only the
        # share of the expected work that fits.
        scale = config.deadline_s / total
        active_s *= scale
        gap_s *= scale
        wait_s *= scale
        stall *= scale
        verify_s *= scale
        refetch_blocks *= scale
        refetch_bytes *= scale
        extra_bytes *= scale
        restarts *= scale
        deadline_hit = True

    stats = RecoveryStats(
        policy=config.policy,
        blocks=n_blocks,
        block_corrupt_rate=q1,
        corrupt_blocks=corrupt_blocks,
        refetch_blocks=refetch_blocks,
        refetch_bytes=extra_bytes,
        restarts=restarts,
        backoff_wait_s=wait_s,
        stall_s=stall,
        verify_s=verify_s,
        degrade_probability=degrade_probability,
        residual_failure_probability=residual,
        deadline_hit=deadline_hit,
    )
    return RecoveryOverhead(
        refetch_active_s=active_s,
        refetch_gap_s=gap_s,
        wait_s=wait_s,
        stall_s=stall,
        verify_s=verify_s,
        stats=stats,
    )


def recovery_overhead_energy_j(
    params,
    transfer_bytes: float,
    raw_bytes: float,
    corruption,
    config: Optional[RecoveryConfig] = None,
) -> float:
    """Expected joules recovery adds to one compressed transfer.

    ``corruption`` may be a :class:`CorruptionModel` or a plain residual
    bit-error rate.  Re-fetched airtime is charged at the receive power,
    backoff/stall idle at the gap power and CRC verification at the
    decompression power — the same split the session timelines use, so
    the corruption-aware Equation 6 and the simulated sessions agree.
    """
    corruption = as_corruption_model(corruption)
    ov = expected_recovery(params, transfer_bytes, raw_bytes, corruption, config)
    return (
        ov.refetch_active_s * arq_mod.recv_power_w(params)
        + (ov.refetch_gap_s + ov.wait_s + ov.stall_s) * params.gap_power_w
        + ov.verify_s * params.decompress_power_w
    )


def as_corruption_model(corruption) -> CorruptionModel:
    """Coerce a residual BER (float) into a corruption model."""
    if isinstance(corruption, CorruptionModel):
        return corruption
    return BitFlipCorruption(float(corruption))


# -- concrete data path ------------------------------------------------------


@dataclass
class RecoveryReport:
    """Outcome of one :class:`RecoverySession` run (realized counts)."""

    data: bytes
    blocks: int
    corrupt_blocks: int
    refetch_blocks: int
    refetch_bytes: int
    restarts: int
    backoff_wait_s: float
    degraded: bool


class RecoverySession:
    """Runs a recovery policy for real over corrupted frame bytes.

    The sender's data is framed with the checksummed streaming container
    (one frame per ``config.block_bytes``); every delivery passes through
    the corruption model; damaged frames are repaired per the policy.
    This is the byte-level twin of the analytic expectations — property
    tests assert it never returns wrong bytes: the result equals the
    original data, or :class:`~repro.errors.RecoveryExhaustedError` is
    raised.
    """

    def __init__(
        self,
        data: bytes,
        corruption: CorruptionModel,
        config: Optional[RecoveryConfig] = None,
        codec: Optional[Codec] = None,
    ) -> None:
        self.data = data
        self.corruption = corruption
        self.config = config or RecoveryConfig()
        self.codec = codec
        self.frames: List[bytes] = encode_frames(
            data,
            codec,
            block_size=self.config.block_bytes,
            checksum=True,
        )

    def _deliver(self, frame: bytes, offset: int) -> bytes:
        return self.corruption.corrupt(frame, offset)

    def _decode(self, wire: bytes) -> Optional[bytes]:
        try:
            return decode_frame(wire, self.codec)
        except CodecError:
            return None

    def run(self) -> RecoveryReport:
        """Execute the policy; returns the recovered bytes and counts."""
        self.corruption.reset()
        self.corruption.begin_transfer(sum(len(f) for f in self.frames))
        if self.config.policy is RecoveryPolicy.RESTART:
            return self._run_restart()
        return self._run_refetch(
            degrade=self.config.policy is RecoveryPolicy.DEGRADE
        )

    def _check_deadline(self, waited_s: float) -> None:
        deadline = self.config.deadline_s
        if deadline is not None and waited_s > deadline:
            raise RecoveryExhaustedError(
                f"recovery deadline of {deadline:.3f}s exceeded "
                f"after {waited_s:.3f}s of backoff"
            )

    def _run_refetch(self, degrade: bool) -> RecoveryReport:
        blocks: List[bytes] = []
        corrupt_blocks = 0
        refetch_blocks = 0
        refetch_bytes = 0
        waited_s = 0.0
        offset = 0
        for index, frame in enumerate(self.frames):
            block = self._decode(self._deliver(frame, offset))
            if block is None:
                corrupt_blocks += 1
                for attempt in range(1, self.config.max_retries + 1):
                    waited_s += self.config.wait_before_attempt_s(attempt)
                    self._check_deadline(waited_s)
                    refetch_blocks += 1
                    refetch_bytes += len(frame)
                    block = self._decode(self._deliver(frame, offset))
                    if block is not None:
                        break
                if block is None:
                    if degrade:
                        # Fall back to the raw file: no framing left to
                        # poison, the transfer always completes.
                        return RecoveryReport(
                            data=self.data,
                            blocks=len(self.frames),
                            corrupt_blocks=corrupt_blocks,
                            refetch_blocks=refetch_blocks,
                            refetch_bytes=refetch_bytes + len(self.data),
                            restarts=0,
                            backoff_wait_s=waited_s,
                            degraded=True,
                        )
                    raise RecoveryExhaustedError(
                        f"block {index} still corrupt after "
                        f"{self.config.max_retries} re-fetches"
                    )
            blocks.append(block)
            offset += len(frame)
        return RecoveryReport(
            data=b"".join(blocks),
            blocks=len(self.frames),
            corrupt_blocks=corrupt_blocks,
            refetch_blocks=refetch_blocks,
            refetch_bytes=refetch_bytes,
            restarts=0,
            backoff_wait_s=waited_s,
            degraded=False,
        )

    def _run_restart(self) -> RecoveryReport:
        waited_s = 0.0
        corrupt_blocks = 0
        refetch_bytes = 0
        wire_bytes = sum(len(f) for f in self.frames)
        for attempt in range(self.config.max_retries + 1):
            if attempt:
                waited_s += self.config.wait_before_attempt_s(attempt)
                self._check_deadline(waited_s)
                refetch_bytes += wire_bytes
            blocks: List[bytes] = []
            failed = False
            offset = 0
            for frame in self.frames:
                block = self._decode(self._deliver(frame, offset))
                offset += len(frame)
                if block is None:
                    corrupt_blocks += 1
                    failed = True
                    break
                blocks.append(block)
            if not failed:
                return RecoveryReport(
                    data=b"".join(blocks),
                    blocks=len(self.frames),
                    corrupt_blocks=corrupt_blocks,
                    refetch_blocks=attempt * len(self.frames),
                    refetch_bytes=refetch_bytes,
                    restarts=attempt,
                    backoff_wait_s=waited_s,
                    degraded=False,
                )
        raise RecoveryExhaustedError(
            f"transfer still corrupt after {self.config.max_retries} restarts"
        )


__all__ = [
    "DEFAULT_VERIFY_MB_PER_S",
    "RecoveryPolicy",
    "RecoveryConfig",
    "RecoveryStats",
    "RecoveryOverhead",
    "expected_recovery",
    "recovery_overhead_energy_j",
    "as_corruption_model",
    "RecoverySession",
    "RecoveryReport",
]
