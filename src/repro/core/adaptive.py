"""Block-by-block adaptive compression (Section 4.3, Figure 10).

The paper's pseudo-code, applied per compression-buffer block::

    for each block:
        if block size < threshold size: send the raw data
        else:
            compress the block
            if Equation 6 test is negative: send the raw data
            else: send the compressed data

"Send" means writing to the precompressed file: the output is a container
that mixes raw and compressed blocks, so mixed-content files (tar, PDF,
presentations) only pay decompression where it helps.

Container layout::

    magic "RZA" | u8 inner-codec-name-len | codec name | varint raw_size |
    block*
    block := varint raw_len | u8 type | payload
    type 0: raw_len raw bytes
    type 1: varint payload_len | inner-codec stream
    type 2: as type 0, then 4-byte little-endian CRC32 of the raw bytes
    type 3: as type 1, then 4-byte little-endian CRC32 of the inner stream

The checksummed types (the encoder default since the integrity
subsystem) let the device verify each block *before* decompressing it,
so a block re-fetch policy can name exactly which block to re-request;
types 0/1 remain decodable for pre-checksum containers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro import units
from repro.compression.base import Codec, CodecResult, get_codec
from repro.compression.varint import read_varint, write_varint
from repro.core import thresholds
from repro.core.energy_model import EnergyModel
from repro.errors import CorruptStreamError, TruncatedStreamError

_MAGIC = b"RZA"
_CRC_LEN = 4


def _crc32(body: bytes) -> bytes:
    return (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(_CRC_LEN, "little")


@dataclass(frozen=True)
class BlockDecision:
    """What happened to one block."""

    index: int
    raw_bytes: int
    compressed_bytes: int
    sent_compressed: bool
    factor: float
    #: Link rate Equation 6 was evaluated at (None = static base model).
    rate_mbps: Optional[float] = None

    @property
    def transfer_bytes(self) -> int:
        """Bytes this block contributes to the transfer."""
        return self.compressed_bytes if self.sent_compressed else self.raw_bytes


@dataclass(frozen=True)
class AdaptiveResult(CodecResult):
    """CodecResult plus the per-block decision trail."""

    decisions: List[BlockDecision] = field(default_factory=list)

    @property
    def blocks_compressed(self) -> int:
        """Number of blocks shipped compressed."""
        return sum(1 for d in self.decisions if d.sent_compressed)

    @property
    def blocks_raw(self) -> int:
        """Number of blocks shipped raw."""
        return len(self.decisions) - self.blocks_compressed

    @property
    def compressed_payload_bytes(self) -> int:
        """Bytes of payload that must be decompressed on the device."""
        return sum(d.compressed_bytes for d in self.decisions if d.sent_compressed)

    @property
    def raw_covered_bytes(self) -> int:
        """Raw bytes covered by compressed blocks (decompressor output)."""
        return sum(d.raw_bytes for d in self.decisions if d.sent_compressed)


class AdaptiveBlockCodec(Codec):
    """Figure 10's block-by-block adaptive scheme around any inner codec."""

    name = "zlib-adaptive"

    def __init__(
        self,
        inner: Optional[Codec] = None,
        model: Optional[EnergyModel] = None,
        block_size: int = units.BLOCK_SIZE_BYTES,
        size_threshold: int = units.THRESHOLD_FILE_SIZE_BYTES,
        checksum: bool = True,
        faults=None,
        base_link=None,
        resume=None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.inner = inner or get_codec("zlib")
        self.model = model  # None => the paper's literal Equation 6
        self.block_size = block_size
        self.size_threshold = size_threshold
        self.checksum = checksum
        # Fault-timeline awareness: when a FaultTimeline is supplied the
        # encoder re-runs Equation 6 per block at the ladder rung that
        # will be in force when the block ships (exact for the container
        # prefix already emitted — a block's delivery time depends only
        # on the transfer bytes before it).
        self.faults = faults
        self.base_link = base_link
        self.resume = resume
        self._rung_models = {}

    def _model_for_block(self, transfer_pos: int, block_len: int):
        """(model, rate) Equation 6 should use for the block at this offset."""
        if self.faults is None or not self.faults.has_events:
            return self.model, None
        from repro.network.timeline import link_at
        from repro.network.wlan import LINK_11MBPS

        base = self.base_link or LINK_11MBPS
        link = link_at(
            self.faults, base, transfer_pos,
            transfer_pos + max(1, block_len), self.resume,
        )
        model = self._rung_models.get(link.name)
        if model is None:
            model = EnergyModel(link=link)
            self._rung_models[link.name] = model
        rate = link.nominal_rate_bps / 1e6
        return model, rate

    # -- encoding ---------------------------------------------------------

    def compress(self, data: bytes) -> AdaptiveResult:
        out = bytearray(_MAGIC)
        name = self.inner.name.encode("ascii")
        out.append(len(name))
        out += name
        out += write_varint(len(data))
        decisions: List[BlockDecision] = []
        for index, start in enumerate(range(0, len(data), self.block_size)):
            block = data[start : start + self.block_size]
            decision, encoded = self._encode_block(index, block, len(out))
            decisions.append(decision)
            out += encoded
        payload = bytes(out)
        return AdaptiveResult(
            payload=payload,
            raw_size=len(data),
            compressed_size=len(payload),
            decisions=decisions,
        )

    def compress_bytes(self, data: bytes) -> bytes:
        return self.compress(data).payload

    def _raw_block(self, block: bytes) -> bytes:
        header = write_varint(len(block))
        if self.checksum:
            return bytes(header) + b"\x02" + block + _crc32(block)
        return bytes(header) + b"\x00" + block

    def _compressed_block(self, block: bytes, compressed: bytes) -> bytes:
        header = write_varint(len(block))
        body = write_varint(len(compressed)) + compressed
        if self.checksum:
            return bytes(header) + b"\x03" + body + _crc32(compressed)
        return bytes(header) + b"\x01" + body

    def _encode_block(self, index: int, block: bytes, transfer_pos: int = 0):
        model, rate = self._model_for_block(transfer_pos, len(block))
        if len(block) < self.size_threshold:
            decision = BlockDecision(
                index, len(block), len(block), False, 1.0, rate
            )
            return decision, self._raw_block(block)

        compressed = self.inner.compress_bytes(block)
        factor = units.compression_factor(len(block), len(compressed))
        worthwhile = thresholds.compression_worthwhile(
            len(block), factor, model
        ) and len(compressed) < len(block)
        if not worthwhile:
            decision = BlockDecision(
                index, len(block), len(compressed), False, factor, rate
            )
            return decision, self._raw_block(block)
        decision = BlockDecision(
            index, len(block), len(compressed), True, factor, rate
        )
        return decision, self._compressed_block(block, compressed)

    # -- decoding ---------------------------------------------------------

    def decompress_bytes(self, payload: bytes) -> bytes:
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("bad magic; not an adaptive stream")
        pos = len(_MAGIC)
        if pos >= len(payload):
            raise TruncatedStreamError("truncated codec name")
        name_len = payload[pos]
        pos += 1
        if pos + name_len > len(payload):
            raise TruncatedStreamError("truncated codec name")
        try:
            name = payload[pos : pos + name_len].decode("ascii")
        except UnicodeDecodeError as exc:
            raise CorruptStreamError(f"corrupt codec name: {exc}") from exc
        pos += name_len
        inner = self.inner if name == self.inner.name else get_codec(name)
        raw_size, pos = read_varint(payload, pos)
        out = bytearray()
        index = 0
        while len(out) < raw_size:
            block_start = pos
            block_len, pos = read_varint(payload, pos)
            if pos >= len(payload):
                raise TruncatedStreamError(
                    f"truncated header for block {index} at byte {block_start}"
                )
            btype = payload[pos]
            pos += 1
            checksummed = btype in (2, 3)
            if btype in (0, 2):
                end = pos + block_len + (_CRC_LEN if checksummed else 0)
                if end > len(payload):
                    raise TruncatedStreamError(
                        f"truncated raw block {index} at byte {block_start}"
                    )
                block = payload[pos : pos + block_len]
                if checksummed and payload[pos + block_len : end] != _crc32(
                    block
                ):
                    raise CorruptStreamError(
                        f"checksum mismatch in block {index} "
                        f"at byte {block_start}"
                    )
                out += block
                pos = end
            elif btype in (1, 3):
                body_len, pos = read_varint(payload, pos)
                end = pos + body_len + (_CRC_LEN if checksummed else 0)
                if end > len(payload):
                    raise TruncatedStreamError(
                        f"truncated compressed block {index} "
                        f"at byte {block_start}"
                    )
                body = bytes(payload[pos : pos + body_len])
                if checksummed and payload[pos + body_len : end] != _crc32(
                    body
                ):
                    raise CorruptStreamError(
                        f"checksum mismatch in block {index} "
                        f"at byte {block_start}"
                    )
                block = inner.decompress_bytes(body)
                if len(block) != block_len:
                    raise CorruptStreamError(
                        f"length mismatch in block {index} "
                        f"at byte {block_start}"
                    )
                out += block
                pos = end
            else:
                raise CorruptStreamError(
                    f"unknown block type {btype} in block {index} "
                    f"at byte {block_start}"
                )
            index += 1
        if len(out) != raw_size:
            raise CorruptStreamError("decoded size mismatch")
        return bytes(out)
