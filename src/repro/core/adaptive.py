"""Block-by-block adaptive compression (Section 4.3, Figure 10).

The paper's pseudo-code, applied per compression-buffer block::

    for each block:
        if block size < threshold size: send the raw data
        else:
            compress the block
            if Equation 6 test is negative: send the raw data
            else: send the compressed data

"Send" means writing to the precompressed file: the output is a container
that mixes raw and compressed blocks, so mixed-content files (tar, PDF,
presentations) only pay decompression where it helps.

Container layout::

    magic "RZA" | u8 inner-codec-name-len | codec name | varint raw_size |
    block*
    block := varint raw_len | u8 type | payload
    type 0: raw_len raw bytes
    type 1: varint payload_len | inner-codec stream
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import units
from repro.compression.base import Codec, CodecResult, get_codec
from repro.compression.varint import read_varint, write_varint
from repro.core import thresholds
from repro.core.energy_model import EnergyModel
from repro.errors import CorruptStreamError

_MAGIC = b"RZA"


@dataclass(frozen=True)
class BlockDecision:
    """What happened to one block."""

    index: int
    raw_bytes: int
    compressed_bytes: int
    sent_compressed: bool
    factor: float

    @property
    def transfer_bytes(self) -> int:
        """Bytes this block contributes to the transfer."""
        return self.compressed_bytes if self.sent_compressed else self.raw_bytes


@dataclass(frozen=True)
class AdaptiveResult(CodecResult):
    """CodecResult plus the per-block decision trail."""

    decisions: List[BlockDecision] = field(default_factory=list)

    @property
    def blocks_compressed(self) -> int:
        """Number of blocks shipped compressed."""
        return sum(1 for d in self.decisions if d.sent_compressed)

    @property
    def blocks_raw(self) -> int:
        """Number of blocks shipped raw."""
        return len(self.decisions) - self.blocks_compressed

    @property
    def compressed_payload_bytes(self) -> int:
        """Bytes of payload that must be decompressed on the device."""
        return sum(d.compressed_bytes for d in self.decisions if d.sent_compressed)

    @property
    def raw_covered_bytes(self) -> int:
        """Raw bytes covered by compressed blocks (decompressor output)."""
        return sum(d.raw_bytes for d in self.decisions if d.sent_compressed)


class AdaptiveBlockCodec(Codec):
    """Figure 10's block-by-block adaptive scheme around any inner codec."""

    name = "zlib-adaptive"

    def __init__(
        self,
        inner: Optional[Codec] = None,
        model: Optional[EnergyModel] = None,
        block_size: int = units.BLOCK_SIZE_BYTES,
        size_threshold: int = units.THRESHOLD_FILE_SIZE_BYTES,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.inner = inner or get_codec("zlib")
        self.model = model  # None => the paper's literal Equation 6
        self.block_size = block_size
        self.size_threshold = size_threshold

    # -- encoding ---------------------------------------------------------

    def compress(self, data: bytes) -> AdaptiveResult:
        out = bytearray(_MAGIC)
        name = self.inner.name.encode("ascii")
        out.append(len(name))
        out += name
        out += write_varint(len(data))
        decisions: List[BlockDecision] = []
        for index, start in enumerate(range(0, len(data), self.block_size)):
            block = data[start : start + self.block_size]
            decision, encoded = self._encode_block(index, block)
            decisions.append(decision)
            out += encoded
        payload = bytes(out)
        return AdaptiveResult(
            payload=payload,
            raw_size=len(data),
            compressed_size=len(payload),
            decisions=decisions,
        )

    def compress_bytes(self, data: bytes) -> bytes:
        return self.compress(data).payload

    def _encode_block(self, index: int, block: bytes):
        header = write_varint(len(block))
        if len(block) < self.size_threshold:
            decision = BlockDecision(index, len(block), len(block), False, 1.0)
            return decision, bytes(header) + b"\x00" + block

        compressed = self.inner.compress_bytes(block)
        factor = units.compression_factor(len(block), len(compressed))
        worthwhile = thresholds.compression_worthwhile(
            len(block), factor, self.model
        ) and len(compressed) < len(block)
        if not worthwhile:
            decision = BlockDecision(index, len(block), len(compressed), False, factor)
            return decision, bytes(header) + b"\x00" + block
        decision = BlockDecision(index, len(block), len(compressed), True, factor)
        return (
            decision,
            bytes(header) + b"\x01" + write_varint(len(compressed)) + compressed,
        )

    # -- decoding ---------------------------------------------------------

    def decompress_bytes(self, payload: bytes) -> bytes:
        if payload[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("bad magic; not an adaptive stream")
        pos = len(_MAGIC)
        if pos >= len(payload):
            raise CorruptStreamError("truncated codec name")
        name_len = payload[pos]
        pos += 1
        if pos + name_len > len(payload):
            raise CorruptStreamError("truncated codec name")
        name = payload[pos : pos + name_len].decode("ascii")
        pos += name_len
        inner = self.inner if name == self.inner.name else get_codec(name)
        raw_size, pos = read_varint(payload, pos)
        out = bytearray()
        while len(out) < raw_size:
            block_len, pos = read_varint(payload, pos)
            if pos >= len(payload):
                raise CorruptStreamError("truncated block header")
            btype = payload[pos]
            pos += 1
            if btype == 0:
                block = payload[pos : pos + block_len]
                if len(block) != block_len:
                    raise CorruptStreamError("truncated raw block")
                out += block
                pos += block_len
            elif btype == 1:
                body_len, pos = read_varint(payload, pos)
                body = payload[pos : pos + body_len]
                if len(body) != body_len:
                    raise CorruptStreamError("truncated compressed block")
                block = inner.decompress_bytes(bytes(body))
                if len(block) != block_len:
                    raise CorruptStreamError("block length mismatch")
                out += block
                pos += body_len
            else:
                raise CorruptStreamError(f"unknown block type {btype}")
        if len(out) != raw_size:
            raise CorruptStreamError("decoded size mismatch")
        return bytes(out)
