"""The paper's contribution: energy model, interleaving, selective schemes."""

from repro.core.energy_model import EnergyModel, ModelParams
from repro.core.thresholds import (
    paper_condition,
    compression_worthwhile,
    factor_threshold,
    size_threshold_bytes,
    break_even_corrupt_rate,
)
from repro.core.interleave import InterleavePlan, plan_interleave
from repro.core.selective import SelectiveDecision, decide_file
from repro.core.adaptive import AdaptiveBlockCodec, AdaptiveResult
from repro.core.advisor import CompressionAdvisor, Recommendation
from repro.core.calibration import (
    fit_download_energy,
    fit_decompression_time,
    DownloadEnergyFit,
    DecompressionTimeFit,
)
from repro.core.upload import UploadModel
from repro.core.fleet_advisor import FleetAdvisor
from repro.core.recovery import (
    RecoveryConfig,
    RecoveryPolicy,
    RecoverySession,
    RecoveryStats,
    expected_recovery,
    recovery_overhead_energy_j,
)

__all__ = [
    "EnergyModel",
    "ModelParams",
    "paper_condition",
    "compression_worthwhile",
    "factor_threshold",
    "size_threshold_bytes",
    "break_even_corrupt_rate",
    "InterleavePlan",
    "plan_interleave",
    "SelectiveDecision",
    "decide_file",
    "AdaptiveBlockCodec",
    "AdaptiveResult",
    "CompressionAdvisor",
    "Recommendation",
    "fit_download_energy",
    "fit_decompression_time",
    "DownloadEnergyFit",
    "DecompressionTimeFit",
    "UploadModel",
    "FleetAdvisor",
    "RecoveryPolicy",
    "RecoveryConfig",
    "RecoveryStats",
    "RecoverySession",
    "expected_recovery",
    "recovery_overhead_energy_j",
]
