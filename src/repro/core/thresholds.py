"""Threshold conditions for energy-worthy compression (Equation 6).

The paper derives, by requiring the interleaved-compressed energy
(Equation 5) to undercut the plain-download energy:

    if s >  0.128 MB:  1.13/F < 1 - 0.00157/s
    if s <= 0.128 MB:  1.30/F < 1 - 0.00372/s

and, as F -> infinity, a file-size threshold of 0.00372 MB = 3900 bytes
below which compression never pays off.  This module provides both the
paper's literal conditions and the same thresholds re-derived from any
:class:`~repro.core.energy_model.EnergyModel` parameterization.

The loss-aware extension (``loss_rate > 0``) adds the expected ARQ
retransmission energy to both sides of the comparison.  Loss multiplies
the *transfer* cost of either strategy by the same factor while the
decompression cost is unaffected, so compression starts paying off for
smaller files as the loss rate rises: the break-even size shrinks.

The corruption-aware extension (``corrupt_rate > 0``) pushes the other
way.  A residual bit error that slips past link ARQ poisons a whole
compressed block (the framing and entropy coding amplify one flipped
bit into a failed CRC and a re-fetch), while a raw download absorbs it
as one wrong byte.  Recovery energy is therefore charged to the
*compressed* side only, so as the residual error rate rises compression
stops paying for ever-larger files — until past some rate it never
pays at all.

The rate-adaptation extension re-derives Equation 6 at every rung of
the 802.11b ladder (11/5.5/2/1 Mb/s): a slower link stretches the
airtime per byte, so compression pays for ever-smaller files as the
rate steps down — the size threshold at 1 Mb/s is a fraction of the
11 Mb/s one.  :func:`timeline_decisions` walks a
:class:`~repro.network.timeline.FaultTimeline` and reports the
Equation 6 verdict for each rate segment, which is what the adaptive
encoder consults when a transfer spans a rate step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.core.energy_model import EnergyModel
from repro.core.recovery import RecoveryConfig, recovery_overhead_energy_j
from repro.errors import ModelError
from repro.network.arq import ArqConfig, expected_overhead_energy_j
from repro.network.wlan import LADDER_MBPS, ladder_link

#: Equation 6 literal constants.
PAPER_LARGE_FACTOR_NUMERATOR = 1.13
PAPER_LARGE_SIZE_TERM = 0.00157
PAPER_SMALL_FACTOR_NUMERATOR = 1.30
PAPER_SMALL_SIZE_TERM = 0.00372

# -- numerical contract ----------------------------------------------------
#
# Every number this module emits is pinned byte-for-byte by campaign
# baselines and reproduced bit-exactly by the vectorized batch engine
# (:mod:`repro.simulator.batch`).  That makes the *operation order* of
# the arithmetic below part of the public contract, not an
# implementation detail:
#
# - sums accumulate naively left-to-right (never ``math.fsum``): the
#   ARQ retry-wait loop in :mod:`repro.network.arq` and the recovery
#   wait loop in :mod:`repro.core.recovery` add terms in ascending
#   attempt order, carrying the per-attempt probability as an iterated
#   product (``p *= again``), and the batch engine mirrors that exact
#   sequence of IEEE-754 operations;
# - the bisections below run a fixed :data:`BISECT_ITERATIONS` passes
#   with ``mid = (lo + hi) / 2`` and return ``(lo + hi) / 2`` — no
#   early exit on convergence, so the iteration trajectory (and hence
#   the final rounding) is identical for the scalar and array paths;
# - ``size_threshold_bytes`` rounds with built-in :func:`round`
#   (banker's rounding, matched by ``np.rint`` in the batch engine).
#
# Changing any of these — reordering a sum, switching to fsum, exiting
# a bisection early — is a baseline-breaking change: it must regenerate
# ``smoke_baseline.jsonl`` and the batch engine in the same commit, and
# the differential-oracle suite (tests/simulator/test_batch_oracle.py)
# will fail until both paths agree again.

#: Fixed bisection pass count shared by the scalar and batch engines.
BISECT_ITERATIONS = 200
#: Upper bracket for the compression-factor bisection.
FACTOR_BISECT_HI = 1e6
#: "Arbitrarily high" factor probing whether compression *ever* pays.
SIZE_BISECT_HUGE_FACTOR = 1e9
#: Default upper bracket for the break-even corruption-rate bisection.
BREAK_EVEN_MAX_RATE = 1e-2


def paper_condition(raw_bytes: float, compression_factor: float) -> bool:
    """The paper's literal Equation 6 test (True = compression saves)."""
    if compression_factor <= 0:
        raise ModelError("compression factor must be positive")
    s = units.bytes_to_mb(raw_bytes)
    if s <= 0:
        return False
    if s > units.BLOCK_SIZE_MB:
        return PAPER_LARGE_FACTOR_NUMERATOR / compression_factor < (
            1.0 - PAPER_LARGE_SIZE_TERM / s
        )
    return PAPER_SMALL_FACTOR_NUMERATOR / compression_factor < (
        1.0 - PAPER_SMALL_SIZE_TERM / s
    )


def compression_worthwhile(
    raw_bytes: float,
    compression_factor: float,
    model: Optional[EnergyModel] = None,
    codec: str = "gzip",
    loss_rate: float = 0.0,
    arq: Optional[ArqConfig] = None,
    corrupt_rate: float = 0.0,
    recovery: Optional[RecoveryConfig] = None,
) -> bool:
    """Model-derived Equation 6: does interleaved compression save energy?

    With the default model this agrees with :func:`paper_condition`; with
    a different link or codec parameterization it adapts accordingly.
    ``loss_rate`` is a per-packet loss probability: the expected ARQ
    retransmission energy (under ``arq``, default stop-and-wait with 7
    retries) is charged to each strategy's transfer bytes.
    ``corrupt_rate`` is a residual bit-error rate (past ARQ): the
    expected verify-and-re-fetch energy (under ``recovery``) is charged
    to the compressed side only, since raw bytes carry no framing for a
    flipped bit to poison.
    """
    if loss_rate < 0 or loss_rate >= 1:
        raise ModelError(f"loss rate must be in [0, 1), got {loss_rate}")
    if corrupt_rate < 0 or corrupt_rate >= 1:
        raise ModelError(f"corrupt rate must be in [0, 1), got {corrupt_rate}")
    if loss_rate == 0 and corrupt_rate == 0:
        if model is None:
            return paper_condition(raw_bytes, compression_factor)
    elif model is None:
        # The literal Equation 6 has no loss or corruption term; fall
        # back to the default model the paper's constants were derived
        # from.
        model = EnergyModel()
    if compression_factor <= 0:
        raise ModelError("compression factor must be positive")
    if raw_bytes <= 0:
        return False
    compressed = raw_bytes / compression_factor
    plain_e = model.download_energy_j(raw_bytes)
    comp_e = model.interleaved_energy_j(raw_bytes, compressed, codec)
    if loss_rate > 0:
        plain_e += expected_overhead_energy_j(
            model.params, raw_bytes, loss_rate, arq
        )
        comp_e += expected_overhead_energy_j(
            model.params, compressed, loss_rate, arq
        )
    if corrupt_rate > 0:
        comp_e += recovery_overhead_energy_j(
            model.params, compressed, raw_bytes, corrupt_rate, recovery
        )
    return comp_e < plain_e


def factor_threshold(
    raw_bytes: float,
    model: Optional[EnergyModel] = None,
    codec: str = "gzip",
    loss_rate: float = 0.0,
    arq: Optional[ArqConfig] = None,
    corrupt_rate: float = 0.0,
    recovery: Optional[RecoveryConfig] = None,
) -> float:
    """Minimum compression factor at which compression starts to pay.

    Returns ``inf`` when no factor can make compression worthwhile (files
    below the size threshold, or residual errors too punishing).
    """
    if raw_bytes <= 0:
        return float("inf")

    def worthwhile(f: float) -> bool:
        return compression_worthwhile(
            raw_bytes, f, model, codec, loss_rate, arq, corrupt_rate, recovery
        )

    hi = FACTOR_BISECT_HI
    if not worthwhile(hi):
        return float("inf")
    lo = 1.0
    if worthwhile(lo):
        return lo
    for _ in range(BISECT_ITERATIONS):
        mid = (lo + hi) / 2
        if worthwhile(mid):
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2


def size_threshold_bytes(
    model: Optional[EnergyModel] = None,
    codec: str = "gzip",
    loss_rate: float = 0.0,
    arq: Optional[ArqConfig] = None,
    corrupt_rate: float = 0.0,
    recovery: Optional[RecoveryConfig] = None,
) -> int:
    """File-size threshold below which no factor makes compression pay.

    The paper's value is 3900 bytes; the model-derived value is the
    smallest size for which an arbitrarily high factor still saves.
    Under loss the threshold shrinks: retransmissions inflate every raw
    byte's cost while the fixed decompression cost stays put.  Under
    residual corruption it grows instead — recovery taxes only the
    compressed side.
    """
    if model is None:
        if loss_rate == 0 and corrupt_rate == 0:
            return units.THRESHOLD_FILE_SIZE_BYTES
        model = EnergyModel()
    huge_factor = SIZE_BISECT_HUGE_FACTOR

    def ever_worthwhile(n_bytes: float) -> bool:
        return compression_worthwhile(
            n_bytes, huge_factor, model, codec, loss_rate, arq,
            corrupt_rate, recovery,
        )

    lo, hi = 1.0, float(units.BYTES_PER_MB)
    if ever_worthwhile(lo):
        return 1
    if not ever_worthwhile(hi):
        raise ModelError("compression never worthwhile under this model")
    for _ in range(BISECT_ITERATIONS):
        mid = (lo + hi) / 2
        if ever_worthwhile(mid):
            hi = mid
        else:
            lo = mid
    return int(round((lo + hi) / 2))


def break_even_corrupt_rate(
    raw_bytes: float,
    compression_factor: float,
    model: Optional[EnergyModel] = None,
    codec: str = "gzip",
    recovery: Optional[RecoveryConfig] = None,
    max_rate: float = BREAK_EVEN_MAX_RATE,
) -> float:
    """Residual bit-error rate at which compression stops paying.

    The headline number of the corruption extension: below the returned
    BER a compressed download of this file still beats the raw one;
    above it, the expected re-fetch energy eats the savings.  Returns
    0.0 when compression never pays even on a clean channel, and
    ``inf`` when it still pays at ``max_rate`` (recovery saturates —
    at high BER every block is corrupt on every attempt, so the
    expected overhead plateaus at the full retry budget).
    """
    if not compression_worthwhile(
        raw_bytes, compression_factor, model, codec, recovery=recovery
    ):
        return 0.0
    if compression_worthwhile(
        raw_bytes, compression_factor, model, codec,
        corrupt_rate=max_rate, recovery=recovery,
    ):
        return float("inf")
    lo, hi = 0.0, max_rate
    for _ in range(BISECT_ITERATIONS):
        mid = (lo + hi) / 2
        if compression_worthwhile(
            raw_bytes, compression_factor, model, codec,
            corrupt_rate=mid, recovery=recovery,
        ):
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


# -- rate-adaptation: Equation 6 re-derived per ladder rung ----------------

_RATE_MODELS: Dict[Tuple[float, int], EnergyModel] = {}


def model_at_rate(rate_mbps: float, device=None) -> EnergyModel:
    """An :class:`EnergyModel` for one 802.11b ladder rung.

    Raises :class:`~repro.errors.LinkRateError` off-ladder.  Models are
    cached per (rate, device) so repeated per-block re-evaluation is
    cheap.
    """
    key = (float(rate_mbps), id(device))
    model = _RATE_MODELS.get(key)
    if model is None:
        model = EnergyModel(link=ladder_link(rate_mbps), device=device)
        _RATE_MODELS[key] = model
    return model


def worthwhile_at_rate(
    raw_bytes: float,
    compression_factor: float,
    rate_mbps: float,
    codec: str = "gzip",
    device=None,
) -> bool:
    """Equation 6 re-evaluated at one ladder rung's link parameters."""
    return compression_worthwhile(
        raw_bytes, compression_factor, model_at_rate(rate_mbps, device), codec
    )


def ladder_thresholds(codec: str = "gzip", device=None) -> Dict[float, int]:
    """Size threshold (bytes) at every rung of the 802.11b ladder.

    The headline of the rate-adaptation extension: the break-even file
    size shrinks as the link slows, because every raw byte costs more
    airtime while the decompression cost is rate-independent.
    """
    return {
        rate: size_threshold_bytes(model_at_rate(rate, device), codec)
        for rate in LADDER_MBPS
    }


@dataclass(frozen=True)
class RateStepDecision:
    """Equation 6's verdict for one rate segment of a fault timeline."""

    at_s: float
    rate_mbps: float
    worthwhile: bool
    factor_threshold: float


def timeline_decisions(
    raw_bytes: float,
    compression_factor: float,
    faults,
    base_rate_mbps: float = 11.0,
    codec: str = "gzip",
    device=None,
) -> List[RateStepDecision]:
    """Re-evaluate Equation 6 at every rate step of a fault timeline.

    Returns one decision per rate segment (the initial rate first, then
    one per :class:`~repro.network.timeline.RateStep`), each carrying
    the worthwhileness verdict and the break-even factor at that rung.
    A mid-session rate drop can flip the verdict for a file that was
    not worth compressing at 11 Mb/s.
    """
    from repro.network.timeline import RateStep

    steps: List[Tuple[float, float]] = [(0.0, float(base_rate_mbps))]
    if faults is not None:
        for event in faults.events:
            if isinstance(event, RateStep):
                steps.append((event.at_s, event.rate_mbps))
    decisions = []
    for at_s, rate in steps:
        model = model_at_rate(rate, device)
        decisions.append(
            RateStepDecision(
                at_s=at_s,
                rate_mbps=rate,
                worthwhile=compression_worthwhile(
                    raw_bytes, compression_factor, model, codec
                ),
                factor_threshold=factor_threshold(raw_bytes, model, codec),
            )
        )
    return decisions
