"""Threshold conditions for energy-worthy compression (Equation 6).

The paper derives, by requiring the interleaved-compressed energy
(Equation 5) to undercut the plain-download energy:

    if s >  0.128 MB:  1.13/F < 1 - 0.00157/s
    if s <= 0.128 MB:  1.30/F < 1 - 0.00372/s

and, as F -> infinity, a file-size threshold of 0.00372 MB = 3900 bytes
below which compression never pays off.  This module provides both the
paper's literal conditions and the same thresholds re-derived from any
:class:`~repro.core.energy_model.EnergyModel` parameterization.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.core.energy_model import EnergyModel
from repro.errors import ModelError

#: Equation 6 literal constants.
PAPER_LARGE_FACTOR_NUMERATOR = 1.13
PAPER_LARGE_SIZE_TERM = 0.00157
PAPER_SMALL_FACTOR_NUMERATOR = 1.30
PAPER_SMALL_SIZE_TERM = 0.00372


def paper_condition(raw_bytes: float, compression_factor: float) -> bool:
    """The paper's literal Equation 6 test (True = compression saves)."""
    if compression_factor <= 0:
        raise ModelError("compression factor must be positive")
    s = units.bytes_to_mb(raw_bytes)
    if s <= 0:
        return False
    if s > units.BLOCK_SIZE_MB:
        return PAPER_LARGE_FACTOR_NUMERATOR / compression_factor < (
            1.0 - PAPER_LARGE_SIZE_TERM / s
        )
    return PAPER_SMALL_FACTOR_NUMERATOR / compression_factor < (
        1.0 - PAPER_SMALL_SIZE_TERM / s
    )


def compression_worthwhile(
    raw_bytes: float,
    compression_factor: float,
    model: Optional[EnergyModel] = None,
    codec: str = "gzip",
) -> bool:
    """Model-derived Equation 6: does interleaved compression save energy?

    With the default model this agrees with :func:`paper_condition`; with
    a different link or codec parameterization it adapts accordingly.
    """
    if model is None:
        return paper_condition(raw_bytes, compression_factor)
    if compression_factor <= 0:
        raise ModelError("compression factor must be positive")
    if raw_bytes <= 0:
        return False
    compressed = raw_bytes / compression_factor
    return model.interleaved_energy_j(
        raw_bytes, compressed, codec
    ) < model.download_energy_j(raw_bytes)


def factor_threshold(
    raw_bytes: float,
    model: Optional[EnergyModel] = None,
    codec: str = "gzip",
) -> float:
    """Minimum compression factor at which compression starts to pay.

    Returns ``inf`` when no factor can make compression worthwhile (files
    below the size threshold).
    """
    if raw_bytes <= 0:
        return float("inf")

    def worthwhile(f: float) -> bool:
        return compression_worthwhile(raw_bytes, f, model, codec)

    hi = 1e6
    if not worthwhile(hi):
        return float("inf")
    lo = 1.0
    if worthwhile(lo):
        return lo
    for _ in range(200):
        mid = (lo + hi) / 2
        if worthwhile(mid):
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2


def size_threshold_bytes(
    model: Optional[EnergyModel] = None, codec: str = "gzip"
) -> int:
    """File-size threshold below which no factor makes compression pay.

    The paper's value is 3900 bytes; the model-derived value is the
    smallest size for which an arbitrarily high factor still saves.
    """
    if model is None:
        return units.THRESHOLD_FILE_SIZE_BYTES
    huge_factor = 1e9

    def ever_worthwhile(n_bytes: float) -> bool:
        return compression_worthwhile(n_bytes, huge_factor, model, codec)

    lo, hi = 1.0, float(units.BYTES_PER_MB)
    if ever_worthwhile(lo):
        return 1
    if not ever_worthwhile(hi):
        raise ModelError("compression never worthwhile under this model")
    for _ in range(200):
        mid = (lo + hi) / 2
        if ever_worthwhile(mid):
            hi = mid
        else:
            lo = mid
    return int(round((lo + hi) / 2))
