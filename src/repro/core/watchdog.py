"""Session watchdogs: per-phase deadlines with graceful degradation.

A handheld cannot let one download occupy it forever: a link that died
mid-transfer, a decompression bomb chewing CPU, or a fault storm that
keeps re-fetching all deserve a bounded response.  The watchdog gives
each session phase its own deadline:

``receive``
    Wall time the transfer occupies the radio — receive/send airtime,
    idle gaps, proxy waits, and fault dead time (outages, reassociation,
    stalls, resume handshakes).  Trips when the link dies under you.

``decompress``
    CPU time spent in the codec (device-side compression counts too).
    Trips on pathological streams long before memory guards matter.

``recovery``
    Repair work: corrupt-block re-fetches, CRC verification, ARQ
    retransmissions and the fault-timeline overhead.  Trips on a fault
    storm that the retry budget alone would let run for minutes.

Both engines check the deadlines against the finished power timeline
(the simulated clock, not the host's), raising the typed
:class:`~repro.errors.WatchdogTimeout`.  :func:`run_guarded` adds the
degradation policy on top: after ``max_trips`` tripped attempts the
device abandons compression and falls back to a raw transfer, which has
no decompression phase left to trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.device.timeline import PowerTimeline
from repro.errors import ModelError, WatchdogTimeout

#: Tags whose wall time counts against each phase deadline.  Fault dead
#: time appears in both ``receive`` and ``recovery`` on purpose: the
#: receive deadline bounds how long the transfer occupies the device,
#: the recovery deadline bounds how much of that was spent repairing.
RECEIVE_TAGS: Tuple[str, ...] = (
    "recv", "send", "idle", "wait-compress",
    "outage", "reassoc", "stall", "resume",
)
DECOMPRESS_TAGS: Tuple[str, ...] = ("decompress", "compress")
RECOVERY_TAGS: Tuple[str, ...] = (
    "refetch", "refetch-fault", "verify", "retransmit", "retry-idle",
    "outage", "reassoc", "resume",
)

_PHASE_TAGS = {
    "receive": RECEIVE_TAGS,
    "decompress": DECOMPRESS_TAGS,
    "recovery": RECOVERY_TAGS,
}


@dataclass(frozen=True)
class WatchdogConfig:
    """Per-phase deadlines (seconds of simulated time; None disables)."""

    receive_s: Optional[float] = None
    decompress_s: Optional[float] = None
    recovery_s: Optional[float] = None
    #: Tripped attempts before :func:`run_guarded` degrades to raw.
    max_trips: int = 2

    def __post_init__(self) -> None:
        for name in ("receive_s", "decompress_s", "recovery_s"):
            value = getattr(self, name)
            if value is not None and not (math.isfinite(value) and value > 0):
                raise ModelError(
                    f"{name} must be finite and positive, got {value!r}"
                )
        if self.max_trips < 1:
            raise ModelError("max_trips must be at least 1")

    @classmethod
    def uniform(cls, deadline_s: float, max_trips: int = 2) -> "WatchdogConfig":
        """One deadline applied to every phase (the CLI's ``--watchdog-s``)."""
        return cls(
            receive_s=deadline_s,
            decompress_s=deadline_s,
            recovery_s=deadline_s,
            max_trips=max_trips,
        )

    @property
    def armed(self) -> bool:
        """Is any phase deadline set?"""
        return any(
            (self.receive_s, self.decompress_s, self.recovery_s)
        )

    def deadline_for(self, phase: str) -> Optional[float]:
        """The configured deadline for one phase (None when disarmed)."""
        try:
            return getattr(self, f"{phase.replace('-', '_')}_s")
        except AttributeError:
            raise ModelError(f"unknown watchdog phase {phase!r}") from None

    def check(self, phase: str, elapsed_s: float) -> None:
        """Raise :class:`WatchdogTimeout` if ``phase`` overran its deadline."""
        deadline = self.deadline_for(phase)
        if deadline is not None and elapsed_s > deadline:
            raise WatchdogTimeout(phase, elapsed_s, deadline)

    def check_timeline(self, timeline: PowerTimeline) -> None:
        """Check every armed phase against a finished power timeline."""
        if not self.armed:
            return
        for phase, tags in _PHASE_TAGS.items():
            self.check(phase, timeline.time_for(*tags))


class SessionWatchdog:
    """Trip bookkeeping across the attempts of one guarded session."""

    def __init__(self, config: WatchdogConfig) -> None:
        self.config = config
        self.timeouts: List[WatchdogTimeout] = []

    @property
    def trips(self) -> int:
        """How many attempts have tripped so far."""
        return len(self.timeouts)

    @property
    def exhausted(self) -> bool:
        """Has the session tripped enough to abandon compression?"""
        return self.trips >= self.config.max_trips

    def record(self, timeout: WatchdogTimeout) -> None:
        """Count one tripped attempt."""
        self.timeouts.append(timeout)


@dataclass(frozen=True)
class GuardedOutcome:
    """What :func:`run_guarded` delivered, and how hard it had to try."""

    result: "SessionResult"  # noqa: F821 - simulator type
    degraded_to_raw: bool
    trips: int
    timeouts: Tuple[WatchdogTimeout, ...]


def run_guarded(
    session,
    raw_bytes: int,
    compressed_bytes: int,
    codec: str = "gzip",
    interleave: bool = True,
    config: Optional[WatchdogConfig] = None,
) -> GuardedOutcome:
    """Run a compressed download under watchdog protection.

    ``session`` is either engine (it must expose ``precompressed`` /
    ``raw`` and a ``watchdog`` attribute).  Each tripped attempt counts
    toward ``config.max_trips``; once exhausted the device degrades to
    the raw transfer.  A raw transfer that *still* trips (the receive
    deadline is simply too tight for the file) propagates — there is
    nothing simpler left to degrade to.
    """
    config = config or getattr(session, "watchdog", None) or WatchdogConfig()
    previous = getattr(session, "watchdog", None)
    session.watchdog = config
    dog = SessionWatchdog(config)
    try:
        while not dog.exhausted:
            try:
                result = session.precompressed(
                    raw_bytes, compressed_bytes, codec, interleave=interleave
                )
                return GuardedOutcome(
                    result=result,
                    degraded_to_raw=False,
                    trips=dog.trips,
                    timeouts=tuple(dog.timeouts),
                )
            except WatchdogTimeout as exc:
                dog.record(exc)
        # Degrade: the raw path has no decompression phase to trip, and
        # no compressed framing for recovery to repair.
        result = session.raw(raw_bytes)
        return GuardedOutcome(
            result=result,
            degraded_to_raw=True,
            trips=dog.trips,
            timeouts=tuple(dog.timeouts),
        )
    finally:
        session.watchdog = previous


__all__ = [
    "RECEIVE_TAGS",
    "DECOMPRESS_TAGS",
    "RECOVERY_TAGS",
    "WatchdogConfig",
    "SessionWatchdog",
    "GuardedOutcome",
    "run_guarded",
]
