"""File-level selective compression (Section 4.3).

"We do not compress the file if the original size is less than 3900
bytes.  Note that if the original file is much larger than 3900 bytes,
only the compression-factor threshold matters."  The decision procedure:
check the size threshold, obtain (or estimate) the compression factor,
and apply Equation 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.compression.base import Codec
from repro.core import thresholds
from repro.core.energy_model import EnergyModel


@dataclass(frozen=True)
class SelectiveDecision:
    """Outcome of the selective-compression test for one file."""

    compress: bool
    reason: str
    raw_bytes: int
    compression_factor: Optional[float]
    #: Bytes that will actually cross the link.
    transfer_bytes: int
    #: Estimated energies under the active model, when one was consulted.
    plain_energy_j: Optional[float] = None
    compressed_energy_j: Optional[float] = None

    @property
    def estimated_saving_j(self) -> Optional[float]:
        """Estimated joules saved (None without a model)."""
        if self.plain_energy_j is None or self.compressed_energy_j is None:
            return None
        return self.plain_energy_j - self.compressed_energy_j


def decide_file(
    data: Optional[bytes] = None,
    raw_bytes: Optional[int] = None,
    compression_factor: Optional[float] = None,
    codec: Optional[Codec] = None,
    model: Optional[EnergyModel] = None,
    size_threshold: Optional[int] = None,
    loss_rate: float = 0.0,
    arq=None,
    corrupt_rate: float = 0.0,
    recovery=None,
) -> SelectiveDecision:
    """Decide whether compressing a file before download saves energy.

    Provide either ``data`` (the factor is measured by compressing with
    ``codec``) or ``raw_bytes`` + ``compression_factor`` (metadata-only
    decision).  ``model=None`` uses the paper's literal Equation 6.
    ``loss_rate`` switches to the loss-aware comparison: the size
    threshold is re-derived for that loss rate (it shrinks, since
    retransmissions tax every raw byte while decompression cost stays
    fixed), unless an explicit ``size_threshold`` pins it.
    ``corrupt_rate`` (a residual bit-error rate) does the opposite:
    recovery energy taxes only the compressed side, so the threshold
    grows and marginal files ship raw.
    """
    if size_threshold is None:
        if loss_rate > 0 or corrupt_rate > 0:
            size_threshold = thresholds.size_threshold_bytes(
                model, loss_rate=loss_rate, arq=arq,
                corrupt_rate=corrupt_rate, recovery=recovery,
            )
        else:
            size_threshold = units.THRESHOLD_FILE_SIZE_BYTES
    if data is not None:
        raw_bytes = len(data)
    if raw_bytes is None:
        raise ValueError("provide data or raw_bytes")

    if raw_bytes < size_threshold:
        return SelectiveDecision(
            compress=False,
            reason=f"file below the {size_threshold}-byte size threshold",
            raw_bytes=raw_bytes,
            compression_factor=compression_factor,
            transfer_bytes=raw_bytes,
        )

    compressed_size: Optional[int] = None
    if compression_factor is None:
        if data is None or codec is None:
            raise ValueError(
                "provide compression_factor, or data plus a codec to measure it"
            )
        result = codec.compress(data)
        compressed_size = result.compressed_size
        compression_factor = result.factor

    worthwhile = thresholds.compression_worthwhile(
        raw_bytes, compression_factor, model, loss_rate=loss_rate, arq=arq,
        corrupt_rate=corrupt_rate, recovery=recovery,
    )
    if compressed_size is None:
        compressed_size = int(round(raw_bytes / compression_factor))

    plain_e = comp_e = None
    if model is not None:
        plain_e = model.download_energy_j(raw_bytes)
        comp_e = model.interleaved_energy_j(raw_bytes, compressed_size)

    if not worthwhile:
        return SelectiveDecision(
            compress=False,
            reason=(
                f"factor {compression_factor:.2f} below the threshold for "
                f"{raw_bytes} bytes (Equation 6)"
            ),
            raw_bytes=raw_bytes,
            compression_factor=compression_factor,
            transfer_bytes=raw_bytes,
            plain_energy_j=plain_e,
            compressed_energy_j=comp_e,
        )
    return SelectiveDecision(
        compress=True,
        reason=f"factor {compression_factor:.2f} passes Equation 6",
        raw_bytes=raw_bytes,
        compression_factor=compression_factor,
        transfer_bytes=compressed_size,
        plain_energy_j=plain_e,
        compressed_energy_j=comp_e,
    )
