"""Checkpoint/resume accounting for disconnected transfers.

When an outage voids a transfer in flight, the device faces the
restart-vs-resume choice: a receiver without range requests re-downloads
from byte zero, while a range-capable receiver re-requests only the tail
past its last checkpoint — paying a small resume handshake (one request
round trip, plus any protocol bytes) instead of the whole prefix's
airtime.  The asymmetry grows with how late the outage hits: at 90 % of
a file, restart re-fetches nine times more data than resume.

:class:`ResumeConfig` is the policy object the fault-timeline planner
(:func:`repro.network.timeline.plan_transfer`) consults at every outage;
:func:`compare_restart_resume` is the closed-form comparison the
acceptance experiment and ``bench_rate_trajectory`` build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.errors import ModelError
from repro.network.timeline import DEFAULT_REASSOC_S, FaultTimeline, Outage


@dataclass(frozen=True)
class ResumeConfig:
    """Range-style checkpoint/resume policy.

    Attributes:
        checkpoint_bytes: acknowledgement granularity.  Progress is
            checkpointed every multiple of this; an outage rolls the
            transfer back to the last completed checkpoint, never
            further.  Defaults to the paper's 0.128 MB block, so resume
            granularity matches the verification/decompression unit.
        handshake_s: wall time of the resume negotiation (reconnect +
            HTTP-style range request round trip), spent at gap power.
        handshake_j: extra energy of the handshake on top of its idle
            draw (request bytes on the air); zero by default.
    """

    checkpoint_bytes: int = units.BLOCK_SIZE_BYTES
    handshake_s: float = 0.05
    handshake_j: float = 0.0

    def __post_init__(self) -> None:
        if not (
            isinstance(self.checkpoint_bytes, int) and self.checkpoint_bytes > 0
        ):
            raise ModelError(
                f"checkpoint_bytes must be a positive int, "
                f"got {self.checkpoint_bytes!r}"
            )
        for name in ("handshake_s", "handshake_j"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value >= 0):
                raise ModelError(
                    f"{name} must be finite and non-negative, got {value!r}"
                )

    def restart_point(self, progress_bytes: float) -> float:
        """The byte offset a resume restarts from: the last checkpoint.

        Never exceeds ``progress_bytes`` — resume must not re-fetch
        bytes already acknowledged (the property tests pin this).
        """
        if progress_bytes < 0:
            raise ModelError("progress must be non-negative")
        return self.checkpoint_bytes * math.floor(
            progress_bytes / self.checkpoint_bytes
        )


@dataclass(frozen=True)
class RestartResumeComparison:
    """Side-by-side energy accounting of the two outage responses."""

    resume_result: "SessionResult"  # noqa: F821 - simulator type
    restart_result: "SessionResult"  # noqa: F821

    @property
    def resume_overhead_j(self) -> float:
        """Recovery energy under the checkpoint/resume policy."""
        return self.resume_result.fault_overhead_j

    @property
    def restart_overhead_j(self) -> float:
        """Recovery energy under the restart-from-zero receiver."""
        return self.restart_result.fault_overhead_j

    @property
    def saving_j(self) -> float:
        """Joules resume saves over restart (positive when resume wins)."""
        return self.restart_overhead_j - self.resume_overhead_j

    @property
    def saving_s(self) -> float:
        """Wall time resume saves over restart."""
        return self.restart_result.time_s - self.resume_result.time_s

    @property
    def resume_wins(self) -> bool:
        """True when resume spends fewer recovery joules than restart."""
        return self.saving_j > 0


def compare_restart_resume(
    raw_bytes: int,
    compressed_bytes: Optional[int] = None,
    codec: str = "gzip",
    model=None,
    outage_at_fraction: float = 0.9,
    outage_s: float = 2.0,
    reassoc_s: float = DEFAULT_REASSOC_S,
    resume: Optional[ResumeConfig] = None,
    interleave: bool = True,
) -> RestartResumeComparison:
    """One outage at a transfer fraction: resume vs restart, closed form.

    Builds the disconnect-at-``outage_at_fraction`` scenario of the
    acceptance criteria and runs it twice through the analytic engine —
    once with the checkpoint/resume policy, once with the no-range
    restart receiver — returning both results for comparison.
    """
    from repro.core.energy_model import EnergyModel
    from repro.simulator.analytic import AnalyticSession

    if not 0 < outage_at_fraction < 1:
        raise ModelError("outage fraction must be in (0, 1)")
    model = model or EnergyModel()
    resume = resume or ResumeConfig()
    transfer = compressed_bytes if compressed_bytes is not None else raw_bytes
    outage_at = outage_at_fraction * model.download_time_s(transfer)
    faults = FaultTimeline.scripted(Outage(outage_at, outage_s, reassoc_s))

    def run(policy: Optional[ResumeConfig]):
        session = AnalyticSession(model, faults=faults, resume=policy)
        if compressed_bytes is None:
            return session.raw(raw_bytes)
        return session.precompressed(
            raw_bytes, compressed_bytes, codec, interleave=interleave
        )

    return RestartResumeComparison(
        resume_result=run(resume),
        restart_result=run(None),
    )


__all__ = [
    "ResumeConfig",
    "RestartResumeComparison",
    "compare_restart_resume",
]
