"""Interleaving decompression with packet reception (Section 4.1, Figure 4).

The receiving process runs in the kernel interrupt handler; a user-level
process decompresses block i while block i+1 downloads.  This module
builds the explicit schedule: when each block arrives, when its
decompression starts and ends, and where CPU-idle windows remain.  Two
regimes fall out, matching Figure 4:

(a) decompression faster than downloading — idle periods remain;
(b) decompression slower — the CPU saturates and decompression work
    spills past the end of the download.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.device.cpu import DeviceCpuModel, IPAQ_CPU
from repro.network.link import ReceivePlan


@dataclass(frozen=True)
class BlockSchedule:
    """Timing of one block through the interleaved pipeline."""

    index: int
    arrive_s: float
    decompress_start_s: float
    decompress_end_s: float

    @property
    def queue_delay_s(self) -> float:
        """Time the block waited for the decompressor after arriving."""
        return self.decompress_start_s - self.arrive_s


@dataclass(frozen=True)
class InterleavePlan:
    """Full schedule of an interleaved download+decompress session."""

    blocks: List[BlockSchedule]
    receive_end_s: float
    finish_s: float
    #: CPU-idle time that remains unfilled (the paper's ti' - td residue
    #: plus the first block's ti'').
    residual_idle_s: float
    #: Decompression work done after the link went quiet.
    overflow_s: float
    #: Figure 4(b) vs 4(a): True when total decompression work exceeds the
    #: idle capacity available after the first block (the paper's
    #: td > ti' branch condition).
    saturated: bool = False


def plan_interleave(
    receive_plan: ReceivePlan,
    codec: str = "gzip",
    cpu: Optional[DeviceCpuModel] = None,
) -> InterleavePlan:
    """Schedule decompression of each block into the receive gaps.

    Decompression of block i may start once block i is fully received and
    the decompressor is free; while block i+1 is being received the CPU
    alternates between servicing packets and decompressing, which the
    schedule models at block granularity: within a receive interval, only
    its idle (gap) share is available as decompression capacity.
    """
    cpu = cpu or IPAQ_CPU
    blocks = receive_plan.blocks
    schedules: List[BlockSchedule] = []
    if not blocks:
        return InterleavePlan(
            blocks=[],
            receive_end_s=0.0,
            finish_s=0.0,
            residual_idle_s=0.0,
            overflow_s=0.0,
        )

    # Arrival times are cumulative receive times.
    arrivals: List[float] = []
    t = 0.0
    for block in blocks:
        t += block.total_s
        arrivals.append(t)
    receive_end = t

    # Decompression capacity: between arrival of block i and arrival of
    # block j > i, the CPU has the idle share of those receive intervals.
    # After the link quiesces, capacity is wall-clock time.  We track the
    # decompressor's progress in "work seconds" and convert to wall time.
    idle_rate = receive_plan.link.idle_fraction

    decompressor_free_s = 0.0
    unfilled_idle_s = arrivals[0] * idle_rate  # ti'': first block's gaps
    overflow_s = 0.0
    block_cost = cpu.decompress_cost(codec)
    for i, block in enumerate(blocks):
        # The constant term is per-stream startup, charged once.
        work = block_cost.marginal_seconds(block.raw_bytes, block.compressed_bytes)
        if i == 0:
            work += block_cost.constant_s
        start = max(arrivals[i], decompressor_free_s)
        # Idle wasted waiting for this block's arrival (decompressor
        # starved) — only idle capacity between free and start counts.
        if start > decompressor_free_s and i > 0:
            window = start - max(decompressor_free_s, arrivals[0])
            if window > 0:
                unfilled_idle_s += window * idle_rate
        # Convert work seconds to wall seconds: while the link is active
        # only the idle fraction of wall time is available for the CPU.
        end = _advance(start, work, receive_end, idle_rate)
        schedules.append(
            BlockSchedule(
                index=i,
                arrive_s=arrivals[i],
                decompress_start_s=start,
                decompress_end_s=end,
            )
        )
        decompressor_free_s = end
    finish = max(receive_end, decompressor_free_s)
    overflow_s = max(0.0, decompressor_free_s - receive_end)
    cost = cpu.decompress_cost(codec)
    total_work = cost.constant_s + sum(
        cost.marginal_seconds(b.raw_bytes, b.compressed_bytes) for b in blocks
    )
    tail_capacity = (receive_end - arrivals[0]) * idle_rate
    return InterleavePlan(
        blocks=schedules,
        receive_end_s=receive_end,
        finish_s=finish,
        residual_idle_s=unfilled_idle_s,
        overflow_s=overflow_s,
        saturated=total_work > tail_capacity,
    )


def _advance(start: float, work_s: float, receive_end: float, idle_rate: float) -> float:
    """Wall-clock end time for ``work_s`` of CPU work starting at ``start``.

    While receiving, only the ``idle_rate`` share of wall time is available
    (packet servicing interrupts the decompressor); afterwards the CPU is
    fully available.
    """
    if work_s <= 0:
        return start
    if start >= receive_end or idle_rate <= 0:
        if start >= receive_end:
            return start + work_s
        # No idle capacity while receiving: all work happens after.
        return receive_end + work_s
    capacity_during_receive = (receive_end - start) * idle_rate
    if work_s <= capacity_during_receive:
        return start + work_s / idle_rate
    return receive_end + (work_s - capacity_during_receive)
