"""Seeded heterogeneous fleet synthesis: a pure function of (seed, spec).

A population is millions of handhelds described statistically: device
classes (link rung, battery capacity, idle policy — drawn from the
:mod:`repro.device` power tables), workload mixes (file size,
compression factor, codec, request rate), and an AP association drawn
from a seeded placement model with Zipf-like AP popularity (real
deployments concentrate stations on few APs; ``ap_skew=0`` is uniform).

Determinism is the contract: :func:`synthesize` draws every assignment
from one ``numpy.random.Generator(PCG64(seed))``, so the same
``(seed, spec)`` always produces byte-identical arrays — the property
tests pin this via :meth:`Population.digest`, and the campaign/CLI
layers inherit byte-stable reruns from it.

Scale comes from *cohort reduction*: devices are exchangeable within a
(device class, workload, stations-on-my-AP) triple, so a million-device
population collapses to a few hundred cohorts with counts, and the
aggregator (:mod:`repro.fleet.aggregate`) evaluates closed forms once
per cohort instead of once per device.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the base image
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.errors import ModelError
from repro.network.wlan import LADDER_MBPS

#: Default stations per AP when a spec gives a device count but no AP
#: count (a loaded-but-sane office/venue density).
DEFAULT_DEVICES_PER_AP = 25.0


@dataclass(frozen=True)
class DeviceClass:
    """One device archetype: link rung, battery, and idle policy.

    ``link_mbps`` must sit on the 802.11b ladder so the class maps onto
    a calibrated :class:`~repro.core.energy_model.EnergyModel`;
    ``power_save_idle`` selects the radio state the device idles in
    *between* requests (110 mA power-save vs the 310 mA active idle).
    """

    name: str
    weight: float
    link_mbps: float = 11.0
    capacity_mah: float = 950.0
    power_save_idle: bool = False

    def validate(self) -> None:
        """Reject weights/capacities/rates a synthesis cannot use."""
        if self.weight < 0:
            raise ModelError(f"device class {self.name!r}: negative weight")
        if self.capacity_mah <= 0:
            raise ModelError(f"device class {self.name!r}: bad capacity")
        if float(self.link_mbps) not in LADDER_MBPS:
            raise ModelError(
                f"device class {self.name!r}: rate {self.link_mbps!r} is "
                f"not on the 802.11b ladder {LADDER_MBPS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (campaign specs embed these)."""
        return {
            "name": self.name,
            "weight": self.weight,
            "link_mbps": self.link_mbps,
            "capacity_mah": self.capacity_mah,
            "power_save_idle": self.power_save_idle,
        }


@dataclass(frozen=True)
class Workload:
    """One traffic archetype: what a device downloads and how often."""

    name: str
    weight: float
    size_mb: float
    factor: float
    codec: str = "gzip"
    requests_per_hour: float = 4.0

    def validate(self) -> None:
        """Reject shapes the session closed forms cannot evaluate."""
        if self.weight < 0:
            raise ModelError(f"workload {self.name!r}: negative weight")
        if self.size_mb <= 0:
            raise ModelError(f"workload {self.name!r}: size must be positive")
        if self.factor <= 0:
            raise ModelError(f"workload {self.name!r}: factor must be positive")
        if self.requests_per_hour < 0:
            raise ModelError(f"workload {self.name!r}: negative request rate")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (campaign specs embed these)."""
        return {
            "name": self.name,
            "weight": self.weight,
            "size_mb": self.size_mb,
            "factor": self.factor,
            "codec": self.codec,
            "requests_per_hour": self.requests_per_hour,
        }


#: Named device-class mixes the CLI/preset layers select by name.
DEVICE_MIXES: Dict[str, Tuple[DeviceClass, ...]] = {
    "balanced": (
        DeviceClass("pda", 0.5, link_mbps=11.0, capacity_mah=950.0),
        DeviceClass("phone", 0.3, link_mbps=5.5, capacity_mah=700.0,
                    power_save_idle=True),
        DeviceClass("tablet", 0.15, link_mbps=11.0, capacity_mah=1600.0),
        DeviceClass("edge", 0.05, link_mbps=2.0, capacity_mah=950.0),
    ),
    "pda-heavy": (
        DeviceClass("pda", 0.8, link_mbps=11.0, capacity_mah=950.0),
        DeviceClass("edge", 0.2, link_mbps=2.0, capacity_mah=950.0),
    ),
    "media-heavy": (
        DeviceClass("tablet", 0.6, link_mbps=11.0, capacity_mah=1600.0),
        DeviceClass("phone", 0.4, link_mbps=5.5, capacity_mah=700.0,
                    power_save_idle=True),
    ),
}

#: Named workload mixes, paired with the device mixes above.
WORKLOAD_MIXES: Dict[str, Tuple[Workload, ...]] = {
    "balanced": (
        Workload("web", 0.45, size_mb=0.128, factor=2.9,
                 requests_per_hour=30.0),
        Workload("text", 0.3, size_mb=1.0, factor=3.8,
                 requests_per_hour=12.0),
        Workload("media", 0.2, size_mb=4.0, factor=1.05,
                 requests_per_hour=2.0),
        Workload("bulk", 0.05, size_mb=8.0, factor=4.3, codec="bzip2",
                 requests_per_hour=0.5),
    ),
    "pda-heavy": (
        Workload("web", 0.6, size_mb=0.128, factor=2.9,
                 requests_per_hour=30.0),
        Workload("text", 0.4, size_mb=1.0, factor=3.8,
                 requests_per_hour=12.0),
    ),
    "media-heavy": (
        Workload("media", 0.6, size_mb=4.0, factor=1.05,
                 requests_per_hour=4.0),
        Workload("text", 0.25, size_mb=1.0, factor=3.8,
                 requests_per_hour=12.0),
        Workload("bulk", 0.15, size_mb=8.0, factor=4.3, codec="bzip2",
                 requests_per_hour=1.0),
    ),
}

#: Mix names the spec layer accepts.
MIX_NAMES = tuple(sorted(DEVICE_MIXES))


@dataclass(frozen=True)
class PopulationSpec:
    """Everything a synthesis needs besides the seed."""

    devices: int
    aps: int
    device_classes: Tuple[DeviceClass, ...]
    workloads: Tuple[Workload, ...]
    #: Zipf-like exponent for AP popularity: station placement weight
    #: of AP ranked ``r`` is ``r**-ap_skew`` (0 = uniform).
    ap_skew: float = 1.0
    #: The mix name this spec came from, if any (display only).
    mix: str = ""

    def validate(self) -> None:
        """Reject specs a synthesis cannot realize."""
        if self.devices <= 0:
            raise ModelError("population needs at least one device")
        if self.aps <= 0:
            raise ModelError("population needs at least one AP")
        if not self.device_classes:
            raise ModelError("population needs at least one device class")
        if not self.workloads:
            raise ModelError("population needs at least one workload")
        for cls in self.device_classes:
            cls.validate()
        for wl in self.workloads:
            wl.validate()
        if sum(c.weight for c in self.device_classes) <= 0:
            raise ModelError("device class weights must sum to > 0")
        if sum(w.weight for w in self.workloads) <= 0:
            raise ModelError("workload weights must sum to > 0")
        if self.ap_skew < 0:
            raise ModelError("ap_skew must be non-negative")

    @classmethod
    def from_mix(
        cls,
        devices: int,
        mix: str = "balanced",
        aps: Optional[int] = None,
        devices_per_ap: float = DEFAULT_DEVICES_PER_AP,
        ap_skew: float = 1.0,
    ) -> "PopulationSpec":
        """Build a spec from a named mix and an AP density.

        ``aps`` wins when given; otherwise the AP count is
        ``ceil(devices / devices_per_ap)``.
        """
        if mix not in DEVICE_MIXES:
            raise ModelError(
                f"unknown mix {mix!r}; known: {', '.join(MIX_NAMES)}"
            )
        if aps is None:
            if devices_per_ap <= 0:
                raise ModelError("devices_per_ap must be positive")
            aps = max(1, -(-int(devices) // max(1, int(devices_per_ap))))
        spec = cls(
            devices=int(devices),
            aps=int(aps),
            device_classes=DEVICE_MIXES[mix],
            workloads=WORKLOAD_MIXES[mix],
            ap_skew=float(ap_skew),
            mix=mix,
        )
        spec.validate()
        return spec

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "PopulationSpec":
        """Build a spec from a JSONable campaign-cell parameter dict.

        Recognized keys: ``devices`` (required), ``mix`` (named mix,
        default ``balanced``), ``aps`` or ``devices_per_ap``, and
        ``ap_skew``.  Explicit ``device_classes``/``workloads`` lists
        of dicts override the named mix.
        """
        if "devices" not in params:
            raise ModelError("fleet cell needs a 'devices' parameter")
        devices = int(params["devices"])
        mix = params.get("mix", "balanced")
        aps = params.get("aps")
        spec = cls.from_mix(
            devices,
            mix=mix,
            aps=int(aps) if aps is not None else None,
            devices_per_ap=float(
                params.get("devices_per_ap", DEFAULT_DEVICES_PER_AP)
            ),
            ap_skew=float(params.get("ap_skew", 1.0)),
        )
        classes = params.get("device_classes")
        workloads = params.get("workloads")
        if classes or workloads:
            spec = cls(
                devices=spec.devices,
                aps=spec.aps,
                device_classes=tuple(
                    DeviceClass(**c) for c in classes
                ) if classes else spec.device_classes,
                workloads=tuple(
                    Workload(**w) for w in workloads
                ) if workloads else spec.workloads,
                ap_skew=spec.ap_skew,
                mix=spec.mix if not (classes or workloads) else "custom",
            )
            spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the CLI echoes it into reports)."""
        return {
            "devices": self.devices,
            "aps": self.aps,
            "mix": self.mix,
            "ap_skew": self.ap_skew,
            "device_classes": [c.to_dict() for c in self.device_classes],
            "workloads": [w.to_dict() for w in self.workloads],
        }


@dataclass(frozen=True)
class Cohorts:
    """The reduced population: one row per exchangeable device group.

    Parallel arrays: ``class_idx``/``workload_idx`` index into the
    spec's tuples, ``stations`` is the station count on the cohort's AP
    (contenders + 1), ``count`` is how many devices share the row.
    """

    class_idx: Any
    workload_idx: Any
    stations: Any
    count: Any

    def __len__(self) -> int:
        return int(len(self.count))


@dataclass
class Population:
    """One synthesized fleet: per-device assignments plus AP loads."""

    spec: PopulationSpec
    seed: int
    #: Per-device device-class index (int64).
    class_idx: Any = field(repr=False, default=None)
    #: Per-device workload index (int64).
    workload_idx: Any = field(repr=False, default=None)
    #: Per-device AP index (int64).
    ap_idx: Any = field(repr=False, default=None)
    #: Per-AP station counts (int64, length ``spec.aps``).
    stations_per_ap: Any = field(repr=False, default=None)

    def cohorts(self) -> Cohorts:
        """Collapse the fleet to (class, workload, AP-load) cohorts.

        Devices sharing all three coordinates are exchangeable under
        the closed forms, so a million devices reduce to a few hundred
        rows — the whole reason fleet evaluation is O(cohorts), not
        O(devices).
        """
        stations = self.stations_per_ap[self.ap_idx]
        n_w = len(self.spec.workloads)
        smax = int(stations.max()) if len(stations) else 0
        key = (self.class_idx * n_w + self.workload_idx) * (smax + 1) + stations
        uniq, counts = np.unique(key, return_counts=True)
        st = uniq % (smax + 1)
        cw = uniq // (smax + 1)
        return Cohorts(
            class_idx=cw // n_w,
            workload_idx=cw % n_w,
            stations=st,
            count=counts,
        )

    def digest(self) -> str:
        """SHA-256 over the synthesis arrays: the determinism pin.

        Two populations with equal digests are byte-identical device
        for device (dtypes normalized to little-endian int64).
        """
        h = hashlib.sha256()
        for arr in (self.class_idx, self.workload_idx, self.ap_idx,
                    self.stations_per_ap):
            h.update(np.ascontiguousarray(arr, dtype="<i8").tobytes())
        return h.hexdigest()


def _probabilities(weights: List[float]) -> Any:
    """Normalized float64 probability vector for ``Generator.choice``."""
    w = np.asarray(weights, dtype=np.float64)
    return w / w.sum()


def synthesize(spec: PopulationSpec, seed: int = 0) -> Population:
    """Draw one fleet from the spec: pure in ``(seed, spec)``.

    All randomness flows from a single ``PCG64`` stream in a fixed draw
    order (classes, then workloads, then AP association), so the result
    is reproducible bit for bit at a given seed — the foundation every
    byte-identity gate above this layer stands on.
    """
    if not HAVE_NUMPY:
        raise ModelError("population synthesis requires numpy")
    spec.validate()
    rng = np.random.Generator(np.random.PCG64(int(seed)))
    n = spec.devices
    class_idx = rng.choice(
        len(spec.device_classes), size=n,
        p=_probabilities([c.weight for c in spec.device_classes]),
    ).astype(np.int64)
    workload_idx = rng.choice(
        len(spec.workloads), size=n,
        p=_probabilities([w.weight for w in spec.workloads]),
    ).astype(np.int64)
    ranks = np.arange(1, spec.aps + 1, dtype=np.float64)
    ap_weights = ranks ** -float(spec.ap_skew)
    ap_idx = rng.choice(
        spec.aps, size=n, p=ap_weights / ap_weights.sum()
    ).astype(np.int64)
    stations = np.bincount(ap_idx, minlength=spec.aps).astype(np.int64)
    return Population(
        spec=spec,
        seed=int(seed),
        class_idx=class_idx,
        workload_idx=workload_idx,
        ap_idx=ap_idx,
        stations_per_ap=stations,
    )


__all__ = [
    "Cohorts",
    "DEFAULT_DEVICES_PER_AP",
    "DEVICE_MIXES",
    "DeviceClass",
    "HAVE_NUMPY",
    "MIX_NAMES",
    "Population",
    "PopulationSpec",
    "WORKLOAD_MIXES",
    "Workload",
    "synthesize",
]
