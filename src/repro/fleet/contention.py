"""Analytic WLAN contention: N stations behind one AP, in closed form.

The DES multiclient simulation (:mod:`repro.simulator.multiclient`)
resolves contention by replaying every request through a FIFO link
resource — exact, but linear in the fleet size.  Following Agrawal et
al. ("Analytical Models for Energy Consumption in Infrastructure WLAN
STAs Carrying TCP Traffic", PAPERS.md), the saturated single-AP case
has closed forms: with ``n`` stations each pulling the same download,
every station owns ``1/n`` of the medium, so its long-run throughput is
the link rate over ``n`` (scaled by a MAC efficiency term), its queue
wait grows linearly in ``n``, and the energy it burns *waiting* — at
idle power, for other stations' airtime — dominates fleet energy long
before its own radio does.

The model here is the fluid limit of the DES's FIFO service discipline:
``n`` synchronized stations, one link slot, service time ``T`` per
session.  Station ``k`` waits ``k*T``, so the mean wait is
``(n-1)/2 * T``, the makespan is ``n*T``, and the fleet-wide waiting
energy is ``p_idle * T * n*(n-1)/2``.  At the default settings these
forms agree with the DES *exactly* (same arithmetic, different
association), which is what the pinned spot-check gate verifies;
``collision_overhead`` optionally adds an Agrawal-style per-contender
MAC efficiency loss the DES does not model (``0`` keeps the fluid
limit).

Every method accepts scalars or numpy arrays for ``n`` and the session
quantities — the arithmetic is plain ``+ - * /`` so it broadcasts, and
the cohort aggregator (:mod:`repro.fleet.aggregate`) evaluates whole
populations through these forms in a handful of array ops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.energy_model import EnergyModel
from repro.errors import ModelError

#: Relative disagreement allowed between the analytic layer and the DES
#: on every spot-checked small-N configuration (the CI gate's pin).
DES_SPOT_TOLERANCE = 0.05

#: Station counts the DES spot check samples (small N: the DES is
#: linear in N, so the gate stays cheap).
SPOT_CHECK_NS = (1, 2, 4, 8)

#: (size_mb, factor) download shapes the spot check samples: a small
#: barely-compressible file, the canonical 1 MB text page, and a large
#: well-compressed bulk transfer.
SPOT_CHECK_SHAPES = ((0.128, 1.1), (1.0, 3.8), (4.0, 4.3))

#: Strategies the spot check forces fleet-wide.
SPOT_CHECK_STRATEGIES = ("raw", "compressed")


class ContentionModel:
    """Closed-form contention for ``n`` stations sharing one AP.

    ``collision_overhead`` is the per-contender MAC efficiency loss:
    ``efficiency(n) = 1 / (1 + collision_overhead*(n-1))``.  The
    default ``0.0`` is the fluid limit of the DES's FIFO link (perfect
    scheduling, no collision tax), which is what the spot-check gate
    validates; Agrawal-style backoff/collision overhead is a knob on
    top, not a change of model shape.
    """

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        collision_overhead: float = 0.0,
    ) -> None:
        if collision_overhead < 0:
            raise ModelError("collision overhead must be non-negative")
        self.model = model or EnergyModel()
        self.collision_overhead = collision_overhead

    # -- medium shares -------------------------------------------------------

    def efficiency(self, n):
        """MAC efficiency at ``n`` stations (1.0 at n=1 or no overhead)."""
        return 1.0 / (1.0 + self.collision_overhead * (n - 1.0))

    def airtime_fraction(self, n):
        """Share of the busy medium one station's own transfer owns."""
        return 1.0 / n

    def idle_fraction(self, n):
        """Share of a station's mean session latency spent waiting.

        Mean wait over mean latency: ``(n-1)/2 * T`` over
        ``(n+1)/2 * T`` is ``(n-1)/(n+1)`` — 0 at ``n=1``, strictly
        increasing, bounded below 1.  Independent of the session time,
        so it is a pure function of the station count.
        """
        return (n - 1.0) / (n + 1.0)

    # -- per-station service -------------------------------------------------

    def service_time_s(self, session_time_s, n):
        """Link occupancy of one session at ``n`` stations.

        The single-device session wall time stretched by the MAC
        efficiency loss; at the default overhead this is the session
        time unchanged (dividing by 1.0 is a bitwise no-op, which is
        what keeps :class:`~repro.core.fleet_advisor.FleetAdvisor`'s
        delegated answers bit-identical).
        """
        return session_time_s / self.efficiency(n)

    def per_sta_throughput_mb_s(self, transfer_bytes, n, session_time_s=None):
        """Long-run per-station goodput: payload over ``n`` service times.

        With ``session_time_s`` omitted the transfer is assumed to
        occupy the link at the model's effective rate, so the result
        degenerates to ``rate * efficiency(n) / n`` — non-increasing in
        ``n``, equal to the single-device rate at ``n=1``.
        """
        if session_time_s is None:
            session_time_s = (
                units.bytes_to_mb(transfer_bytes)
                / self.model.params.rate_mb_per_s
            )
        busy = n * self.service_time_s(session_time_s, n)
        return units.bytes_to_mb(transfer_bytes) / busy

    def mean_wait_s(self, session_time_s, n):
        """Mean queue wait per station: ``(n-1)/2`` service times."""
        return (n - 1.0) / 2.0 * self.service_time_s(session_time_s, n)

    def makespan_s(self, session_time_s, n):
        """When the last of ``n`` synchronized stations finishes."""
        return n * self.service_time_s(session_time_s, n)

    # -- energy --------------------------------------------------------------

    def per_sta_energy_j(self, session_energy_j, session_time_s, n):
        """Mean per-station energy: own session plus queue wait at idle.

        The DES charges each waiting station the device idle power for
        its time in the FIFO queue; the mean over stations is the mean
        wait times that power.
        """
        idle = self.model.device.idle_power_w
        return session_energy_j + self.mean_wait_s(session_time_s, n) * idle

    def fleet_energy_j(self, session_energy_j, session_time_s, n):
        """Total energy of ``n`` stations: sessions plus waiting.

        Station ``k`` (0-based) waits ``k`` service times, so the
        waiting term sums to ``p_idle * T * n*(n-1)/2`` — the same sum
        the DES accumulates request by request.
        """
        idle = self.model.device.idle_power_w
        t = self.service_time_s(session_time_s, n)
        return n * session_energy_j + idle * t * (n * (n - 1.0) / 2.0)

    # -- the FleetAdvisor decision form --------------------------------------

    def fleet_cost_j(self, raw_bytes, transfer_bytes, contenders):
        """Device session energy plus contender waiting energy.

        The decision form :class:`~repro.core.fleet_advisor.FleetAdvisor`
        delegates to: the device's own closed-form session energy
        (Equation 1 for a raw transfer, Equation 3 interleaved
        otherwise) plus ``contenders`` stations idling for the
        transfer's link occupancy.  Decompression overflow happens
        off-air and does not hold the link.  At the default overhead
        the arithmetic is the advisor's original expression unchanged.
        """
        if transfer_bytes == raw_bytes:
            device = self.model.download_energy_j(raw_bytes)
        else:
            device = self.model.interleaved_energy_j(raw_bytes, transfer_bytes)
        link_time = (
            units.bytes_to_mb(transfer_bytes) / self.model.params.rate_mb_per_s
        )
        if self.collision_overhead:
            link_time = link_time / self.efficiency(contenders + 1.0)
        return device + contenders * link_time * self.model.device.idle_power_w


# -- DES validation ----------------------------------------------------------


def _analytic_session(model: EnergyModel, size_mb: float, factor: float,
                      strategy: str):
    """(energy_j, time_s) of one single-device session, closed form."""
    from repro.simulator.analytic import AnalyticSession

    session = AnalyticSession(model)
    raw = int(size_mb * units.BYTES_PER_MB)
    if strategy == "raw":
        result = session.raw(raw)
    elif strategy == "compressed":
        result = session.precompressed(raw, int(raw / factor), interleave=True)
    else:
        raise ModelError(f"unknown spot-check strategy {strategy!r}")
    return result.energy_j, result.time_s


def _rel_err(analytic: float, des: float) -> float:
    """Relative disagreement, absolute when the DES value is ~0."""
    if abs(des) < 1e-12:
        return abs(analytic - des)
    return abs(analytic - des) / abs(des)


def spot_check_against_des(
    contention: Optional[ContentionModel] = None,
    ns: Sequence[int] = SPOT_CHECK_NS,
    shapes: Sequence[Tuple[float, float]] = SPOT_CHECK_SHAPES,
    strategies: Sequence[str] = SPOT_CHECK_STRATEGIES,
) -> List[Dict[str, float]]:
    """Compare the closed forms against DES runs on small-N configs.

    For every sampled ``(n, size, factor, strategy)`` the multiclient
    DES replays ``n`` synchronized requests through the FIFO link and
    the analytic layer predicts the same three aggregates from one
    single-device session.  Returns one row per configuration with the
    analytic/DES values and their relative errors (``err_energy``,
    ``err_wait``, ``err_makespan``) — :func:`assert_des_agreement`
    turns the worst row into a pass/fail gate.
    """
    from repro.simulator.multiclient import MultiClientSimulation, Request

    contention = contention or ContentionModel()
    model = contention.model
    rows: List[Dict[str, float]] = []
    for size_mb, factor in shapes:
        raw = int(size_mb * units.BYTES_PER_MB)
        for strategy in strategies:
            energy, time_s = _analytic_session(model, size_mb, factor, strategy)
            for n in ns:
                sim = MultiClientSimulation(model)
                report = sim.run([
                    Request(
                        client=f"c{i}", name=f"f{i}", raw_bytes=raw,
                        factor=factor, arrival_s=0.0, strategy=strategy,
                    )
                    for i in range(n)
                ])
                a_energy = contention.fleet_energy_j(energy, time_s, float(n))
                a_wait = contention.mean_wait_s(time_s, float(n))
                a_makespan = contention.makespan_s(time_s, float(n))
                rows.append({
                    "n": float(n),
                    "size_mb": size_mb,
                    "factor": factor,
                    "strategy": strategy,
                    "analytic_energy_j": a_energy,
                    "des_energy_j": report.total_energy_j,
                    "err_energy": _rel_err(a_energy, report.total_energy_j),
                    "analytic_wait_s": a_wait,
                    "des_wait_s": report.mean_wait_s,
                    "err_wait": _rel_err(a_wait, report.mean_wait_s),
                    "analytic_makespan_s": a_makespan,
                    "des_makespan_s": report.makespan_s,
                    "err_makespan": _rel_err(a_makespan, report.makespan_s),
                })
    return rows


def worst_spot_error(rows: Sequence[Dict[str, float]]) -> float:
    """The largest relative error across every row and metric."""
    worst = 0.0
    for row in rows:
        for key in ("err_energy", "err_wait", "err_makespan"):
            worst = max(worst, row[key])
    return worst


def assert_des_agreement(
    contention: Optional[ContentionModel] = None,
    tolerance: float = DES_SPOT_TOLERANCE,
    **kwargs,
) -> List[Dict[str, float]]:
    """The pinned DES gate: raise if any spot check exceeds ``tolerance``.

    Returns the spot-check rows on success so callers can report them.
    """
    rows = spot_check_against_des(contention, **kwargs)
    for row in rows:
        for key in ("err_energy", "err_wait", "err_makespan"):
            if row[key] > tolerance:
                raise ModelError(
                    f"analytic contention disagrees with DES beyond "
                    f"{tolerance:.0%}: {key}={row[key]:.3%} at "
                    f"n={row['n']:.0f} size={row['size_mb']} "
                    f"factor={row['factor']} strategy={row['strategy']}"
                )
    return rows


__all__ = [
    "ContentionModel",
    "DES_SPOT_TOLERANCE",
    "SPOT_CHECK_NS",
    "SPOT_CHECK_SHAPES",
    "SPOT_CHECK_STRATEGIES",
    "assert_des_agreement",
    "spot_check_against_des",
    "worst_spot_error",
]
