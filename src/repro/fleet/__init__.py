"""Population-scale fleet simulation: millions of handhelds, statistically.

The paper measures one handheld on an idle WLAN; this package scales
the compression-energy question to populations of millions without a
million DES runs.  Three layers:

- :mod:`repro.fleet.contention` — closed-form WLAN contention after
  Agrawal et al. (per-STA throughput, airtime/idle fractions, per-STA
  energy as functions of the station count), validated against
  :class:`~repro.simulator.multiclient.MultiClientSimulation` DES
  spot-checks under a pinned tolerance gate;
- :mod:`repro.fleet.population` — seeded heterogeneous fleet synthesis
  (device classes, battery capacities, workload mixes, AP association),
  a pure function of ``(seed, spec)``;
- :mod:`repro.fleet.aggregate` — streaming statistical aggregation over
  closed-form per-cohort evaluations: battery-lifetime percentiles,
  energy-per-MB distributions, break-even-size distributions, and the
  fleet-wide Equation 6 flip fraction, with mergeable sketch state so
  shard partials combine associatively.

The campaign integration (``kind=fleet`` cells, the ``fleet-pop``
preset) and the ``repro fleet --population`` CLI ride on these layers.
"""

from repro.fleet.contention import (
    ContentionModel,
    DES_SPOT_TOLERANCE,
    assert_des_agreement,
    spot_check_against_des,
)
from repro.fleet.population import (
    DeviceClass,
    HAVE_NUMPY,
    Population,
    PopulationSpec,
    Workload,
    synthesize,
)
from repro.fleet.aggregate import (
    FleetSummary,
    LogHistogram,
    evaluate_population,
    summary_json,
)

__all__ = [
    "ContentionModel",
    "DES_SPOT_TOLERANCE",
    "DeviceClass",
    "FleetSummary",
    "HAVE_NUMPY",
    "LogHistogram",
    "Population",
    "PopulationSpec",
    "Workload",
    "assert_des_agreement",
    "evaluate_population",
    "spot_check_against_des",
    "summary_json",
    "synthesize",
]
