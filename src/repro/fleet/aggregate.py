"""Streaming fleet aggregation: population distributions in closed form.

One cohort — a (device class, workload, stations-on-the-AP) triple — is
evaluated once through the vectorized session closed forms
(:func:`repro.simulator.batch.batch_session_energy_time`) and the
analytic contention layer (:mod:`repro.fleet.contention`); its result
is weighted by the cohort's device count.  A million-device fleet is a
few hundred such rows, so the whole evaluation is a handful of array
ops regardless of population size.

Distributions are held in :class:`LogHistogram` sketches: fixed
log-spaced bins with integer counts, so (a) the state is tiny and
byte-stable, (b) two sketches over the same bounds merge associatively
(shard partials combine in any grouping), and (c) quantiles are
deterministic functions of the counts.  :class:`FleetSummary` bundles
the sketches with exact totals and merges the same way — the property
the campaign shard-reduce path (:func:`reduce_campaign_metrics`)
relies on.

Evaluated quantities, per device:

- session energy under the selected policy, plus queue-wait energy at
  idle power (the contention model's mean wait);
- energy per MB of raw payload;
- battery lifetime at the workload's request rate (busy time at session
  power, the rest of each hour at the device's between-request idle
  rail);
- the fleet break-even size (the smallest file for which compression
  pays *for the fleet* at the cohort's AP load) and the Equation 6
  flip fraction — cohorts where contention reverses the single-device
  verdict.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the base image
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro import units
from repro.device.batterylife import Battery
from repro.errors import ModelError
from repro.fleet.contention import ContentionModel
from repro.fleet.population import Population

#: Policies a fleet evaluation can apply uniformly.
FLEET_POLICIES = ("raw", "compressed", "advised", "fleet-advised")

#: Default quantiles reported by :meth:`FleetSummary.to_dict`.
DEFAULT_PERCENTILES = (5, 25, 50, 75, 95, 99)

#: Fixed sketch bounds: every summary uses the same bins so partials
#: from different shards/seeds always merge.
ENERGY_PER_MB_BOUNDS = (1e-2, 1e4)
LIFETIME_HOURS_BOUNDS = (1e-2, 1e5)
BREAK_EVEN_KB_BOUNDS = (1e-4, 4096.0)
WAIT_S_BOUNDS = (1e-4, 1e5)

#: The factor the break-even bisection treats as "compress as well as
#: physically possible" (mirrors ``FleetAdvisor.size_threshold_bytes``).
_BREAK_EVEN_HUGE_FACTOR = 1e9

#: Bisection passes for the break-even size (FleetAdvisor parity).
_BREAK_EVEN_ITERATIONS = 200


class LogHistogram:
    """A mergeable log-binned sketch with exact count/sum/min/max.

    ``bins`` log-spaced buckets cover ``[lo, hi)``; values below ``lo``
    (including non-positive ones) land in a dedicated underflow slot,
    values at or above ``hi`` (including ``inf``) in an overflow slot.
    Counts are int64, so merging is exact and associative; ``sum``,
    ``min`` and ``max`` track *finite* observations only.
    """

    def __init__(self, lo: float, hi: float, bins: int = 128) -> None:
        if not HAVE_NUMPY:
            raise ModelError("fleet aggregation requires numpy")
        if not (lo > 0.0 and hi > lo):
            raise ModelError("histogram bounds must satisfy 0 < lo < hi")
        if bins < 1:
            raise ModelError("histogram needs at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self._log_lo = math.log(self.lo)
        self._span = math.log(self.hi) - self._log_lo
        # Slot 0 is underflow, slots 1..bins the bins, bins+1 overflow.
        self.counts = np.zeros(self.bins + 2, dtype=np.int64)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe_array(self, values, counts=None) -> None:
        """Fold in ``values`` with per-value integer weights."""
        values = np.asarray(values, dtype=np.float64)
        if counts is None:
            counts = np.ones(values.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        if values.size == 0:
            return
        with np.errstate(all="ignore"):
            under = ~(values >= self.lo)  # catches NaN too
            over = values >= self.hi
            scaled = (np.log(values) - self._log_lo) / self._span * self.bins
            slot = 1 + np.clip(
                np.floor(scaled), 0, self.bins - 1
            ).astype(np.int64)
        slot = np.where(under, 0, np.where(over, self.bins + 1, slot))
        np.add.at(self.counts, slot, counts)
        self.total += int(counts.sum())
        finite = np.isfinite(values)
        if bool(finite.any()):
            fv = values[finite]
            self.sum += float((fv * counts[finite].astype(np.float64)).sum())
            lo_v = float(fv.min())
            hi_v = float(fv.max())
            self.min = lo_v if self.min is None else min(self.min, lo_v)
            self.max = hi_v if self.max is None else max(self.max, hi_v)

    def merge(self, other: "LogHistogram") -> None:
        """Fold another sketch in; bounds must match exactly."""
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi, other.bins):
            raise ModelError("cannot merge histograms with different bins")
        self.counts += other.counts
        self.total += other.total
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """Deterministic q-quantile from the counts.

        Underflow resolves to the observed minimum, overflow to the
        observed maximum, interior bins to their geometric midpoint
        clamped into the observed [min, max] range.  Returns 0.0 on an
        empty sketch.
        """
        if self.total <= 0:
            return 0.0
        rank = min(self.total, max(1, int(math.ceil(q * self.total))))
        cum = np.cumsum(self.counts)
        slot = int(np.searchsorted(cum, rank, side="left"))
        if slot <= 0:
            value = self.min if self.min is not None else self.lo
        elif slot >= self.bins + 1:
            value = self.max if self.max is not None else self.hi
        else:
            mid = self._log_lo + (slot - 0.5) * self._span / self.bins
            value = math.exp(mid)
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return float(value)

    def mean(self) -> float:
        """Mean of the finite observations (0.0 when empty)."""
        if self.total <= 0:
            return 0.0
        return self.sum / self.total

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready sparse form: only nonzero slots are listed."""
        nz = np.nonzero(self.counts)[0]
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "counts": [
                [int(i), int(self.counts[i])] for i in nz.tolist()
            ],
        }


def _new_sketches() -> Dict[str, LogHistogram]:
    """The summary's four distribution sketches, fixed bounds."""
    return {
        "lifetime_h": LogHistogram(*LIFETIME_HOURS_BOUNDS),
        "energy_per_mb": LogHistogram(*ENERGY_PER_MB_BOUNDS),
        "break_even_kb": LogHistogram(*BREAK_EVEN_KB_BOUNDS),
        "wait_s": LogHistogram(*WAIT_S_BOUNDS),
    }


@dataclass
class FleetSummary:
    """Mergeable aggregate of one (or many) fleet evaluations."""

    policy: str
    devices: int = 0
    aps: int = 0
    cohorts: int = 0
    fleet_energy_j: float = 0.0
    fleet_raw_mb: float = 0.0
    compress_devices: int = 0
    flip_devices: int = 0
    never_break_even_devices: int = 0
    #: station count -> [devices at that load, Eq-6 flips at that load]
    flips_by_n: Dict[int, List[int]] = field(default_factory=dict)
    sketches: Dict[str, LogHistogram] = field(default_factory=_new_sketches)

    def merge(self, other: "FleetSummary") -> None:
        """Fold another summary in (associative; policies must match)."""
        if other.policy != self.policy:
            raise ModelError(
                f"cannot merge {other.policy!r} summary into {self.policy!r}"
            )
        self.devices += other.devices
        self.aps += other.aps
        self.cohorts += other.cohorts
        self.fleet_energy_j += other.fleet_energy_j
        self.fleet_raw_mb += other.fleet_raw_mb
        self.compress_devices += other.compress_devices
        self.flip_devices += other.flip_devices
        self.never_break_even_devices += other.never_break_even_devices
        for n, (dev, flips) in other.flips_by_n.items():
            slot = self.flips_by_n.setdefault(n, [0, 0])
            slot[0] += dev
            slot[1] += flips
        for name, sketch in self.sketches.items():
            sketch.merge(other.sketches[name])

    def metrics(self) -> Dict[str, Any]:
        """Flat scalar metrics for a ``kind=fleet`` campaign cell."""
        dev = self.devices or 1
        out: Dict[str, Any] = {
            "devices": self.devices,
            "aps": self.aps,
            "cohorts": self.cohorts,
            "fleet_energy_j": self.fleet_energy_j,
            "mean_device_energy_j": self.fleet_energy_j / dev,
            "compress_fraction": self.compress_devices / dev,
            "flip_fraction": self.flip_devices / dev,
            "never_break_even_devices": self.never_break_even_devices,
        }
        for name, (p_lo, p_hi) in (
            ("lifetime_h", (50, 5)),
            ("energy_per_mb", (50, 95)),
            ("wait_s", (50, 95)),
        ):
            sketch = self.sketches[name]
            out[f"{name}_p{p_lo:02d}"] = sketch.quantile(p_lo / 100.0)
            out[f"{name}_p{p_hi:02d}"] = sketch.quantile(p_hi / 100.0)
        out["break_even_kb_p50"] = self.sketches["break_even_kb"].quantile(0.5)
        return out

    def to_dict(
        self, percentiles: Tuple[int, ...] = DEFAULT_PERCENTILES
    ) -> Dict[str, Any]:
        """Full JSON-ready report: totals, percentiles, sparse sketches."""
        dev = self.devices or 1
        return {
            "policy": self.policy,
            "devices": self.devices,
            "aps": self.aps,
            "cohorts": self.cohorts,
            "fleet_energy_j": self.fleet_energy_j,
            "fleet_raw_mb": self.fleet_raw_mb,
            "mean_device_energy_j": self.fleet_energy_j / dev,
            "compress_fraction": self.compress_devices / dev,
            "flip_fraction": self.flip_devices / dev,
            "never_break_even_devices": self.never_break_even_devices,
            "flips_by_n": [
                [n, counts[0], counts[1]]
                for n, counts in sorted(self.flips_by_n.items())
            ],
            "percentiles": {
                name: {
                    f"p{p:02d}": sketch.quantile(p / 100.0)
                    for p in percentiles
                }
                for name, sketch in sorted(self.sketches.items())
            },
            "sketches": {
                name: sketch.to_dict()
                for name, sketch in sorted(self.sketches.items())
            },
        }


def _session_tables(spec) -> Tuple[Any, Any, Any, Any, List[int], List[int]]:
    """(K, W) session energy/time tables for every class x workload.

    Returns ``(e_raw, t_raw, e_cmp, t_cmp, raw_bytes, comp_bytes)``
    with the byte lists indexed by workload.  Sessions are the clean
    analytic closed forms via the vectorized batch path.
    """
    from repro.core import thresholds
    from repro.simulator import batch

    n_k = len(spec.device_classes)
    n_w = len(spec.workloads)
    raw_bytes = [int(w.size_mb * units.BYTES_PER_MB) for w in spec.workloads]
    comp_bytes = [
        int(r / w.factor) if w.factor > 0 else r
        for r, w in zip(raw_bytes, spec.workloads)
    ]
    raw_arr = np.array([float(v) for v in raw_bytes], dtype=np.float64)
    comp_arr = np.array([float(v) for v in comp_bytes], dtype=np.float64)
    e_raw = np.zeros((n_k, n_w))
    t_raw = np.zeros((n_k, n_w))
    e_cmp = np.zeros((n_k, n_w))
    t_cmp = np.zeros((n_k, n_w))
    by_codec: Dict[str, List[int]] = {}
    for i, w in enumerate(spec.workloads):
        by_codec.setdefault(w.codec, []).append(i)
    for k, cls in enumerate(spec.device_classes):
        model = thresholds.model_at_rate(cls.link_mbps)
        e_raw[k], t_raw[k] = batch.batch_session_energy_time(
            "raw", raw_arr, raw_arr, model
        )
        for codec, idxs in by_codec.items():
            e, t = batch.batch_session_energy_time(
                "interleaved", raw_arr[idxs], comp_arr[idxs], model, codec
            )
            e_cmp[k, idxs] = e
            t_cmp[k, idxs] = t
    return e_raw, t_raw, e_cmp, t_cmp, raw_bytes, comp_bytes


def _break_even_bytes(spec, k_arr, n_arr, collision_overhead: float):
    """Fleet break-even size per (class, station-count) pair, bisected.

    The vector twin of ``FleetAdvisor.size_threshold_bytes`` with
    ``contenders = n - 1``: the smallest file for which an ideally
    compressed transfer beats raw *including* the contenders' waiting
    energy.  Returns ``(bytes, never_mask)`` aligned with the inputs.
    """
    from repro.core import thresholds
    from repro.simulator import batch

    out = np.zeros(k_arr.shape)
    never = np.zeros(k_arr.shape, dtype=bool)
    huge = _BREAK_EVEN_HUGE_FACTOR
    for k in np.unique(k_arr).tolist():
        sel = k_arr == k
        cls = spec.device_classes[int(k)]
        model = thresholds.model_at_rate(cls.link_mbps)
        contention = ContentionModel(model, collision_overhead)
        contenders = n_arr[sel] - 1.0

        def worth(n_bytes):
            raw = np.trunc(n_bytes)
            comp = np.trunc(raw / huge)
            cost_c = (
                batch.batch_interleaved_energy_j(raw, comp, model)
                + contenders
                * contention.service_time_s(
                    comp / units.BYTES_PER_MB / contention.model.params.rate_mb_per_s,
                    n_arr[sel],
                )
                * model.device.idle_power_w
            )
            cost_r = (
                batch.batch_download_energy_j(raw, model)
                + contenders
                * contention.service_time_s(
                    raw / units.BYTES_PER_MB / contention.model.params.rate_mb_per_s,
                    n_arr[sel],
                )
                * model.device.idle_power_w
            )
            return (cost_c < cost_r) & (raw > 0.0)

        lo = np.full(contenders.shape, 1.0)
        hi = np.full(contenders.shape, float(units.BYTES_PER_MB))
        w_lo = worth(lo)
        w_hi = worth(hi)
        for _ in range(_BREAK_EVEN_ITERATIONS):
            mid = (lo + hi) / 2
            wm = worth(mid)
            hi = np.where(wm, mid, hi)
            lo = np.where(wm, lo, mid)
        vals = np.rint((lo + hi) / 2)
        vals = np.where(w_lo, 1.0, vals)
        out[sel] = vals
        never[sel] = ~w_hi & ~w_lo
    return out, never


def evaluate_population(
    population: Population,
    policy: str = "fleet-advised",
    collision_overhead: float = 0.0,
) -> FleetSummary:
    """Evaluate a synthesized fleet into a :class:`FleetSummary`.

    Pure in its inputs: the same population (same seed + spec) under
    the same policy always yields byte-identical summary JSON.  Cost is
    O(cohorts), not O(devices).
    """
    if not HAVE_NUMPY:
        raise ModelError("fleet aggregation requires numpy")
    if policy not in FLEET_POLICIES:
        raise ModelError(
            f"unknown fleet policy {policy!r}; known: {', '.join(FLEET_POLICIES)}"
        )
    spec = population.spec
    spec.validate()
    cohorts = population.cohorts()
    e_raw_t, t_raw_t, e_cmp_t, t_cmp_t, raw_bytes, comp_bytes = (
        _session_tables(spec)
    )
    k_arr = cohorts.class_idx
    w_arr = cohorts.workload_idx
    n_arr = cohorts.stations.astype(np.float64)
    cnt = cohorts.count
    cntf = cnt.astype(np.float64)

    # Per-class and per-workload gathers.
    from repro.core import thresholds

    rates = np.zeros(len(spec.device_classes))
    idle_w = np.zeros(len(spec.device_classes))
    idle_between_w = np.zeros(len(spec.device_classes))
    usable_j = np.zeros(len(spec.device_classes))
    for k, cls in enumerate(spec.device_classes):
        model = thresholds.model_at_rate(cls.link_mbps)
        device = model.device
        idle_w[k] = device.idle_power_w
        idle_between_w[k] = (
            device.idle_power_save_w if cls.power_save_idle
            else device.idle_power_w
        )
        usable_j[k] = Battery(capacity_mah=cls.capacity_mah).usable_joules
        rates[k] = model.params.rate_mb_per_s
    size_mb = np.array([w.size_mb for w in spec.workloads])
    rph = np.array([w.requests_per_hour for w in spec.workloads])
    raw_mb = np.array([float(b) for b in raw_bytes]) / units.BYTES_PER_MB
    comp_mb = np.array([float(b) for b in comp_bytes]) / units.BYTES_PER_MB

    e_raw = e_raw_t[k_arr, w_arr]
    t_raw = t_raw_t[k_arr, w_arr]
    e_cmp = e_cmp_t[k_arr, w_arr]
    t_cmp = t_cmp_t[k_arr, w_arr]
    p_idle = idle_w[k_arr]
    p_between = idle_between_w[k_arr]
    capacity_j = usable_j[k_arr]
    rate = rates[k_arr]
    contention = ContentionModel(collision_overhead=collision_overhead)

    # Link occupancy of each choice (what contenders wait for) and the
    # FleetAdvisor decision form with contenders = n - 1.
    contenders = n_arr - 1.0
    t_link_raw = contention.service_time_s(raw_mb[w_arr] / rate, n_arr)
    t_link_cmp = contention.service_time_s(comp_mb[w_arr] / rate, n_arr)
    worth_single = e_cmp < e_raw
    fleet_worth = (e_cmp + contenders * t_link_cmp * p_idle) < (
        e_raw + contenders * t_link_raw * p_idle
    )
    if policy == "raw":
        use_cmp = np.zeros(n_arr.shape, dtype=bool)
    elif policy == "compressed":
        use_cmp = np.ones(n_arr.shape, dtype=bool)
    elif policy == "advised":
        use_cmp = worth_single
    else:
        use_cmp = fleet_worth

    e_sel = np.where(use_cmp, e_cmp, e_raw)
    t_sel = np.where(use_cmp, t_cmp, t_raw)
    wait = contention.mean_wait_s(t_sel, n_arr)
    e_dev = e_sel + wait * p_idle
    energy_per_mb = e_dev / size_mb[w_arr]

    # Battery lifetime at the workload's request rate: busy time at the
    # session's mean draw, the remainder of the hour on the idle rail.
    busy_s = rph[w_arr] * (contention.service_time_s(t_sel, n_arr) + wait)
    idle_s = np.maximum(0.0, 3600.0 - busy_s)
    hourly_j = rph[w_arr] * e_dev + idle_s * p_between
    with np.errstate(all="ignore"):
        lifetime_h = np.where(hourly_j > 0.0, capacity_j / hourly_j, np.inf)

    be_bytes, be_never = _break_even_bytes(
        spec, k_arr, n_arr, collision_overhead
    )

    summary = FleetSummary(policy=policy)
    summary.devices = int(cnt.sum())
    summary.aps = int((population.stations_per_ap > 0).sum())
    summary.cohorts = len(cohorts)
    summary.fleet_energy_j = float((e_dev * cntf).sum())
    summary.fleet_raw_mb = float((raw_mb[w_arr] * cntf).sum())
    summary.compress_devices = int(cnt[use_cmp].sum())
    flip = worth_single != fleet_worth
    summary.flip_devices = int(cnt[flip].sum())
    summary.never_break_even_devices = int(cnt[be_never].sum())
    for n in np.unique(cohorts.stations).tolist():
        sel = cohorts.stations == n
        summary.flips_by_n[int(n)] = [
            int(cnt[sel].sum()), int(cnt[sel & flip].sum())
        ]
    summary.sketches["lifetime_h"].observe_array(lifetime_h, cnt)
    summary.sketches["energy_per_mb"].observe_array(energy_per_mb, cnt)
    summary.sketches["wait_s"].observe_array(wait, cnt)
    ok = ~be_never
    summary.sketches["break_even_kb"].observe_array(
        be_bytes[ok] / 1024.0, cnt[ok]
    )
    return summary


def _jsonable(value: Any) -> Any:
    """Canonical-JSON-safe copy: non-finite floats become strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return "nan" if math.isnan(value) else (
            "inf" if value > 0 else "-inf"
        )
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def summary_json(summary: FleetSummary, **kwargs) -> str:
    """Canonical JSON for a summary: sorted keys, no whitespace.

    Byte-identical across runs for byte-identical summaries — the form
    the CLI ``--json`` output, the smoke gate's ``cmp`` and the bench
    artifact all pin.
    """
    return json.dumps(
        _jsonable(summary.to_dict(**kwargs)),
        sort_keys=True,
        separators=(",", ":"),
    )


def reduce_campaign_metrics(out_dir) -> Dict[str, Dict[str, float]]:
    """Per-metric {count, sum, min, max, mean} over a campaign's shards.

    Folds each live shard file independently and combines the partials
    associatively via :func:`repro.campaign.store.reduce_shards` — the
    merged report is never materialized.  Only numeric metrics of
    ``ok`` records participate.
    """
    from repro.campaign import store

    def fold(acc: Dict[str, List[float]], record: Dict[str, Any]):
        if record.get("status") != "ok":
            return acc
        for name, value in (record.get("metrics") or {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            slot = acc.get(name)
            if slot is None:
                acc[name] = [1.0, float(value), float(value), float(value)]
            else:
                slot[0] += 1.0
                slot[1] += float(value)
                slot[2] = min(slot[2], float(value))
                slot[3] = max(slot[3], float(value))
        return acc

    def combine(a: Dict[str, List[float]], b: Dict[str, List[float]]):
        for name, slot in b.items():
            mine = a.get(name)
            if mine is None:
                a[name] = list(slot)
            else:
                mine[0] += slot[0]
                mine[1] += slot[1]
                mine[2] = min(mine[2], slot[2])
                mine[3] = max(mine[3], slot[3])
        return a

    partials = store.reduce_shards(out_dir, fold, dict, combine)
    return {
        name: {
            "count": int(slot[0]),
            "sum": slot[1],
            "min": slot[2],
            "max": slot[3],
            "mean": slot[1] / slot[0] if slot[0] else 0.0,
        }
        for name, slot in sorted(partials.items())
    }


__all__ = [
    "BREAK_EVEN_KB_BOUNDS",
    "DEFAULT_PERCENTILES",
    "ENERGY_PER_MB_BOUNDS",
    "FLEET_POLICIES",
    "FleetSummary",
    "HAVE_NUMPY",
    "LIFETIME_HOURS_BOUNDS",
    "LogHistogram",
    "WAIT_S_BOUNDS",
    "evaluate_population",
    "reduce_campaign_metrics",
    "summary_json",
]
