"""802.11b WaveLAN link model.

Captures what the paper measures about the Lucent Orinoco card
(Section 2): an 11 Mb/s nominal peak with ~5 Mb/s effective air rate and
602 KiB/s application-level receive rate, a 2 Mb/s setting with 180 KiB/s,
a power-saving mode that periodically sleeps the card and costs about 25%
of effective throughput, and a CPU-idle fraction between packet arrivals
(40% at 11 Mb/s, 81.5% at 2 Mb/s).

The bit rate "can be adjusted downward ... by changing the settings of
the access point, by increasing the communication distance, or by
increasing structure obstacles"; :func:`degraded` models those knobs as a
rate multiplier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro import units
from repro.errors import LinkRateError, ModelError


def _require_finite_positive(value: float, what: str) -> None:
    """Reject non-finite and non-positive rates with a typed error.

    ``value <= 0`` is False for NaN, so a plain sign check lets NaN
    rates through and every downstream time becomes NaN silently.
    """
    if not math.isfinite(value) or value <= 0:
        raise LinkRateError(f"{what} must be finite and positive, got {value!r}")


@dataclass(frozen=True)
class LinkConfig:
    """One wireless link operating point."""

    name: str
    nominal_rate_bps: float
    #: Application-level receive rate with power saving off, bytes/second.
    effective_rate_bps: float
    #: Fraction of download wall time the CPU idles between packets.
    idle_fraction: float
    power_save: bool = False

    def __post_init__(self) -> None:
        _require_finite_positive(self.nominal_rate_bps, "nominal bit rate")
        _require_finite_positive(self.effective_rate_bps, "effective rate")
        if not 0 <= self.idle_fraction < 1:
            raise ModelError("idle fraction must be in [0, 1)")
        if self.effective_rate_bps * 8 > self.nominal_rate_bps:
            raise ModelError("effective rate exceeds nominal bit rate")

    @property
    def delivered_rate_bps(self) -> float:
        """Effective rate after the power-saving penalty, bytes/second."""
        if self.power_save:
            return self.effective_rate_bps * (1.0 - units.POWER_SAVE_RATE_PENALTY)
        return self.effective_rate_bps

    @property
    def delivered_rate_mbps(self) -> float:
        """Delivered rate in model MB (MiB) per second."""
        return self.delivered_rate_bps / units.BYTES_PER_MB

    def download_time_s(self, n_bytes: float) -> float:
        """Wall time to download ``n_bytes``, idle gaps included."""
        if n_bytes < 0:
            raise ModelError("byte count must be non-negative")
        return n_bytes / self.delivered_rate_bps

    def active_time_s(self, n_bytes: float) -> float:
        """Time the CPU/radio actively spend on ``n_bytes``."""
        return self.download_time_s(n_bytes) * (1.0 - self.idle_fraction)

    def idle_time_s(self, n_bytes: float) -> float:
        """CPU idle time accumulated while downloading ``n_bytes``."""
        return self.download_time_s(n_bytes) * self.idle_fraction

    def with_power_save(self, enabled: bool) -> "LinkConfig":
        """A copy with the power-saving flag set."""
        return replace(self, power_save=enabled)

    def degraded(
        self, rate_multiplier: float, idle_fraction: Optional[float] = None
    ) -> "LinkConfig":
        """A weaker operating point (distance/obstacles/AP settings).

        Lower delivered rates leave the CPU idle for a larger fraction of
        the download; callers may supply the measured fraction, else it is
        scaled on the assumption that per-byte active CPU time is constant.
        """
        if not (
            isinstance(rate_multiplier, (int, float))
            and math.isfinite(rate_multiplier)
            and 0 < rate_multiplier <= 1
        ):
            raise LinkRateError(
                f"rate multiplier must be a finite number in (0, 1], "
                f"got {rate_multiplier!r}"
            )
        if idle_fraction is not None and not (
            math.isfinite(idle_fraction) and 0 <= idle_fraction < 1
        ):
            raise LinkRateError(
                f"idle fraction must be finite and in [0, 1), "
                f"got {idle_fraction!r}"
            )
        new_rate = self.effective_rate_bps * rate_multiplier
        if idle_fraction is None:
            # Active time per byte constant => idle fraction rises as the
            # same active work spreads over a longer wall time.
            active_per_byte = (1.0 - self.idle_fraction) / self.effective_rate_bps
            idle_fraction = 1.0 - active_per_byte * new_rate
        return replace(
            self,
            name=f"{self.name}-x{rate_multiplier:g}",
            nominal_rate_bps=self.nominal_rate_bps * rate_multiplier,
            effective_rate_bps=new_rate,
            idle_fraction=idle_fraction,
        )


#: The paper's main operating point (Section 2 / 4.1).
LINK_11MBPS = LinkConfig(
    name="11mbps",
    nominal_rate_bps=units.NOMINAL_RATE_11MBPS,
    effective_rate_bps=units.EFFECTIVE_RATE_11MBPS_BPS,
    idle_fraction=units.IDLE_FRACTION_11MBPS,
)

#: The validation operating point (Section 4.2).
LINK_2MBPS = LinkConfig(
    name="2mbps",
    nominal_rate_bps=units.NOMINAL_RATE_2MBPS,
    effective_rate_bps=units.EFFECTIVE_RATE_2MBPS_BPS,
    idle_fraction=units.IDLE_FRACTION_2MBPS,
)

#: The 802.11b rate-adaptation ladder, nominal Mb/s.  An Orinoco card
#: steps down this ladder as the channel degrades (and back up as it
#: clears); mid-session rate-step events are confined to these points.
LADDER_MBPS = (11.0, 5.5, 2.0, 1.0)

#: Measured anchors (11 and 2 Mb/s) plus derived intermediate rungs:
#: 5.5 Mb/s halves the 11 Mb/s delivered rate, 1 Mb/s halves 2 Mb/s —
#: per-byte active CPU time held constant, the same assumption
#: :meth:`LinkConfig.degraded` makes.
_LADDER_LINKS = {
    11.0: LINK_11MBPS,
    5.5: LINK_11MBPS.degraded(0.5),
    2.0: LINK_2MBPS,
    1.0: LINK_2MBPS.degraded(0.5),
}


def ladder_link(rate_mbps: float) -> LinkConfig:
    """The :class:`LinkConfig` for one 802.11b ladder rung.

    Raises :class:`~repro.errors.LinkRateError` for anything off the
    ladder (including NaN/inf and non-positive rates): a rate-step
    event must land on a real operating point of the card.
    """
    try:
        if rate_mbps in _LADDER_LINKS:
            return _LADDER_LINKS[rate_mbps]
    except TypeError:
        pass
    raise LinkRateError(
        f"rate {rate_mbps!r} is not on the 802.11b ladder {LADDER_MBPS}"
    )
