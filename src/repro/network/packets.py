"""Packetization: fixed-size packets and per-packet timing.

The paper's transfer-energy argument assumes "fix-sized packets" at a
fixed data rate (Section 3.2), so the cost is linear in data size; the
packet schedule makes the per-packet structure explicit for the
discrete-event simulator, where the gap after each packet is the CPU-idle
interval the interleaving scheme reclaims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ModelError
from repro.network.wlan import LinkConfig

#: Default payload per packet; Ethernet-style MTU minus TCP/IP headers,
#: which is what a TCP socket over 802.11b delivers per segment.
DEFAULT_PAYLOAD_BYTES = 1460


@dataclass(frozen=True)
class PacketTiming:
    """One packet's contribution to the receive timeline."""

    index: int
    payload_bytes: int
    #: Time actively spent receiving/copying this packet.
    active_s: float
    #: Idle gap after this packet before the next one arrives.
    gap_s: float

    @property
    def total_s(self) -> float:
        """Active plus gap time of the packet."""
        return self.active_s + self.gap_s


@dataclass(frozen=True)
class PacketSchedule:
    """The packet-level structure of one download."""

    packets: List[PacketTiming]

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all packets."""
        return sum(p.payload_bytes for p in self.packets)

    @property
    def total_time_s(self) -> float:
        """Total wall time of the schedule."""
        return sum(p.total_s for p in self.packets)

    @property
    def active_time_s(self) -> float:
        """Time actively receiving packets."""
        return sum(p.active_s for p in self.packets)

    @property
    def idle_time_s(self) -> float:
        """Total inter-packet gap time."""
        return sum(p.gap_s for p in self.packets)

    def __iter__(self) -> Iterator[PacketTiming]:
        return iter(self.packets)

    def __len__(self) -> int:
        return len(self.packets)


class Packetizer:
    """Splits a transfer into fixed-size packets on a given link."""

    def __init__(self, payload_bytes: int = DEFAULT_PAYLOAD_BYTES) -> None:
        if payload_bytes <= 0:
            raise ModelError("payload size must be positive")
        self.payload_bytes = payload_bytes

    def packet_count(self, n_bytes: int) -> int:
        """Packets needed for ``n_bytes``."""
        if n_bytes < 0:
            raise ModelError("byte count must be non-negative")
        return (n_bytes + self.payload_bytes - 1) // self.payload_bytes

    def schedule(self, n_bytes: int, link: LinkConfig) -> PacketSchedule:
        """Per-packet timing: each packet's active time plus its idle gap.

        The aggregate matches the link model exactly: total time is
        ``n_bytes / delivered_rate`` and the idle share equals the link's
        idle fraction.
        """
        count = self.packet_count(n_bytes)
        packets: List[PacketTiming] = []
        remaining = n_bytes
        for i in range(count):
            payload = min(self.payload_bytes, remaining)
            remaining -= payload
            total = link.download_time_s(payload)
            active = total * (1.0 - link.idle_fraction)
            packets.append(
                PacketTiming(
                    index=i, payload_bytes=payload, active_s=active, gap_s=total - active
                )
            )
        return PacketSchedule(packets=packets)
