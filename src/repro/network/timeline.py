"""Fault timelines: the link that changes under a transfer.

The paper measures a static link, but 802.11b rate adaptation steps the
card down the 11/5.5/2/1 Mb/s ladder as the channel degrades, an AP
handoff disconnects the card mid-file, and a proxy brownout stalls the
byte stream.  Each of those *mid-session* events changes the energy
accounting: the CPU idles 40 % of receive time at 11 Mb/s but 81.5 % at
2 Mb/s, so the Equation 6 break-even of a transfer that straddles a rate
step matches neither static operating point.

This module is the shared vocabulary for those events:

- :class:`RateStep` / :class:`Outage` / :class:`Stall` — typed events,
  anchored at seconds into the transfer;
- :class:`FaultTimeline` — a scripted or seeded schedule of events;
- :func:`plan_transfer` — the segmentation planner both engines consume:
  it slices a transfer of N bytes into piecewise-constant-rate delivery
  segments with the dead time (outage, reassociation, stall, resume
  handshake) and re-fetched bytes interleaved in order.

The analytic engine charges each segment in closed form at that
segment's rate and idle fraction; the DES engine paces packet schedules
per segment and injects the dead periods as events.  A timeline with no
events must be invisible: both engines bypass the planner entirely and
stay bit-identical to the seed baseline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.network.wlan import LADDER_MBPS, LinkConfig, ladder_link

#: Default reassociation time after an outage: active scan + auth +
#: (re)association on an Orinoco-class card takes on the order of
#: hundreds of milliseconds.
DEFAULT_REASSOC_S = 0.3


def _require_time(value: float, what: str, positive: bool = False) -> None:
    if not (isinstance(value, (int, float)) and math.isfinite(value)):
        raise ModelError(f"{what} must be finite, got {value!r}")
    if positive and value <= 0:
        raise ModelError(f"{what} must be positive, got {value!r}")
    if not positive and value < 0:
        raise ModelError(f"{what} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class RateStep:
    """The card steps to another 802.11b ladder rung at ``at_s``."""

    at_s: float
    rate_mbps: float

    def __post_init__(self) -> None:
        _require_time(self.at_s, "event time")
        ladder_link(self.rate_mbps)  # raises LinkRateError off-ladder

    @property
    def link(self) -> LinkConfig:
        """The operating point this step moves to."""
        return ladder_link(self.rate_mbps)


@dataclass(frozen=True)
class Outage:
    """A disconnect at ``at_s``: no delivery for ``duration_s``, then the
    card pays ``reassoc_s`` of active reassociation before bytes flow."""

    at_s: float
    duration_s: float
    reassoc_s: float = DEFAULT_REASSOC_S

    def __post_init__(self) -> None:
        _require_time(self.at_s, "event time")
        _require_time(self.duration_s, "outage duration", positive=True)
        _require_time(self.reassoc_s, "reassociation time")


@dataclass(frozen=True)
class Stall:
    """A proxy brownout at ``at_s``: the stream pauses for ``duration_s``
    but the card stays associated (no reassociation, no data loss)."""

    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        _require_time(self.at_s, "event time")
        _require_time(self.duration_s, "stall duration", positive=True)


FaultEvent = Union[RateStep, Outage, Stall]


@dataclass(frozen=True)
class FaultTimeline:
    """An ordered schedule of mid-session link events.

    Events are anchored in seconds since the transfer's first byte.
    Events that fall after the transfer completes never fire.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for ev in self.events:
            if not isinstance(ev, (RateStep, Outage, Stall)):
                raise ModelError(f"unknown fault event {ev!r}")
        ordered = tuple(sorted(self.events, key=lambda e: e.at_s))
        object.__setattr__(self, "events", ordered)

    @property
    def has_events(self) -> bool:
        """False for the trivial timeline the engines bypass entirely."""
        return bool(self.events)

    @classmethod
    def scripted(cls, *events: FaultEvent) -> "FaultTimeline":
        """A deterministic timeline from explicit events."""
        return cls(events=tuple(events))

    @classmethod
    def parse(
        cls,
        rate_schedule: Optional[str] = None,
        outages: Sequence[str] = (),
        stalls: Sequence[str] = (),
    ) -> "FaultTimeline":
        """Build a timeline from CLI-style specs.

        ``rate_schedule`` is ``"T:RATE,T:RATE,..."`` (seconds : ladder
        Mb/s), each ``outages`` entry is ``"AT:DURATION[:REASSOC]"``
        and each ``stalls`` entry is ``"AT:DURATION"``.
        """
        events: List[FaultEvent] = []
        if rate_schedule:
            for part in rate_schedule.split(","):
                try:
                    at_text, rate_text = part.split(":")
                    events.append(RateStep(float(at_text), float(rate_text)))
                except ValueError as exc:
                    raise ModelError(
                        f"bad rate-schedule entry {part!r} "
                        f"(expected T:RATE): {exc}"
                    ) from exc
        for spec in outages:
            fields = spec.split(":")
            if len(fields) not in (2, 3):
                raise ModelError(
                    f"bad outage spec {spec!r} (expected AT:DUR[:REASSOC])"
                )
            try:
                numbers = [float(f) for f in fields]
            except ValueError as exc:
                raise ModelError(f"bad outage spec {spec!r}: {exc}") from exc
            events.append(Outage(*numbers))
        for spec in stalls:
            fields = spec.split(":")
            if len(fields) != 2:
                raise ModelError(f"bad stall spec {spec!r} (expected AT:DUR)")
            try:
                events.append(Stall(float(fields[0]), float(fields[1])))
            except ValueError as exc:
                raise ModelError(f"bad stall spec {spec!r}: {exc}") from exc
        return cls(events=tuple(events))

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon_s: float,
        rate_walk_interval_s: Optional[float] = None,
        outage_interval_s: Optional[float] = None,
        stall_interval_s: Optional[float] = None,
        outage_s: float = 2.0,
        reassoc_s: float = DEFAULT_REASSOC_S,
        stall_s: float = 0.5,
        start_rung: int = 0,
    ) -> "FaultTimeline":
        """A reproducible random timeline over ``horizon_s`` seconds.

        Rate steps are a ±1 random walk on the 802.11b ladder with
        exponential inter-event gaps of mean ``rate_walk_interval_s``;
        outages and stalls arrive as Poisson processes with the given
        mean intervals.  Any interval left ``None`` disables that event
        family.  The same seed always produces the same timeline.
        """
        _require_time(horizon_s, "horizon", positive=True)
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        if rate_walk_interval_s is not None:
            _require_time(rate_walk_interval_s, "rate-walk interval", True)
            rung = min(max(start_rung, 0), len(LADDER_MBPS) - 1)
            t = rng.expovariate(1.0 / rate_walk_interval_s)
            while t < horizon_s:
                rung = min(
                    max(rung + rng.choice((-1, 1)), 0), len(LADDER_MBPS) - 1
                )
                events.append(RateStep(t, LADDER_MBPS[rung]))
                t += rng.expovariate(1.0 / rate_walk_interval_s)
        if outage_interval_s is not None:
            _require_time(outage_interval_s, "outage interval", True)
            t = rng.expovariate(1.0 / outage_interval_s)
            while t < horizon_s:
                events.append(Outage(t, outage_s, reassoc_s))
                t += outage_s + reassoc_s
                t += rng.expovariate(1.0 / outage_interval_s)
        if stall_interval_s is not None:
            _require_time(stall_interval_s, "stall interval", True)
            t = rng.expovariate(1.0 / stall_interval_s)
            while t < horizon_s:
                events.append(Stall(t, stall_s))
                t += stall_s + rng.expovariate(1.0 / stall_interval_s)
        return cls(events=tuple(events))


# -- the segmentation planner -------------------------------------------------


@dataclass(frozen=True)
class DeliverySegment:
    """A run of bytes delivered at one constant operating point."""

    link: LinkConfig
    n_bytes: float
    #: True when these bytes re-deliver data lost to an outage (the
    #: restart/resume tail), charged under the ``refetch-fault`` tag
    #: (disjoint from the corruption machinery's ``refetch`` debits).
    refetch: bool = False


@dataclass(frozen=True)
class DeadSegment:
    """A no-delivery interval: outage, reassoc, stall or resume handshake."""

    kind: str  # "outage" | "reassoc" | "stall" | "resume"
    duration_s: float
    #: Operating point in force when the interval ends (power attribution).
    link: Optional[LinkConfig] = None


PlanStep = Union[DeliverySegment, DeadSegment]


@dataclass(frozen=True)
class FaultStats:
    """What the timeline did to one transfer."""

    rate_steps: int = 0
    outages: int = 0
    stalls: int = 0
    resume_handshakes: int = 0
    #: Bytes re-delivered because an outage voided unacknowledged data.
    refetched_bytes: float = 0.0
    outage_s: float = 0.0
    reassoc_s: float = 0.0
    stall_s: float = 0.0
    #: Unique payload bytes delivered per link name.
    bytes_by_link: Dict[str, float] = field(default_factory=dict)

    @property
    def resumed(self) -> bool:
        """Did a checkpoint/resume handshake run at least once?"""
        return self.resume_handshakes > 0


@dataclass(frozen=True)
class TransferPlan:
    """Ordered steps covering one transfer under a fault timeline."""

    steps: Tuple[PlanStep, ...]
    total_bytes: float
    stats: FaultStats

    @property
    def delivered_bytes(self) -> float:
        """All delivered bytes, re-fetched tails included."""
        return sum(
            s.n_bytes for s in self.steps if isinstance(s, DeliverySegment)
        )


def plan_transfer(
    total_bytes: float,
    timeline: FaultTimeline,
    base_link: LinkConfig,
    resume=None,
) -> TransferPlan:
    """Slice ``total_bytes`` into fault-aware delivery and dead segments.

    ``resume`` is the checkpoint policy consulted at each outage (any
    object with ``restart_point(progress_bytes)`` and ``handshake_s``,
    i.e. :class:`~repro.core.resume.ResumeConfig`).  With ``resume=None``
    the receiver cannot issue range requests: every outage restarts the
    transfer from byte zero, exactly the restart-vs-resume asymmetry the
    recovery comparison measures.

    The planner conserves bytes: unique delivered bytes always equal
    ``total_bytes``; outages add re-fetched bytes on top.
    """
    if total_bytes < 0:
        raise ModelError("transfer size must be non-negative")
    steps: List[PlanStep] = []
    link = base_link
    bytes_by_link: Dict[str, float] = {}
    t = 0.0
    progress = 0.0  # unique bytes delivered and acknowledged
    refetch_left = 0.0  # re-delivery owed before progress resumes
    refetched = 0.0
    rate_steps = outages = stalls = handshakes = 0
    outage_s = reassoc_s = stall_s = 0.0
    events = list(timeline.events)
    ei = 0

    def deliver(amount: float) -> None:
        nonlocal progress, refetch_left
        if amount <= 0:
            return
        re_part = min(amount, refetch_left)
        if re_part > 0:
            steps.append(DeliverySegment(link, re_part, refetch=True))
            refetch_left -= re_part
        new_part = amount - re_part
        if new_part > 0:
            steps.append(DeliverySegment(link, new_part, refetch=False))
            bytes_by_link[link.name] = (
                bytes_by_link.get(link.name, 0.0) + new_part
            )
            progress += new_part

    while progress < total_bytes or refetch_left > 0:
        rate = link.delivered_rate_bps
        need = refetch_left + (total_bytes - progress)
        finish_dt = need / rate
        if ei < len(events) and events[ei].at_s < t + finish_dt:
            ev = events[ei]
            ei += 1
            deliver(min(need, max(0.0, ev.at_s - t) * rate))
            t = max(t, ev.at_s)
            if isinstance(ev, RateStep):
                new_link = ev.link
                if new_link.name != link.name:
                    rate_steps += 1
                    link = new_link
            elif isinstance(ev, Stall):
                steps.append(DeadSegment("stall", ev.duration_s, link))
                stall_s += ev.duration_s
                stalls += 1
                t += ev.duration_s
            else:  # Outage
                steps.append(DeadSegment("outage", ev.duration_s, link))
                outage_s += ev.duration_s
                outages += 1
                t += ev.duration_s
                if ev.reassoc_s > 0:
                    steps.append(DeadSegment("reassoc", ev.reassoc_s, link))
                    reassoc_s += ev.reassoc_s
                    t += ev.reassoc_s
                if resume is not None:
                    point = min(progress, max(0.0, resume.restart_point(progress)))
                    if resume.handshake_s > 0:
                        steps.append(
                            DeadSegment("resume", resume.handshake_s, link)
                        )
                        t += resume.handshake_s
                    handshakes += 1
                else:
                    point = 0.0  # no range requests: restart from zero
                refetch_left = progress - point
                refetched += refetch_left
        else:
            deliver(need)
            t += finish_dt
    stats = FaultStats(
        rate_steps=rate_steps,
        outages=outages,
        stalls=stalls,
        resume_handshakes=handshakes,
        refetched_bytes=refetched,
        outage_s=outage_s,
        reassoc_s=reassoc_s,
        stall_s=stall_s,
        bytes_by_link=bytes_by_link,
    )
    return TransferPlan(
        steps=tuple(steps), total_bytes=float(total_bytes), stats=stats
    )


def link_at(
    timeline: FaultTimeline, base_link: LinkConfig, at_bytes: float,
    total_bytes: float, resume=None,
) -> LinkConfig:
    """The operating point delivering byte ``at_bytes`` of a transfer.

    Maps a byte offset (of *unique* payload progress) to the link rung
    in force when that byte first arrives — what the block-by-block
    adaptive re-evaluation needs to re-run Equation 6 per block.
    """
    plan = plan_transfer(total_bytes, timeline, base_link, resume)
    seen = 0.0
    last = base_link
    for step in plan.steps:
        if not isinstance(step, DeliverySegment) or step.refetch:
            continue
        seen += step.n_bytes
        last = step.link
        if seen > at_bytes:
            return step.link
    return last


__all__ = [
    "DEFAULT_REASSOC_S",
    "RateStep",
    "Outage",
    "Stall",
    "FaultEvent",
    "FaultTimeline",
    "DeliverySegment",
    "DeadSegment",
    "PlanStep",
    "FaultStats",
    "TransferPlan",
    "plan_transfer",
    "link_at",
]
