"""Aggregate receive planning on top of the link model.

A :class:`ReceivePlan` is the closed-form summary (active time, idle
time, per-block boundaries) that both the analytic session evaluator and
the energy model consume.  Block boundaries follow the paper's 0.128 MB
compression buffer (Equation 4), which is also where the interleaving
scheme's first-block idle time ti'' comes from: the gaps while the first
compressed block arrives cannot be filled with decompression work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import units
from repro.errors import ModelError
from repro.network.wlan import LinkConfig


@dataclass(frozen=True)
class BlockArrival:
    """Receive timing of one compressed block."""

    index: int
    compressed_bytes: int
    raw_bytes: int
    active_s: float
    idle_s: float

    @property
    def total_s(self) -> float:
        """Active plus idle receive time of the block."""
        return self.active_s + self.idle_s


@dataclass(frozen=True)
class ReceivePlan:
    """Closed-form receive timing for one transfer."""

    link: LinkConfig
    total_bytes: int
    blocks: List[BlockArrival]

    @property
    def total_time_s(self) -> float:
        """Total receive wall time."""
        return sum(b.total_s for b in self.blocks)

    @property
    def active_time_s(self) -> float:
        """Time actively receiving."""
        return sum(b.active_s for b in self.blocks)

    @property
    def idle_time_s(self) -> float:
        """CPU-idle time between packets."""
        return sum(b.idle_s for b in self.blocks)

    @property
    def first_block_idle_s(self) -> float:
        """ti'' of Equation 4: idle while the first block arrives."""
        if not self.blocks:
            return 0.0
        return self.blocks[0].idle_s

    @property
    def tail_idle_s(self) -> float:
        """ti' of Equation 4: idle while the remaining blocks arrive."""
        return self.idle_time_s - self.first_block_idle_s


def plan_receive(
    compressed_bytes: int,
    raw_bytes: int,
    link: LinkConfig,
    block_bytes: int = units.BLOCK_SIZE_BYTES,
) -> ReceivePlan:
    """Split a transfer into block arrivals on ``link``.

    Blocks are ``block_bytes`` of *raw* data each — the paper's 0.128 MB
    compression buffer holds raw data, so block i's compressed share is
    ``0.128 * sc / s`` under a uniform compression factor (Equation 4).
    For uncompressed transfers pass the same value for both sizes.
    """
    if compressed_bytes < 0 or raw_bytes < 0:
        raise ModelError("sizes must be non-negative")
    if block_bytes <= 0:
        raise ModelError("block size must be positive")
    blocks: List[BlockArrival] = []
    if raw_bytes == 0:
        return ReceivePlan(link=link, total_bytes=compressed_bytes, blocks=blocks)
    remaining_raw = raw_bytes
    index = 0
    while remaining_raw > 0:
        raw_chunk = min(block_bytes, remaining_raw)
        comp_share = compressed_bytes * raw_chunk / raw_bytes
        total = link.download_time_s(comp_share)
        active = total * (1.0 - link.idle_fraction)
        blocks.append(
            BlockArrival(
                index=index,
                compressed_bytes=int(round(comp_share)),
                raw_bytes=raw_chunk,
                active_s=active,
                idle_s=total - active,
            )
        )
        remaining_raw -= raw_chunk
        index += 1
    return ReceivePlan(link=link, total_bytes=compressed_bytes, blocks=blocks)
