"""802.11b channel conditions and rate adaptation.

"The bit rate (for both send and receive) can be adjusted downward in a
few different ways, by changing the settings of the access point, by
increasing the communication distance, or by increasing structure
obstacles between the two antennas" (Section 2).  This module models
that: a path-loss-style channel quality that falls with distance and
obstacles, the 802.11b rate ladder (11 / 5.5 / 2 / 1 Mb/s), and the
resulting :class:`~repro.network.wlan.LinkConfig` operating points.

Effective application throughput and CPU-idle fraction at each rung are
anchored to the paper's two measured points (11 Mb/s -> 0.6 MB/s with
40% idle; 2 Mb/s -> 180 KiB/s with 81.5% idle) and interpolated on the
invariant both points share: active CPU time per byte is constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import units
from repro.errors import ModelError
from repro.network.wlan import LinkConfig

#: The 802.11b rate ladder in Mb/s, highest first.
RATE_LADDER_MBPS = (11.0, 5.5, 2.0, 1.0)

#: Measured anchor points: nominal Mb/s -> (effective B/s, idle fraction).
_ANCHORS = {
    11.0: (units.EFFECTIVE_RATE_11MBPS_BPS, units.IDLE_FRACTION_11MBPS),
    2.0: (units.EFFECTIVE_RATE_2MBPS_BPS, units.IDLE_FRACTION_2MBPS),
}

#: Per-byte active CPU time implied by the 11 Mb/s anchor (seconds).
_ACTIVE_S_PER_BYTE = (1.0 - units.IDLE_FRACTION_11MBPS) / units.EFFECTIVE_RATE_11MBPS_BPS


def effective_rate_bps(nominal_mbps: float) -> float:
    """Application-level throughput at a nominal rate.

    Anchored to the measured points; other rungs scale the 11 Mb/s MAC
    efficiency (0.458 bytes per bit-of-nominal) with a mild penalty at
    low rates, passing through the 2 Mb/s measurement.
    """
    if nominal_mbps in _ANCHORS:
        return _ANCHORS[nominal_mbps][0]
    # Efficiency (effective bytes/s per nominal bit/s) at the anchors:
    # 11 -> 0.0572, 2 -> 0.0922; lower rates carry less per-packet
    # overhead relative to airtime, so efficiency rises as rate falls.
    e11 = _ANCHORS[11.0][0] / 11e6
    e2 = _ANCHORS[2.0][0] / 2e6
    # Log-linear interpolation/extrapolation in nominal rate.
    import math

    t = (math.log(nominal_mbps) - math.log(2.0)) / (math.log(11.0) - math.log(2.0))
    eff = math.exp(math.log(e2) + t * (math.log(e11) - math.log(e2)))
    return eff * nominal_mbps * 1e6


def idle_fraction(nominal_mbps: float) -> float:
    """CPU-idle share of download wall time at a nominal rate.

    Derived from the constant active-time-per-byte invariant, which
    reproduces the measured 81.5% at 2 Mb/s from the 11 Mb/s anchor.
    """
    rate = effective_rate_bps(nominal_mbps)
    frac = 1.0 - _ACTIVE_S_PER_BYTE * rate
    return min(0.95, max(0.0, frac))


def link_for_rate(nominal_mbps: float, power_save: bool = False) -> LinkConfig:
    """A LinkConfig for one rung of the rate ladder."""
    if nominal_mbps not in RATE_LADDER_MBPS:
        raise ModelError(
            f"nominal rate {nominal_mbps} not in 802.11b ladder {RATE_LADDER_MBPS}"
        )
    return LinkConfig(
        name=f"{nominal_mbps:g}mbps",
        nominal_rate_bps=nominal_mbps * 1e6,
        effective_rate_bps=effective_rate_bps(nominal_mbps),
        idle_fraction=idle_fraction(nominal_mbps),
        power_save=power_save,
    )


@dataclass(frozen=True)
class ChannelCondition:
    """Distance/obstacle environment between device and access point."""

    distance_m: float
    #: Each obstacle (wall, floor) knocks quality down a fixed step.
    obstacles: int = 0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ModelError("distance must be positive")
        if self.obstacles < 0:
            raise ModelError("obstacles must be non-negative")

    @property
    def quality_db(self) -> float:
        """A link-margin proxy: free-space-style falloff plus obstacles.

        Calibrated so the rate thresholds land at plausible 802.11b
        ranges (11 Mb/s to ~35 m open air, 1 Mb/s to ~120 m).
        """
        import math

        path_loss = 20.0 * math.log10(self.distance_m)
        return 62.0 - path_loss - 6.0 * self.obstacles


#: Minimum link margin (dB) needed per rung, highest rate first.
_RATE_THRESHOLDS_DB: List[Tuple[float, float]] = [
    (11.0, 31.0),
    (5.5, 28.0),
    (2.0, 22.0),
    (1.0, 19.0),
]


def select_rate(condition: ChannelCondition) -> Optional[float]:
    """The highest rung the channel supports, or None if out of range."""
    for rate, needed in _RATE_THRESHOLDS_DB:
        if condition.quality_db >= needed:
            return rate
    return None


def link_for_condition(
    condition: ChannelCondition, power_save: bool = False
) -> LinkConfig:
    """Rate-adapted link for a channel condition.

    Raises :class:`~repro.errors.ModelError` when the device is out of
    range entirely.
    """
    rate = select_rate(condition)
    if rate is None:
        raise ModelError(
            f"no 802.11b rate sustainable at {condition.distance_m:.0f} m "
            f"with {condition.obstacles} obstacles"
        )
    return link_for_rate(rate, power_save)
