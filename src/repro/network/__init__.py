"""Wireless-LAN substrate: 802.11b link, packets, loss, ARQ, corruption,
and mid-session fault timelines (rate steps, outages, stalls)."""

from repro.network.wlan import LinkConfig, LINK_11MBPS, LINK_2MBPS
from repro.network.packets import Packetizer, PacketSchedule
from repro.network.link import ReceivePlan, plan_receive
from repro.network.corruption import (
    BitFlipCorruption,
    CompositeCorruption,
    CorruptionModel,
    GilbertBurstCorruption,
    NoCorruption,
    ProxyStallCorruption,
    TruncationCorruption,
    block_corrupt_probability,
    residual_ber_for_condition,
)
from repro.network.loss import (
    EpisodeLoss,
    GilbertElliottLoss,
    LossEpisode,
    LossModel,
    NoLoss,
    UniformLoss,
    loss_model_for_condition,
    loss_rate_for_condition,
)
from repro.network.arq import ArqConfig, LinkStats, StopAndWaitLink
from repro.network.timeline import (
    FaultStats,
    FaultTimeline,
    Outage,
    RateStep,
    Stall,
    link_at,
    plan_transfer,
)
from repro.network.wlan import LADDER_MBPS, ladder_link

__all__ = [
    "LinkConfig",
    "LINK_11MBPS",
    "LINK_2MBPS",
    "Packetizer",
    "PacketSchedule",
    "ReceivePlan",
    "plan_receive",
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "GilbertElliottLoss",
    "LossEpisode",
    "EpisodeLoss",
    "loss_rate_for_condition",
    "loss_model_for_condition",
    "ArqConfig",
    "LinkStats",
    "StopAndWaitLink",
    "CorruptionModel",
    "NoCorruption",
    "BitFlipCorruption",
    "GilbertBurstCorruption",
    "TruncationCorruption",
    "ProxyStallCorruption",
    "CompositeCorruption",
    "block_corrupt_probability",
    "residual_ber_for_condition",
    "FaultTimeline",
    "FaultStats",
    "RateStep",
    "Outage",
    "Stall",
    "plan_transfer",
    "link_at",
    "LADDER_MBPS",
    "ladder_link",
]
