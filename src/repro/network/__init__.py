"""Wireless-LAN substrate: 802.11b link model, packetization, timelines."""

from repro.network.wlan import LinkConfig, LINK_11MBPS, LINK_2MBPS
from repro.network.packets import Packetizer, PacketSchedule
from repro.network.link import ReceivePlan, plan_receive

__all__ = [
    "LinkConfig",
    "LINK_11MBPS",
    "LINK_2MBPS",
    "Packetizer",
    "PacketSchedule",
    "ReceivePlan",
    "plan_receive",
]
