"""Packet-loss models for a degraded 802.11b link.

The paper measures an otherwise clean channel, but its own rate-ladder
discussion (Section 2) describes the link degrading with distance and
obstacles.  Under loss the MAC retransmits, so every lost packet costs
the device a second (third, ...) reception plus timeout idle time —
which is exactly why compression grows *more* attractive on a lossy
link: fewer bytes are exposed to retransmission.

Models are seeded and deterministic: :meth:`LossModel.reset` rewinds the
random stream, so a replay with the same seed reproduces the same loss
pattern bit for bit.  Loss decisions are made per transmission *attempt*
(retransmissions roll fresh dice), keyed optionally by the byte offset
of the packet so episodic (burst) models can localise faults within a
transfer.

The channel-quality bridge maps the link margin of
:class:`~repro.network.channel.ChannelCondition` onto a bit-error rate
and from there onto a per-packet loss probability, so "walk away from
the access point" translates directly into "packets start dropping".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ModelError
from repro.network.channel import ChannelCondition, select_rate, _RATE_THRESHOLDS_DB
from repro.network.packets import DEFAULT_PAYLOAD_BYTES

#: Bit-error rate right at a rung's minimum link margin, calibrated so a
#: 1460-byte packet is lost with probability ~0.5 at margin 0.
BER_AT_THRESHOLD = 6e-5

#: Link-margin decibels per decade of bit-error-rate improvement.
BER_DECADE_DB = 5.0


def packet_loss_probability(ber: float, payload_bytes: int) -> float:
    """Per-packet loss probability for an iid bit-error rate.

    A packet survives only if every one of its bits does:
    ``p = 1 - (1 - ber)^(8*bytes)``.
    """
    if not 0 <= ber < 1:
        raise ModelError("bit-error rate must be in [0, 1)")
    if payload_bytes <= 0:
        raise ModelError("payload size must be positive")
    return 1.0 - (1.0 - ber) ** (8 * payload_bytes)


def loss_rate_for_condition(
    condition: ChannelCondition, payload_bytes: int = DEFAULT_PAYLOAD_BYTES
) -> float:
    """Per-packet loss probability implied by a distance/obstacle setting.

    The margin above the selected rung's threshold sets the BER
    (:data:`BER_AT_THRESHOLD` at zero margin, one decade better per
    :data:`BER_DECADE_DB` dB); rate adaptation keeps the margin small
    near each rung boundary, which is where loss concentrates.
    """
    rate = select_rate(condition)
    if rate is None:
        raise ModelError(
            f"no 802.11b rate sustainable at {condition.distance_m:.0f} m "
            f"with {condition.obstacles} obstacles"
        )
    needed = dict(_RATE_THRESHOLDS_DB)[rate]
    margin_db = condition.quality_db - needed
    ber = BER_AT_THRESHOLD * 10.0 ** (-margin_db / BER_DECADE_DB)
    return packet_loss_probability(min(ber, 0.999999), payload_bytes)


class LossModel:
    """Base class: seeded, deterministic per-attempt loss decisions."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Rewind the random stream (start of a fresh replay)."""
        self._rng = random.Random(self.seed)

    def attempt_lost(self, byte_offset: int = 0) -> bool:
        """Is this transmission attempt lost?  Subclasses decide."""
        raise NotImplementedError

    def expected_rate(self, total_bytes: Optional[int] = None) -> float:
        """Mean per-packet loss probability over a transfer.

        ``total_bytes`` lets episodic models weight their episodes by the
        share of the transfer they cover; stationary models ignore it.
        """
        raise NotImplementedError


class NoLoss(LossModel):
    """A lossless link (the paper's measurement setup)."""

    def attempt_lost(self, byte_offset: int = 0) -> bool:
        return False

    def expected_rate(self, total_bytes: Optional[int] = None) -> float:
        return 0.0


class UniformLoss(LossModel):
    """Independent (iid) per-attempt packet loss."""

    def __init__(self, rate: float, seed: int = 1) -> None:
        if not 0 <= rate < 1:
            raise ModelError("loss rate must be in [0, 1)")
        super().__init__(seed)
        self.rate = rate

    def attempt_lost(self, byte_offset: int = 0) -> bool:
        if self.rate == 0.0:
            return False
        return self._rng.random() < self.rate

    def expected_rate(self, total_bytes: Optional[int] = None) -> float:
        return self.rate


class GilbertElliottLoss(LossModel):
    """Two-state Markov (bursty) loss: a good and a bad channel state.

    Each attempt first advances the state machine, then draws loss at
    the state's rate.  The stationary loss rate is the state-occupancy
    weighted mix, which is what the analytic expectation uses.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        good_loss: float = 0.001,
        bad_loss: float = 0.5,
        seed: int = 1,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ):
            if not 0 < p <= 1:
                raise ModelError(f"{name} must be in (0, 1]")
        for name, p in (("good_loss", good_loss), ("bad_loss", bad_loss)):
            if not 0 <= p < 1:
                raise ModelError(f"{name} must be in [0, 1)")
        super().__init__(seed)
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._bad = False

    def reset(self) -> None:
        super().reset()
        self._bad = False

    def attempt_lost(self, byte_offset: int = 0) -> bool:
        if self._bad:
            if self._rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._bad = True
        rate = self.bad_loss if self._bad else self.good_loss
        return self._rng.random() < rate

    def expected_rate(self, total_bytes: Optional[int] = None) -> float:
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return (1.0 - pi_bad) * self.good_loss + pi_bad * self.bad_loss


@dataclass(frozen=True)
class LossEpisode:
    """A byte-interval of elevated loss (fault injection)."""

    start_byte: int
    end_byte: int
    rate: float

    def __post_init__(self) -> None:
        if self.start_byte < 0 or self.end_byte <= self.start_byte:
            raise ModelError("episode must cover a positive byte range")
        if not 0 <= self.rate < 1:
            raise ModelError("episode loss rate must be in [0, 1)")

    def covers(self, byte_offset: int) -> bool:
        """Does the episode apply at this transfer offset?"""
        return self.start_byte <= byte_offset < self.end_byte

    def overlap_bytes(self, total_bytes: int) -> int:
        """Bytes of a ``total_bytes`` transfer inside the episode."""
        return max(0, min(self.end_byte, total_bytes) - self.start_byte)


class EpisodeLoss(LossModel):
    """Fault injector: loss episodes over a base model.

    Inside an episode's byte range the episode rate applies; elsewhere
    the base model decides.  Sessions use this to inject a mid-download
    fade (e.g. walking behind a wall) and measure the energy overhead.
    """

    def __init__(
        self,
        episodes: Sequence[LossEpisode],
        base: Optional[LossModel] = None,
        seed: int = 1,
    ) -> None:
        super().__init__(seed)
        self.episodes: List[LossEpisode] = list(episodes)
        self.base = base or NoLoss(seed=seed)

    def reset(self) -> None:
        super().reset()
        self.base.reset()

    def attempt_lost(self, byte_offset: int = 0) -> bool:
        for ep in self.episodes:
            if ep.covers(byte_offset):
                return self._rng.random() < ep.rate
        return self.base.attempt_lost(byte_offset)

    def expected_rate(self, total_bytes: Optional[int] = None) -> float:
        base_rate = self.base.expected_rate(total_bytes)
        if not total_bytes:
            # Without a transfer length the episodes' weight is unknown;
            # report the worst case so expectations stay conservative.
            rates = [ep.rate for ep in self.episodes]
            return max([base_rate] + rates)
        covered = 0
        weighted = 0.0
        for ep in self.episodes:
            n = ep.overlap_bytes(total_bytes)
            covered += n
            weighted += n * ep.rate
        covered = min(covered, total_bytes)
        weighted += (total_bytes - covered) * base_rate
        return weighted / total_bytes


def loss_model_for_condition(
    condition: ChannelCondition,
    seed: int = 1,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    bursty: bool = False,
) -> LossModel:
    """A seeded loss model matching a distance/obstacle environment.

    ``bursty=True`` wraps the channel-derived rate into a Gilbert–Elliott
    process with the same stationary loss rate but clustered errors
    (fading is bursty in practice); otherwise losses are iid.
    """
    rate = loss_rate_for_condition(condition, payload_bytes)
    if rate <= 0:
        return NoLoss(seed=seed)
    if not bursty:
        return UniformLoss(rate, seed=seed)
    # Keep the stationary rate: with bad-state loss 0.5 and dwell
    # parameters fixed, solve the good->bad entry probability.
    p_bad_to_good = 0.2
    bad_loss = max(0.5, rate)
    good_loss = rate * 0.1
    # pi_bad * bad_loss + (1 - pi_bad) * good_loss = rate
    target_pi_bad = (rate - good_loss) / (bad_loss - good_loss)
    target_pi_bad = min(max(target_pi_bad, 1e-9), 1.0 - 1e-9)
    p_good_to_bad = p_bad_to_good * target_pi_bad / (1.0 - target_pi_bad)
    return GilbertElliottLoss(
        p_good_to_bad=min(1.0, p_good_to_bad),
        p_bad_to_good=p_bad_to_good,
        good_loss=good_loss,
        bad_loss=bad_loss,
        seed=seed,
    )


def _stationary_check(model: GilbertElliottLoss, tol: float = 1e-9) -> float:
    """Internal: stationary bad-state occupancy (used by tests)."""
    s = model.p_good_to_bad + model.p_bad_to_good
    if s <= tol:
        raise ModelError("degenerate Markov chain")
    return model.p_good_to_bad / s


__all__ = [
    "BER_AT_THRESHOLD",
    "BER_DECADE_DB",
    "packet_loss_probability",
    "loss_rate_for_condition",
    "loss_model_for_condition",
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "GilbertElliottLoss",
    "LossEpisode",
    "EpisodeLoss",
]
