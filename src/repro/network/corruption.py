"""Corruption fault injectors for data that *arrives* damaged.

The loss models in :mod:`repro.network.loss` drop whole packets and the
MAC retransmits them; this module covers the complementary fault class:
bytes that are delivered but wrong.  Residual bit errors slip past the
802.11 frame check at a small but non-zero rate, proxies stall or crash
mid-transfer, and intermediaries truncate streams.  Raw downloads mostly
shrug these off (a flipped bit damages one pixel or one character), but
one flipped bit inside a DEFLATE/BWT block poisons the whole block —
which is why corruption, unlike loss, pushes Equation 6 *against*
compression.

Models are seeded and deterministic, mirroring the loss models: a
``reset()`` rewinds the random stream so the DES replay and the byte
data path reproduce the same fault pattern bit for bit.  Each model
exposes two faces:

* a **data path** — ``corrupt(data, byte_offset)`` returns the damaged
  bytes a receiver would see, used by the recovery session and the
  property tests;
* **closed-form expectations** — ``block_corrupt_rate(block_bytes)``
  gives the probability that a delivered block of that size is damaged,
  which is what the analytic engine and the corruption-aware Equation 6
  integrate.

Transient models (truncation, proxy stall) damage only the first
delivery: a re-fetch sees clean data, so their ``retry_corrupt_rate``
is zero.  Persistent models (residual bit errors) roll fresh dice on
every re-fetch.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import random

from repro.errors import ModelError
from repro.network.channel import ChannelCondition
from repro.network.loss import BER_AT_THRESHOLD, loss_rate_for_condition

#: Fraction of channel bit errors that slip past the 802.11 CRC-32 frame
#: check undetected.  A 32-bit CRC misses a damaged frame with
#: probability ~2^-32 per error pattern; real measured residual rates
#: are dominated by undetected errors in headers/handshakes and sit far
#: above the combinatorial floor, so the bridge uses a conservative
#: escape fraction.
RESIDUAL_ESCAPE_FRACTION = 1e-4


def block_corrupt_probability(ber: float, block_bytes: int) -> float:
    """Probability a block of ``block_bytes`` contains >= 1 bit error.

    The dual of :func:`repro.network.loss.packet_loss_probability`:
    ``q = 1 - (1 - ber)^(8*bytes)`` for iid residual bit errors.
    """
    if not 0 <= ber < 1:
        raise ModelError("bit-error rate must be in [0, 1)")
    if block_bytes <= 0:
        raise ModelError("block size must be positive")
    return 1.0 - (1.0 - ber) ** (8 * block_bytes)


def residual_ber_for_condition(
    condition: ChannelCondition,
    escape_fraction: float = RESIDUAL_ESCAPE_FRACTION,
) -> float:
    """Residual (post-CRC) bit-error rate for a distance/obstacle setting.

    The channel bridge in :mod:`repro.network.loss` maps link margin to a
    raw BER; the MAC's frame check catches almost all of it, and this
    scales what remains by ``escape_fraction``.
    """
    # Reuse the loss bridge's margin->BER mapping via its packet-loss
    # probability: p = 1-(1-ber)^(8n)  =>  ber = 1-(1-p)^(1/(8n)).
    n = 1460
    p = loss_rate_for_condition(condition, payload_bytes=n)
    ber = 1.0 - (1.0 - p) ** (1.0 / (8 * n))
    return min(ber * escape_fraction, BER_AT_THRESHOLD)


class CorruptionModel:
    """Base class: seeded, deterministic byte-stream damage."""

    #: Transient faults damage only the first delivery; a re-fetch of
    #: the same bytes arrives clean.
    transient: bool = False

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Rewind the random stream (start of a fresh replay)."""
        self._rng = random.Random(self.seed)

    # -- data path --------------------------------------------------------

    def begin_transfer(self, total_bytes: int) -> None:
        """Arm the model for a fresh transfer of ``total_bytes``.

        Transient models use the hint to place their fault (e.g. a
        truncation cut at a fraction of the *transfer*, not of each
        chunk) and to forget which chunks were already damaged once.
        Stationary models ignore it.
        """

    def corrupt(self, data: bytes, byte_offset: int = 0) -> bytes:
        """Return the bytes a receiver sees after channel damage."""
        raise NotImplementedError

    # -- closed-form expectations ----------------------------------------

    def block_corrupt_rate(self, block_bytes: int) -> float:
        """Probability a delivered block of this size is damaged."""
        raise NotImplementedError

    def retry_corrupt_rate(self, block_bytes: int) -> float:
        """Damage probability for a re-fetch of one block."""
        if self.transient:
            return 0.0
        return self.block_corrupt_rate(block_bytes)

    def stall_s(self) -> float:
        """Extra idle seconds the fault injects (proxy stall/crash)."""
        return 0.0


class NoCorruption(CorruptionModel):
    """A clean channel (the paper's measurement setup)."""

    def corrupt(self, data: bytes, byte_offset: int = 0) -> bytes:
        return data

    def block_corrupt_rate(self, block_bytes: int) -> float:
        return 0.0


class BitFlipCorruption(CorruptionModel):
    """Independent (iid) residual bit flips at a fixed rate.

    The data path skips between flips with geometric gaps rather than
    rolling per bit, so multi-megabyte streams at realistic residual
    rates (1e-9..1e-5) cost O(flips), not O(bits).
    """

    def __init__(self, ber: float, seed: int = 1) -> None:
        if not 0 <= ber < 1:
            raise ModelError("bit-error rate must be in [0, 1)")
        super().__init__(seed)
        self.ber = ber
        self.bits_flipped = 0

    def reset(self) -> None:
        super().reset()
        self.bits_flipped = 0

    def _gap_bits(self) -> int:
        """Geometric gap to the next flipped bit (inclusive count)."""
        u = self._rng.random()
        if u <= 0.0:
            return 1
        return int(math.log(u) / math.log1p(-self.ber)) + 1

    def corrupt(self, data: bytes, byte_offset: int = 0) -> bytes:
        if self.ber == 0.0 or not data:
            return data
        nbits = 8 * len(data)
        out = None
        position = self._gap_bits() - 1
        while position < nbits:
            if out is None:
                out = bytearray(data)
            out[position >> 3] ^= 1 << (position & 7)
            self.bits_flipped += 1
            position += self._gap_bits()
        return bytes(out) if out is not None else data

    def block_corrupt_rate(self, block_bytes: int) -> float:
        if self.ber == 0.0:
            return 0.0
        return block_corrupt_probability(self.ber, block_bytes)


class GilbertBurstCorruption(CorruptionModel):
    """Two-state (bursty) residual bit errors, Gilbert-style.

    The channel dwells in a good and a bad state with geometric dwell
    times measured in *bytes*; each state flips bits at its own rate.
    Bursts model fading and interference: the same stationary BER as an
    iid model, but errors cluster — fewer blocks are hit, each harder.

    The closed-form block rate uses the slow-fading approximation
    (state dwell >> block length): a block sees one state, weighted by
    stationary occupancy.
    """

    def __init__(
        self,
        good_ber: float = 0.0,
        bad_ber: float = 1e-4,
        mean_good_bytes: float = 512 * 1024,
        mean_bad_bytes: float = 16 * 1024,
        seed: int = 1,
    ) -> None:
        for name, b in (("good_ber", good_ber), ("bad_ber", bad_ber)):
            if not 0 <= b < 1:
                raise ModelError(f"{name} must be in [0, 1)")
        for name, m in (
            ("mean_good_bytes", mean_good_bytes),
            ("mean_bad_bytes", mean_bad_bytes),
        ):
            if m <= 0:
                raise ModelError(f"{name} must be positive")
        super().__init__(seed)
        self.good_ber = good_ber
        self.bad_ber = bad_ber
        self.mean_good_bytes = mean_good_bytes
        self.mean_bad_bytes = mean_bad_bytes
        self._bad = False
        self._dwell_left = 0
        self.bits_flipped = 0

    def reset(self) -> None:
        super().reset()
        self._bad = False
        self._dwell_left = 0
        self.bits_flipped = 0

    def _draw_dwell(self) -> int:
        mean = self.mean_bad_bytes if self._bad else self.mean_good_bytes
        return max(1, int(self._rng.expovariate(1.0 / mean)))

    def corrupt(self, data: bytes, byte_offset: int = 0) -> bytes:
        if not data:
            return data
        out = bytearray(data)
        touched = False
        pos = 0
        while pos < len(out):
            if self._dwell_left <= 0:
                self._dwell_left = self._draw_dwell()
            span = min(self._dwell_left, len(out) - pos)
            ber = self.bad_ber if self._bad else self.good_ber
            if ber > 0.0:
                bit = 0
                nbits = 8 * span
                while True:
                    u = self._rng.random()
                    gap = (
                        int(math.log(u) / math.log1p(-ber)) + 1
                        if u > 0.0
                        else 1
                    )
                    bit += gap
                    if bit > nbits:
                        break
                    index = 8 * pos + (bit - 1)
                    out[index >> 3] ^= 1 << (index & 7)
                    self.bits_flipped += 1
                    touched = True
            pos += span
            self._dwell_left -= span
            if self._dwell_left <= 0:
                self._bad = not self._bad
        return bytes(out) if touched else data

    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of bytes delivered in the bad state."""
        total = self.mean_good_bytes + self.mean_bad_bytes
        return self.mean_bad_bytes / total

    def stationary_ber(self) -> float:
        """Occupancy-weighted mean residual bit-error rate."""
        pi_bad = self.stationary_bad_fraction()
        return pi_bad * self.bad_ber + (1.0 - pi_bad) * self.good_ber

    def block_corrupt_rate(self, block_bytes: int) -> float:
        pi_bad = self.stationary_bad_fraction()
        q_bad = block_corrupt_probability(self.bad_ber, block_bytes)
        q_good = block_corrupt_probability(self.good_ber, block_bytes)
        return pi_bad * q_bad + (1.0 - pi_bad) * q_good


class TruncationCorruption(CorruptionModel):
    """The stream stops at a fraction of its length (transient).

    Models an intermediary that closes the connection early: the prefix
    arrives intact, the tail never arrives.  A re-fetch succeeds, so the
    fault is transient.
    """

    transient = True

    def __init__(self, deliver_fraction: float, seed: int = 1) -> None:
        if not 0 <= deliver_fraction < 1:
            raise ModelError("deliver_fraction must be in [0, 1)")
        super().__init__(seed)
        self.deliver_fraction = deliver_fraction
        self._cut: Optional[int] = None
        self._frontier = 0
        self._last_offset = 0
        self._spent = False

    def reset(self) -> None:
        super().reset()
        self._cut = None
        self._frontier = 0
        self._last_offset = 0
        self._spent = False

    def begin_transfer(self, total_bytes: int) -> None:
        self._cut = int(total_bytes * self.deliver_fraction)
        self._frontier = 0
        self._last_offset = 0
        self._spent = False

    def corrupt(self, data: bytes, byte_offset: int = 0) -> bytes:
        # One stall per transfer.  The first sequential pass loses its
        # tail past the cut; a chunk re-fetch (delivery at or behind the
        # frontier) arrives clean; a delivery *behind* the previous one
        # is a whole-transfer restart from the recovered peer, after
        # which everything is clean.
        if self._spent:
            return data
        if byte_offset < self._last_offset:
            self._spent = True
            return data
        self._last_offset = byte_offset
        if byte_offset < self._frontier:
            return data
        self._frontier = byte_offset + len(data)
        cut = (
            self._cut
            if self._cut is not None
            else byte_offset + int(len(data) * self.deliver_fraction)
        )
        if byte_offset + len(data) <= cut:
            return data
        return data[: max(0, cut - byte_offset)]

    def block_corrupt_rate(self, block_bytes: int) -> float:
        # A block past the cut is missing entirely; over a whole
        # transfer the damaged fraction is the undelivered tail.
        return 1.0 - self.deliver_fraction


class ProxyStallCorruption(TruncationCorruption):
    """Proxy stalls (or crashes) mid-transfer, then the tail is lost.

    The device receives a clean prefix, idles ``stall_seconds`` waiting
    on a silent peer, and must re-fetch the rest.  Like truncation the
    fault is transient — the restarted proxy serves clean data — but it
    adds wall-clock idle time that the recovery accounting charges at
    gap power.
    """

    def __init__(
        self,
        deliver_fraction: float = 0.5,
        stall_seconds: float = 2.0,
        seed: int = 1,
    ) -> None:
        if stall_seconds < 0:
            raise ModelError("stall_seconds must be non-negative")
        super().__init__(deliver_fraction, seed=seed)
        self.stall_seconds = stall_seconds

    def stall_s(self) -> float:
        return self.stall_seconds


class CompositeCorruption(CorruptionModel):
    """Several fault injectors applied to the same transfer.

    The data path applies each model in sequence; the closed-form block
    rate combines them as independent faults, and the retry rate keeps
    only the persistent members (transient faults clear on re-fetch).
    """

    def __init__(
        self, models: Sequence[CorruptionModel], seed: int = 1
    ) -> None:
        if not models:
            raise ModelError("composite needs at least one model")
        super().__init__(seed)
        self.models: List[CorruptionModel] = list(models)

    def reset(self) -> None:
        super().reset()
        for model in self.models:
            model.reset()

    def begin_transfer(self, total_bytes: int) -> None:
        for model in self.models:
            model.begin_transfer(total_bytes)

    def corrupt(self, data: bytes, byte_offset: int = 0) -> bytes:
        for model in self.models:
            data = model.corrupt(data, byte_offset)
        return data

    def block_corrupt_rate(self, block_bytes: int) -> float:
        survive = 1.0
        for model in self.models:
            survive *= 1.0 - model.block_corrupt_rate(block_bytes)
        return 1.0 - survive

    def retry_corrupt_rate(self, block_bytes: int) -> float:
        survive = 1.0
        for model in self.models:
            survive *= 1.0 - model.retry_corrupt_rate(block_bytes)
        return 1.0 - survive

    def stall_s(self) -> float:
        return sum(model.stall_s() for model in self.models)


__all__ = [
    "RESIDUAL_ESCAPE_FRACTION",
    "block_corrupt_probability",
    "residual_ber_for_condition",
    "CorruptionModel",
    "NoCorruption",
    "BitFlipCorruption",
    "GilbertBurstCorruption",
    "TruncationCorruption",
    "ProxyStallCorruption",
    "CompositeCorruption",
]
