"""Stop-and-wait ARQ over a lossy link (802.11 MAC retransmission).

The 802.11 MAC acknowledges every unicast frame and retransmits on a
missing ACK, up to a retry limit, backing off between attempts.  This
module models that in three interchangeable forms:

- closed-form expectations (:meth:`ArqConfig.expected_transmissions`,
  :func:`expected_overhead`) for the analytic engine and the loss-aware
  Equation 6 thresholds — a truncated-geometric attempt count;
- a deterministic seeded replay (:func:`expand_schedule`) that turns a
  :class:`~repro.network.packets.PacketSchedule` into per-attempt timing
  for the discrete-event engine;
- a data path (:class:`StopAndWaitLink`) that actually carries payload
  bytes through the lossy channel, for round-trip property tests.

Every retransmitted byte and every timeout is charged to the device: a
failed attempt still occupies the radio for the packet's airtime, and
the sender waits ``timeout * backoff**failures`` before trying again.
Exceeding the retry limit raises
:class:`~repro.errors.LinkDroppedError` — the MAC gives up, exactly as a
real card reports a TX excessive-retry failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import units
from repro.errors import LinkDroppedError, ModelError
from repro.network.loss import LossModel, NoLoss
from repro.network.packets import (
    DEFAULT_PAYLOAD_BYTES,
    PacketSchedule,
    PacketTiming,
)


@dataclass(frozen=True)
class ArqConfig:
    """Stop-and-wait retransmission parameters.

    Attributes:
        enabled: with False the link makes exactly one attempt per
            packet (any loss is terminal), matching the seed behavior.
        max_retries: retransmissions allowed after the first attempt
            (the 802.11 long-retry limit defaults to 7 for large frames).
        timeout_s: wait before the first retransmission.
        backoff: multiplier applied to the timeout per further failure
            (the MAC doubles its contention window).
    """

    enabled: bool = True
    max_retries: int = 7
    timeout_s: float = 0.001
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ModelError("max_retries must be non-negative")
        if self.timeout_s < 0:
            raise ModelError("timeout must be non-negative")
        if self.backoff < 1.0:
            raise ModelError("backoff multiplier must be >= 1")

    @classmethod
    def disabled(cls) -> "ArqConfig":
        """No retransmission at all (one attempt per packet)."""
        return cls(enabled=False, max_retries=0)

    @property
    def max_attempts(self) -> int:
        """Transmissions allowed per packet, first attempt included."""
        return 1 + (self.max_retries if self.enabled else 0)

    def timeout_for_failure(self, failures: int) -> float:
        """Wait after the ``failures``-th failure (1-indexed)."""
        if failures < 1:
            raise ModelError("failures count must be >= 1")
        return self.timeout_s * self.backoff ** (failures - 1)

    # -- closed-form expectations (per packet, loss probability p) ----------

    def expected_transmissions(self, p: float) -> float:
        """E[attempts] for per-attempt loss probability ``p``.

        Truncated geometric: (1 - p^A) / (1 - p) with A attempts allowed;
        monotonically nondecreasing in both ``p`` and the retry limit.
        """
        _check_probability(p)
        if p == 0.0:
            return 1.0
        a = self.max_attempts
        return (1.0 - p**a) / (1.0 - p)

    def delivery_probability(self, p: float) -> float:
        """Probability a packet survives within the retry limit."""
        _check_probability(p)
        return 1.0 - p**self.max_attempts

    def expected_retry_wait_s(self, p: float) -> float:
        """E[timeout idle] per packet: attempt i fails with probability
        p^i and, when a retry remains, costs its backed-off timeout."""
        _check_probability(p)
        if p == 0.0:
            return 0.0
        total = 0.0
        for failures in range(1, self.max_attempts):
            total += p**failures * self.timeout_for_failure(failures)
        return total


def _check_probability(p: float) -> None:
    if not 0 <= p < 1:
        raise ModelError("loss probability must be in [0, 1)")


@dataclass(frozen=True)
class LinkStats:
    """Retransmission accounting for one transfer.

    Counts are floats so the analytic engine can report expectations
    with the same type the DES reports integer tallies in.
    """

    payload_bytes: int
    transmitted_bytes: float
    retries: float
    retry_wait_s: float
    delivery_probability: float = 1.0

    @property
    def retransmitted_bytes(self) -> float:
        """Bytes sent beyond the first attempt of each packet."""
        return self.transmitted_bytes - self.payload_bytes

    @property
    def goodput_fraction(self) -> float:
        """Useful share of the bytes that crossed the air."""
        if self.transmitted_bytes <= 0:
            return 1.0
        return self.payload_bytes / self.transmitted_bytes

    def goodput_bps(self, wall_s: float) -> float:
        """Delivered payload bytes per second of wall time."""
        if wall_s <= 0:
            return 0.0
        return self.payload_bytes / wall_s


#: Stats for a lossless transfer (what the seed model implicitly assumes).
def lossless_stats(payload_bytes: int) -> LinkStats:
    """The LinkStats of a transfer that saw no loss at all."""
    return LinkStats(
        payload_bytes=payload_bytes,
        transmitted_bytes=float(payload_bytes),
        retries=0.0,
        retry_wait_s=0.0,
        delivery_probability=1.0,
    )


@dataclass(frozen=True)
class ExpectedOverhead:
    """Expected loss overhead of one transfer (analytic form)."""

    extra_bytes: float
    extra_active_s: float
    extra_gap_s: float
    retry_wait_s: float
    expected_retries: float
    delivery_probability: float

    @property
    def extra_wall_s(self) -> float:
        """Total wall-time the loss adds to the transfer."""
        return self.extra_active_s + self.extra_gap_s + self.retry_wait_s


def expected_overhead(
    params,
    transfer_bytes: float,
    loss_rate: float,
    arq: Optional[ArqConfig] = None,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
) -> ExpectedOverhead:
    """Closed-form loss overhead for ``transfer_bytes`` on ``params``.

    ``params`` is a :class:`~repro.core.energy_model.ModelParams`.  The
    expected retransmitted bytes take the link's ordinary active/idle
    split (a retransmitted packet is received like any other); timeouts
    are pure idle on top.
    """
    arq = arq or ArqConfig()
    _check_probability(loss_rate)
    if transfer_bytes < 0:
        raise ModelError("transfer size must be non-negative")
    if transfer_bytes == 0 or loss_rate == 0.0:
        return ExpectedOverhead(0.0, 0.0, 0.0, 0.0, 0.0, 1.0)
    tau = arq.expected_transmissions(loss_rate)
    extra_bytes = transfer_bytes * (tau - 1.0)
    wall = units.bytes_to_mb(extra_bytes) / params.rate_mb_per_s
    active = wall * (1.0 - params.idle_fraction)
    n_packets = max(1, int(-(-transfer_bytes // payload_bytes)))
    retry_wait = n_packets * arq.expected_retry_wait_s(loss_rate)
    return ExpectedOverhead(
        extra_bytes=extra_bytes,
        extra_active_s=active,
        extra_gap_s=wall - active,
        retry_wait_s=retry_wait,
        expected_retries=n_packets * (tau - 1.0),
        delivery_probability=arq.delivery_probability(loss_rate),
    )


def recv_power_w(params) -> float:
    """Power during active receive: m spread over the active time."""
    active_s_per_mb = (1.0 - params.idle_fraction) / params.rate_mb_per_s
    if active_s_per_mb <= 0:
        raise ModelError("link has no active receive time")
    return params.m_j_per_mb / active_s_per_mb


def expected_overhead_energy_j(
    params,
    transfer_bytes: float,
    loss_rate: float,
    arq: Optional[ArqConfig] = None,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
) -> float:
    """Expected joules the loss adds to one transfer.

    Retransmitted active time is charged at the receive power, the
    stretched inter-packet gaps and the ARQ timeouts at the gap power —
    the same split the session timelines use, so the threshold analysis
    and the simulated sessions agree.
    """
    ov = expected_overhead(params, transfer_bytes, loss_rate, arq, payload_bytes)
    if ov.extra_bytes == 0.0 and ov.retry_wait_s == 0.0:
        return 0.0
    return (
        ov.extra_active_s * recv_power_w(params)
        + (ov.extra_gap_s + ov.retry_wait_s) * params.gap_power_w
    )


# -- deterministic replay (DES timing path) ---------------------------------


@dataclass(frozen=True)
class AttemptTiming:
    """One transmission attempt of one packet."""

    active_s: float
    #: Timeout idle after a failed attempt (0 for the delivered one).
    wait_s: float
    delivered: bool


@dataclass(frozen=True)
class LossyPacketTiming:
    """A packet plus the failed attempts that preceded its delivery."""

    packet: PacketTiming
    attempts: List[AttemptTiming]

    @property
    def failed_attempts(self) -> List[AttemptTiming]:
        """The attempts the channel ate."""
        return [a for a in self.attempts if not a.delivered]


@dataclass
class LossySchedule:
    """ARQ-expanded packet schedule plus its retransmission tally."""

    packets: List[LossyPacketTiming] = field(default_factory=list)
    stats: Optional[LinkStats] = None


def expand_schedule(
    schedule: PacketSchedule,
    loss: LossModel,
    arq: Optional[ArqConfig] = None,
) -> LossySchedule:
    """Replay a packet schedule through seeded loss with stop-and-wait ARQ.

    The loss model is reset first, so the expansion is a pure function
    of (schedule, model seed, config).  Raises
    :class:`~repro.errors.LinkDroppedError` when a packet exhausts the
    retry limit.
    """
    arq = arq or ArqConfig()
    loss.reset()
    out = LossySchedule()
    retries = 0
    retry_wait = 0.0
    transmitted = 0.0
    offset = 0
    for pkt in schedule:
        attempts: List[AttemptTiming] = []
        for attempt in range(1, arq.max_attempts + 1):
            transmitted += pkt.payload_bytes
            if not loss.attempt_lost(byte_offset=offset):
                attempts.append(AttemptTiming(pkt.active_s, 0.0, True))
                break
            if attempt == arq.max_attempts:
                raise LinkDroppedError(
                    f"packet {pkt.index} lost {attempt} times "
                    f"(retry limit {arq.max_retries})"
                )
            wait = arq.timeout_for_failure(attempt)
            attempts.append(AttemptTiming(pkt.active_s, wait, False))
            retries += 1
            retry_wait += wait
        out.packets.append(LossyPacketTiming(packet=pkt, attempts=attempts))
        offset += pkt.payload_bytes
    out.stats = LinkStats(
        payload_bytes=schedule.total_bytes,
        transmitted_bytes=transmitted,
        retries=float(retries),
        retry_wait_s=retry_wait,
        delivery_probability=1.0,
    )
    return out


# -- data path (round-trip property tests) ----------------------------------


@dataclass(frozen=True)
class DeliveryRecord:
    """What happened to one payload on the data path."""

    payload: bytes
    attempts: int

    @property
    def retries(self) -> int:
        """Retransmissions this payload needed."""
        return self.attempts - 1


class StopAndWaitLink:
    """Carries real payloads across a seeded lossy channel with ARQ.

    The receiver only ever sees payloads that survived the channel, in
    order, exactly once — the invariant the round-trip property tests
    assert.  Call :meth:`reset` (or construct fresh) to replay the same
    loss pattern.
    """

    def __init__(
        self,
        loss: Optional[LossModel] = None,
        arq: Optional[ArqConfig] = None,
    ) -> None:
        self.loss = loss or NoLoss()
        self.arq = arq or ArqConfig()
        self._offset = 0
        self.records: List[DeliveryRecord] = []
        self.loss.reset()

    def reset(self) -> None:
        """Rewind the channel to replay the identical loss pattern."""
        self.loss.reset()
        self._offset = 0
        self.records = []

    def send(self, payload: bytes) -> bytes:
        """Transmit one payload; returns it once delivered.

        Raises :class:`~repro.errors.LinkDroppedError` past the retry
        limit — the caller never receives a corrupted or reordered copy.
        """
        for attempt in range(1, self.arq.max_attempts + 1):
            if not self.loss.attempt_lost(byte_offset=self._offset):
                self.records.append(DeliveryRecord(payload, attempt))
                self._offset += len(payload)
                return payload
        raise LinkDroppedError(
            f"payload at offset {self._offset} lost "
            f"{self.arq.max_attempts} times"
        )

    def transfer(self, payloads: List[bytes]) -> Tuple[List[bytes], LinkStats]:
        """Send a sequence of payloads; returns (delivered, stats)."""
        delivered = [self.send(p) for p in payloads]
        payload_bytes = sum(len(p) for p in payloads)
        retries = sum(r.retries for r in self.records[-len(payloads):])
        transmitted = payload_bytes + sum(
            len(r.payload) * r.retries for r in self.records[-len(payloads):]
        )
        retry_wait = 0.0
        for r in self.records[-len(payloads):]:
            for failures in range(1, r.attempts):
                retry_wait += self.arq.timeout_for_failure(failures)
        stats = LinkStats(
            payload_bytes=payload_bytes,
            transmitted_bytes=float(transmitted),
            retries=float(retries),
            retry_wait_s=retry_wait,
            delivery_probability=1.0,
        )
        return delivered, stats


__all__ = [
    "ArqConfig",
    "LinkStats",
    "lossless_stats",
    "ExpectedOverhead",
    "expected_overhead",
    "expected_overhead_energy_j",
    "recv_power_w",
    "AttemptTiming",
    "LossyPacketTiming",
    "LossySchedule",
    "expand_schedule",
    "DeliveryRecord",
    "StopAndWaitLink",
]
