"""``repro campaign fsck``: integrity scan and repair for artifacts.

A campaign directory accumulates crash debris by design — the runner is
crash-only, so a SIGKILL can leave a torn final line in
``results.jsonl``, an orphaned ``.tmp-*`` file from an interrupted
atomic rename, or a cache entry that rotted on disk.  ``fsck`` makes
that debris *visible* and, with ``--repair``, moves it out of the way
using the same quarantine discipline the stores apply at load time:
corrupt lines go to the ``quarantine.jsonl`` sidecar, corrupt cache
entries are deleted (they degrade to misses), orphaned temp files are
removed, and an unparsable manifest is set aside.  Nothing is ever
silently dropped.

Severities and exit codes:

- ``info`` findings (legacy unframed records, an interrupted run's
  non-final manifest, superseded duplicate records) are facts worth
  reporting that do not make the directory dirty;
- ``dirty`` findings (torn lines, CRC mismatches, orphans, unparsable
  JSON) exit :data:`EXIT_DIRTY` — or :data:`EXIT_REPAIRED` when
  ``--repair`` fixed every one of them;
- a directory that is not a campaign directory at all (missing or
  header-less ``results.jsonl``) exits :data:`EXIT_FATAL`.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.campaign.faultio import AppendLog, write_text_atomic
from repro.campaign.store import (
    LAYOUT_NAME,
    MANIFEST_NAME,
    QUARANTINE_NAME,
    RESULTS_NAME,
    SHARD_RE,
    SPEC_NAME,
    StoreError,
    check_frame,
    frame_record,
    load_report,
    read_layout,
    result_files,
    shard_name,
    shard_of,
)

EXIT_CLEAN = 0
EXIT_DIRTY = 1
EXIT_REPAIRED = 2
EXIT_FATAL = 3

#: A well-formed cache entry file name: 64 hex digits + ``.json``.
_CACHE_ENTRY_RE = re.compile(r"^[0-9a-f]{64}\.json$")


@dataclass(frozen=True)
class FsckFinding:
    """One problem (or notable fact) the scan established."""

    #: Which artifact, relative to the scanned directory when possible.
    path: str
    #: Machine-readable kind: ``torn-line``, ``crc-mismatch``,
    #: ``malformed-json``, ``orphan-tmp``, ``cache-corrupt``,
    #: ``cache-orphan``, ``manifest-corrupt``, ``spec-corrupt``,
    #: ``unframed``, ``superseded``, ``interrupted``, ``incomplete``,
    #: ``layout-corrupt``, ``stale-layout``, ``shard-missing``,
    #: ``spec-mismatch``.
    kind: str
    detail: str
    #: ``info`` findings never dirty the directory.
    severity: str = "dirty"
    lineno: Optional[int] = None
    repaired: bool = False


@dataclass
class FsckReport:
    """Everything one fsck pass found and did."""

    out_dir: pathlib.Path
    findings: List[FsckFinding] = field(default_factory=list)
    fatal: Optional[str] = None

    @property
    def dirty(self) -> List[FsckFinding]:
        """Findings that make (or made) the directory dirty."""
        return [f for f in self.findings if f.severity == "dirty"]

    @property
    def repaired(self) -> List[FsckFinding]:
        """Dirty findings the repair pass fixed."""
        return [f for f in self.dirty if f.repaired]

    @property
    def exit_code(self) -> int:
        """The distinct-exit-code contract (see module docstring)."""
        if self.fatal is not None:
            return EXIT_FATAL
        unfixed = [f for f in self.dirty if not f.repaired]
        if unfixed:
            return EXIT_DIRTY
        if self.repaired:
            return EXIT_REPAIRED
        return EXIT_CLEAN

    def render(self) -> str:
        """Human-readable summary, one line per finding."""
        lines = [f"fsck {self.out_dir}"]
        if self.fatal is not None:
            lines.append(f"  FATAL: {self.fatal}")
            return "\n".join(lines)
        for f in self.findings:
            where = f"{f.path}:{f.lineno}" if f.lineno else f.path
            mark = "repaired" if f.repaired else f.severity
            lines.append(f"  [{mark}] {where}: {f.kind} — {f.detail}")
        if not self.findings:
            lines.append("  clean")
        else:
            unfixed = [f for f in self.dirty if not f.repaired]
            lines.append(
                f"  {len(self.dirty)} dirty finding(s), "
                f"{len(self.repaired)} repaired, {len(unfixed)} remaining"
            )
        return "\n".join(lines)


def _quarantine_raw(out_dir: pathlib.Path, source: str, lineno: int,
                    reason: str, raw: str) -> None:
    log = AppendLog(out_dir / QUARANTINE_NAME)
    try:
        body = {
            "type": "quarantine",
            "source": source,
            "lineno": lineno,
            "reason": reason,
            "raw": raw,
        }
        log.append_line(json.dumps(
            frame_record(body), sort_keys=True, separators=(",", ":"),
        ))
    finally:
        log.close()


def _live_layout(report: FsckReport, out_dir: pathlib.Path,
                 files, repair: bool) -> int:
    """The live shard count, reporting a corrupt/missing layout file.

    ``layout.json`` names the live layout; when it is unreadable (set
    aside under ``--repair``) or absent, fall back to the legacy single
    file if present, else to the widest shard set on disk — resume can
    still converge from either.
    """
    layout_path = out_dir / LAYOUT_NAME
    layout = None
    if layout_path.exists():
        try:
            layout = read_layout(out_dir)
        except StoreError as exc:
            repaired = False
            if repair:
                layout_path.replace(
                    layout_path.with_suffix(".json.corrupt")
                )
                repaired = True
            report.findings.append(FsckFinding(
                path=LAYOUT_NAME, kind="layout-corrupt",
                detail=f"unreadable layout set aside: {exc}"
                if repaired else f"unreadable layout: {exc}",
                repaired=repaired,
            ))
    if layout is not None:
        return int(layout["shards"])
    if (out_dir / RESULTS_NAME).exists():
        return 1
    return max(
        int(SHARD_RE.match(p.name).group(2)) for p in files
    )


def _scan_one_results(report: FsckReport, out_dir: pathlib.Path,
                      path: pathlib.Path, repair: bool):
    """Scan one live result file; returns its StoreReport (or None)."""
    try:
        store_report = load_report(path)
    except StoreError as exc:
        report.fatal = str(exc)
        return None
    for bad in store_report.quarantined:
        kind = (
            "torn-line" if bad.reason == "torn line"
            else "crc-mismatch" if bad.reason == "CRC mismatch"
            else "malformed-json"
        )
        report.findings.append(FsckFinding(
            path=path.name, kind=kind, detail=bad.reason,
            lineno=bad.lineno, repaired=repair,
        ))
    if store_report.unframed:
        report.findings.append(FsckFinding(
            path=path.name, kind="unframed", severity="info",
            detail=f"{store_report.unframed} legacy record(s) carry no "
            f"CRC frame; integrity cannot be vouched for",
        ))
    if store_report.superseded:
        report.findings.append(FsckFinding(
            path=path.name, kind="superseded", severity="info",
            detail=f"{store_report.superseded} duplicate record(s) "
            f"superseded by a later occurrence",
        ))
    if store_report.header is not None:
        expected = int(store_report.header.get("cells", 0))
        if len(store_report.records) < expected:
            report.findings.append(FsckFinding(
                path=path.name, kind="incomplete", severity="info",
                detail=f"{len(store_report.records)}/{expected} cells "
                f"present (interrupted run; --resume completes it)",
            ))
    if repair and store_report.quarantined:
        for bad in store_report.quarantined:
            _quarantine_raw(
                out_dir, path.name, bad.lineno, bad.reason, bad.raw
            )
        # Rewrite the result file from the surviving raw lines,
        # byte-exact — fsck must never re-serialize valid records.
        quarantined = {bad.lineno for bad in store_report.quarantined}
        survivors = [
            line
            for lineno, line in enumerate(
                path.read_text().splitlines(), 1
            )
            if lineno not in quarantined and line.strip()
        ]
        write_text_atomic(
            path, "".join(line + "\n" for line in survivors)
        )
    return store_report


def _repair_stale(out_dir: pathlib.Path, stale: pathlib.Path,
                  live_ids, shards: int) -> None:
    """Fold a stale file's unique records into the live layout, drop it.

    Valid result lines whose ``cell_id`` the live layout lacks are
    appended *verbatim* (raw bytes, original CRC frame) to the live
    file owning their ``cell_hash``; corrupt lines are quarantined.
    Only then is the stale file unlinked — nothing is silently dropped.
    """
    lines = stale.read_text().splitlines()
    logs = {}
    try:
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                _quarantine_raw(
                    out_dir, stale.name, lineno, "malformed JSON", line
                )
                continue
            if not isinstance(record, dict) \
                    or record.get("type") != "result":
                continue
            if check_frame(record) is False:
                _quarantine_raw(
                    out_dir, stale.name, lineno, "CRC mismatch", line
                )
                continue
            if record.get("cell_id") in live_ids:
                continue
            live_ids.add(record["cell_id"])
            target = (
                RESULTS_NAME if shards == 1
                else shard_name(shard_of(record["cell_hash"], shards),
                                shards)
            )
            log = logs.get(target)
            if log is None:
                log = AppendLog(out_dir / target)
                logs[target] = log
            log.append_line(line)
    finally:
        for log in logs.values():
            log.close()
    stale.unlink()


def _scan_results(report: FsckReport, out_dir: pathlib.Path,
                  repair: bool) -> None:
    files = result_files(out_dir)
    if not files:
        report.fatal = (
            f"{out_dir / RESULTS_NAME}: no results file "
            f"(not a campaign dir?)"
        )
        return
    shards = _live_layout(report, out_dir, files, repair)
    live_names = (
        {RESULTS_NAME} if shards == 1
        else {shard_name(i, shards) for i in range(shards)}
    )
    live = [p for p in files if p.name in live_names]
    stale = [p for p in files if p.name not in live_names]
    for i in sorted(live_names - {p.name for p in live}):
        report.findings.append(FsckFinding(
            path=i, kind="shard-missing", severity="info",
            detail="live shard file absent (interrupted run; "
            "--resume restores it)",
        ))
    spec_hashes = {}
    live_ids = set()
    header_seen = False
    for path in live:
        store_report = _scan_one_results(report, out_dir, path, repair)
        if store_report is None:
            return
        if store_report.header is not None:
            header_seen = True
            spec_hashes.setdefault(
                str(store_report.header.get("spec_hash")), path.name
            )
        live_ids.update(r["cell_id"] for r in store_report.records)
    if live and not header_seen:
        report.fatal = f"{live[0]}: no header record"
        return
    if len(spec_hashes) > 1:
        report.findings.append(FsckFinding(
            path=", ".join(sorted(spec_hashes.values())),
            kind="spec-mismatch",
            detail="live result files pin different spec hashes; "
            "refusing to repair across campaigns",
        ))
    for path in stale:
        bad_spec = False
        if spec_hashes:
            try:
                stale_header = load_report(path).header
            except StoreError:
                stale_header = None
            if stale_header is not None and str(
                stale_header.get("spec_hash")
            ) not in spec_hashes:
                bad_spec = True
        if bad_spec:
            report.findings.append(FsckFinding(
                path=path.name, kind="spec-mismatch",
                detail="stale result file belongs to a different "
                "campaign; not merged, not removed",
            ))
            continue
        repaired = False
        if repair and len(spec_hashes) <= 1:
            _repair_stale(out_dir, path, live_ids, shards)
            repaired = True
        report.findings.append(FsckFinding(
            path=path.name, kind="stale-layout",
            detail="result file from a superseded shard layout"
            + (" (unique records folded into the live layout)"
               if repaired else "; --repair folds it in"),
            repaired=repaired,
        ))


def _scan_manifest(report: FsckReport, out_dir: pathlib.Path,
                   repair: bool) -> None:
    manifest = out_dir / MANIFEST_NAME
    if not manifest.exists():
        return
    try:
        doc = json.loads(manifest.read_text())
        if not isinstance(doc, dict):
            raise ValueError("manifest is not an object")
    except (OSError, ValueError) as exc:
        repaired = False
        if repair:
            manifest.replace(manifest.with_suffix(".json.corrupt"))
            repaired = True
        report.findings.append(FsckFinding(
            path=MANIFEST_NAME, kind="manifest-corrupt",
            detail=f"unreadable manifest set aside: {exc}"
            if repaired else f"unreadable manifest: {exc}",
            repaired=repaired,
        ))
        return
    phase = doc.get("phase", "final")
    if phase != "final":
        report.findings.append(FsckFinding(
            path=MANIFEST_NAME, kind="interrupted", severity="info",
            detail=f"last manifest phase is {phase!r} "
            f"(campaign did not finalize)",
        ))


def _scan_spec(report: FsckReport, out_dir: pathlib.Path,
               repair: bool) -> None:
    spec = out_dir / SPEC_NAME
    if not spec.exists():
        return
    try:
        json.loads(spec.read_text())
    except (OSError, ValueError) as exc:
        repaired = False
        if repair:
            spec.replace(spec.with_suffix(".json.corrupt"))
            repaired = True
        report.findings.append(FsckFinding(
            path=SPEC_NAME, kind="spec-corrupt",
            detail=f"unreadable spec: {exc}", repaired=repaired,
        ))


def _scan_tmp_orphans(report: FsckReport, root: pathlib.Path,
                      label: str, repair: bool) -> None:
    if not root.is_dir():
        return
    for tmp in sorted(root.rglob(".tmp-*")):
        if not tmp.is_file():
            continue
        repaired = False
        if repair:
            try:
                tmp.unlink()
                repaired = True
            except OSError:
                pass
        report.findings.append(FsckFinding(
            path=f"{label}/{tmp.relative_to(root)}" if label
            else str(tmp.relative_to(root)),
            kind="orphan-tmp",
            detail="temp file orphaned by an interrupted atomic write",
            repaired=repaired,
        ))


def _scan_cache(report: FsckReport, cache_root: pathlib.Path,
                repair: bool) -> None:
    if not cache_root.is_dir():
        return
    for entry in sorted(cache_root.rglob("*.json")):
        rel = entry.relative_to(cache_root)
        if (
            not _CACHE_ENTRY_RE.match(entry.name)
            or len(rel.parts) != 2
            or entry.name[:2] != rel.parts[0]
        ):
            repaired = False
            if repair:
                try:
                    entry.unlink()
                    repaired = True
                except OSError:
                    pass
            report.findings.append(FsckFinding(
                path=f"cache/{rel}", kind="cache-orphan",
                detail="file does not belong to the content-addressed "
                "layout", repaired=repaired,
            ))
            continue
        bad = None
        try:
            framed = json.loads(entry.read_text())
            if not isinstance(framed, dict):
                bad = "entry is not a JSON object"
            elif check_frame(framed) is False:
                bad = "CRC mismatch"
            elif check_frame(framed) is None:
                report.findings.append(FsckFinding(
                    path=f"cache/{rel}", kind="unframed", severity="info",
                    detail="legacy cache entry carries no CRC frame",
                ))
        except (OSError, ValueError) as exc:
            bad = f"unreadable: {exc}"
        if bad is not None:
            repaired = False
            if repair:
                try:
                    entry.unlink()
                    repaired = True
                except OSError:
                    pass
            report.findings.append(FsckFinding(
                path=f"cache/{rel}", kind="cache-corrupt",
                detail=f"{bad} (a lookup degrades to a miss)",
                repaired=repaired,
            ))


def _scan_baseline(report: FsckReport, baseline: pathlib.Path) -> None:
    """Report-only: baselines are pinned by humans, never auto-edited."""
    if not baseline.exists():
        report.findings.append(FsckFinding(
            path=str(baseline), kind="malformed-json",
            detail="baseline file does not exist",
        ))
        return
    try:
        base_report = load_report(baseline)
    except StoreError as exc:
        report.findings.append(FsckFinding(
            path=str(baseline), kind="malformed-json", detail=str(exc),
        ))
        return
    for bad in base_report.quarantined:
        kind = (
            "torn-line" if bad.reason == "torn line"
            else "crc-mismatch" if bad.reason == "CRC mismatch"
            else "malformed-json"
        )
        report.findings.append(FsckFinding(
            path=str(baseline), kind=kind, lineno=bad.lineno,
            detail=f"{bad.reason} (baselines are never auto-repaired; "
            f"re-pin with `repro campaign baseline`)",
        ))
    if base_report.unframed:
        report.findings.append(FsckFinding(
            path=str(baseline), kind="unframed", severity="info",
            detail=f"{base_report.unframed} legacy record(s) carry no "
            f"CRC frame",
        ))


def fsck_campaign(
    out_dir,
    cache_dir=None,
    baseline=None,
    repair: bool = False,
) -> FsckReport:
    """Scan (and optionally repair) one campaign directory.

    ``cache_dir`` defaults to ``out_dir/cache``; pass an explicit path
    for campaigns run with ``--cache-dir``.  ``baseline`` adds a
    report-only integrity pass over a pinned baseline file.
    """
    out_dir = pathlib.Path(out_dir)
    report = FsckReport(out_dir=out_dir)
    if not out_dir.is_dir():
        report.fatal = f"{out_dir}: not a directory"
        return report
    _scan_results(report, out_dir, repair)
    if report.fatal is not None:
        return report
    _scan_manifest(report, out_dir, repair)
    _scan_spec(report, out_dir, repair)
    cache_root = pathlib.Path(cache_dir) if cache_dir else out_dir / "cache"
    _scan_tmp_orphans(report, out_dir, "", repair)
    if not cache_root.resolve().is_relative_to(out_dir.resolve()):
        # An external --cache-dir is not covered by the out_dir walk.
        _scan_tmp_orphans(report, cache_root, "cache", repair)
    _scan_cache(report, cache_root, repair)
    if baseline is not None:
        _scan_baseline(report, pathlib.Path(baseline))
    return report


__all__ = [
    "EXIT_CLEAN",
    "EXIT_DIRTY",
    "EXIT_FATAL",
    "EXIT_REPAIRED",
    "FsckFinding",
    "FsckReport",
    "fsck_campaign",
]
