"""Campaign result store: JSONL results, manifest, resume bookkeeping.

A campaign directory holds these files:

- ``spec.json`` — the spec as resolved, so the directory is
  self-describing;
- ``results.jsonl`` — a header line then one record per cell.  During a
  run records are appended in *completion* order (crash-safe progress);
  a finishing run rewrites the file in *cell* order, which is what makes
  the final file byte-identical at any ``-j``;
- ``manifest.json`` — run statistics plus the live heartbeat (wall
  clock, cache hits, retries, worker deaths, progress).  Everything
  nondeterministic lives here and only here: the results file must
  never differ between equivalent runs;
- ``quarantine.jsonl`` — raw lines evicted from ``results.jsonl``
  because they failed to parse or failed their CRC.  Nothing is ever
  silently dropped: a corrupt record is moved here and counted.

Every JSONL record is *CRC-framed*: it carries a ``crc`` field holding
the CRC-32 of its canonical JSON with the ``crc`` key removed.  Framing
is a pure function of the record's content, so it preserves the
byte-identity guarantees while letting readers distinguish "torn by a
crash" from "rotted on disk" anywhere in the file — not just at the
final line.  Legacy unframed records still load (their integrity simply
cannot be vouched for; ``fsck`` reports them as unframed).

All writes flow through :mod:`repro.campaign.faultio`: appends are
flushed and fsynced per record, whole-file rewrites are temp + rename,
and the manifest is journaled the same way — which is also where the
deterministic fault injectors plug in.

``--resume`` loads whatever ``results.jsonl`` survived, checks its
header's ``spec_hash`` against the current spec (refusing to mix
campaigns), quarantines any corrupt lines, and replays only the cells
without an ``ok`` record.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

from repro.campaign.faultio import (
    AppendLog,
    FaultInjector,
    crc32_hex,
    write_text_atomic,
)
from repro.campaign.spec import CampaignSpec, SPEC_SCHEMA_VERSION

RESULTS_NAME = "results.jsonl"
MANIFEST_NAME = "manifest.json"
SPEC_NAME = "spec.json"
QUARANTINE_NAME = "quarantine.jsonl"


class StoreError(ReproError):
    """A campaign directory that cannot be read or does not match."""


def result_record(
    cell, status: str, metrics: Dict[str, Any], error: Optional[str] = None
) -> Dict[str, Any]:
    """The deterministic on-disk form of one cell's outcome."""
    return {
        "type": "result",
        "index": cell.index,
        "cell_id": cell.cell_id,
        "cell_hash": cell.cell_hash,
        "seed": cell.seed,
        "params": cell.params,
        "status": status,
        "metrics": metrics,
        "error": error,
    }


def _header(spec: CampaignSpec, cells: int) -> Dict[str, Any]:
    return {
        "type": "header",
        "schema_version": SPEC_SCHEMA_VERSION,
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "cells": cells,
    }


def _dump(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def frame_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Attach the CRC-32 frame: ``crc`` over the record minus ``crc``.

    A pure function of the record content, so framed files keep the
    byte-identity-at-any-``-j`` guarantee.
    """
    body = {k: v for k, v in record.items() if k != "crc"}
    return {**body, "crc": crc32_hex(_dump(body).encode("utf-8"))}


def check_frame(record: Dict[str, Any]) -> Optional[bool]:
    """Frame verdict: True (valid), False (mismatch), None (unframed)."""
    crc = record.get("crc")
    if crc is None:
        return None
    body = {k: v for k, v in record.items() if k != "crc"}
    return crc == crc32_hex(_dump(body).encode("utf-8"))


def _dump_framed(record: Dict[str, Any]) -> str:
    return _dump(frame_record(record))


@dataclass(frozen=True)
class QuarantinedLine:
    """One line evicted from a results file, with why and what."""

    lineno: int
    reason: str
    raw: str


@dataclass
class StoreReport:
    """Everything one pass over a results JSONL file establishes."""

    path: pathlib.Path
    header: Optional[Dict[str, Any]]
    records: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[QuarantinedLine] = field(default_factory=list)
    #: Lines that parsed but carried no CRC frame (legacy files).
    unframed: int = 0
    #: Duplicate cell_id records superseded by a later occurrence.
    superseded: int = 0
    #: True when the final line was torn (counted in ``quarantined``).
    torn_tail: bool = False


def load_report(path) -> StoreReport:
    """Read a results/baseline JSONL file, quarantining what's corrupt.

    A record anywhere in the file that fails to parse or fails its CRC
    is quarantined (collected, counted, never silently dropped) instead
    of aborting the load — a multi-hour campaign must survive a single
    rotten block.  Duplicate ``cell_id`` records (a crashed run resumed
    mid-append) keep the last valid occurrence.  Only an unreadable
    file raises.
    """
    path = pathlib.Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise StoreError(f"cannot read {path}: {exc}") from exc
    report = StoreReport(path=path, header=None)
    by_id: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            reason = "torn line" if lineno == len(lines) else "malformed JSON"
            report.quarantined.append(QuarantinedLine(lineno, reason, line))
            report.torn_tail = report.torn_tail or lineno == len(lines)
            continue
        if not isinstance(record, dict):
            report.quarantined.append(
                QuarantinedLine(lineno, "not a JSON object", line)
            )
            continue
        verdict = check_frame(record)
        if verdict is False:
            report.quarantined.append(
                QuarantinedLine(lineno, "CRC mismatch", line)
            )
            continue
        if verdict is None:
            report.unframed += 1
        if record.get("type") == "header":
            report.header = record
        elif record.get("type") == "result":
            if record.get("cell_id") in by_id:
                report.superseded += 1
            by_id[record["cell_id"]] = record
    report.records = sorted(by_id.values(), key=lambda r: r["index"])
    return report


def load_records(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a results/baseline JSONL file: ``(header, result records)``.

    Corrupt lines anywhere are quarantined (see :func:`load_report`);
    a missing or unreadable header still raises, because without it the
    file's campaign identity is unknown.
    """
    report = load_report(path)
    if report.header is None:
        raise StoreError(f"{path}: no header record")
    return report.header, report.records


class ResultStore:
    """One campaign directory's files, with append + finalize + resume.

    ``injector`` (a :class:`~repro.campaign.faultio.FaultInjector`)
    threads deterministic fault injection through every write this
    store performs; production runs pass None and pay one ``if`` per
    operation.
    """

    def __init__(
        self, out_dir, injector: Optional[FaultInjector] = None
    ) -> None:
        self.out_dir = pathlib.Path(out_dir)
        self.injector = injector
        self._log: Optional[AppendLog] = None
        #: Quarantine findings from the last ``completed()`` load; the
        #: runner copies the count into the manifest.
        self.last_quarantined: List[QuarantinedLine] = []

    @property
    def results_path(self) -> pathlib.Path:
        """Where the result records live."""
        return self.out_dir / RESULTS_NAME

    @property
    def manifest_path(self) -> pathlib.Path:
        """Where the run statistics live."""
        return self.out_dir / MANIFEST_NAME

    @property
    def spec_path(self) -> pathlib.Path:
        """Where the resolved spec lives."""
        return self.out_dir / SPEC_NAME

    @property
    def quarantine_path(self) -> pathlib.Path:
        """Where corrupt lines evicted from the results file land."""
        return self.out_dir / QUARANTINE_NAME

    # -- resume ----------------------------------------------------------------

    def completed(self, spec: CampaignSpec) -> Dict[str, Dict[str, Any]]:
        """``cell_id -> record`` for every prior ``ok`` cell of this spec.

        Corrupt lines found on the way are remembered in
        ``last_quarantined`` (and moved to the quarantine sidecar at
        :meth:`open` time).  Raises :class:`StoreError` when the
        directory holds a different campaign (spec-hash mismatch) —
        resuming across specs would mix incomparable results.
        """
        self.last_quarantined = []
        if not self.results_path.exists():
            return {}
        report = load_report(self.results_path)
        if report.header is None:
            raise StoreError(f"{self.results_path}: no header record")
        if report.header.get("spec_hash") != spec.spec_hash():
            raise StoreError(
                f"{self.results_path} belongs to campaign "
                f"{report.header.get('name')!r} (spec hash "
                f"{str(report.header.get('spec_hash'))[:12]}...); refusing to "
                f"resume {spec.name!r} over it"
            )
        self.last_quarantined = report.quarantined
        return {
            r["cell_id"]: r for r in report.records if r["status"] == "ok"
        }

    # -- append-as-you-go ------------------------------------------------------

    def open(self, spec: CampaignSpec, cells: int,
             completed: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        """Start (or restart) the campaign's results file.

        The header and prior completed records land in a temp file that
        is renamed over ``results.jsonl`` only once fully written, so a
        crash at any point leaves either the old resumable file or the
        new one — never a truncated, header-less file.  Corrupt lines
        the resume load quarantined are appended to the quarantine
        sidecar before the rewrite drops them from the results file.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        spec.save(self.spec_path)
        if self.last_quarantined:
            self._quarantine_lines(self.last_quarantined)
            self.last_quarantined = []
        self._replace_results(_header(spec, cells), (completed or {}).values())
        self._log = AppendLog(self.results_path, injector=self.injector)

    def append(self, record: Dict[str, Any]) -> None:
        """Durably persist one framed record (completion order)."""
        if self._log is None:
            raise StoreError("store not opened")
        self._log.append_line(_dump_framed(record))

    def _quarantine_lines(self, lines: List[QuarantinedLine]) -> None:
        """Append evicted raw lines to the quarantine sidecar."""
        log = AppendLog(self.quarantine_path, injector=self.injector)
        try:
            for bad in lines:
                log.append_line(_dump_framed({
                    "type": "quarantine",
                    "source": RESULTS_NAME,
                    "lineno": bad.lineno,
                    "reason": bad.reason,
                    "raw": bad.raw,
                }))
        finally:
            log.close()

    def _replace_results(self, header: Dict[str, Any], records) -> None:
        """Atomically swap in a results file: temp write + rename."""
        lines = [_dump_framed(header)]
        lines.extend(_dump_framed(record) for record in records)
        write_text_atomic(
            self.results_path, "".join(line + "\n" for line in lines),
            injector=self.injector,
        )

    def finalize(self, spec: CampaignSpec,
                 records: List[Dict[str, Any]]) -> None:
        """Rewrite the results file in cell order and close it."""
        if self._log is not None:
            self._log.close()
            self._log = None
        ordered = sorted(records, key=lambda r: r["index"])
        self._replace_results(_header(spec, len(ordered)), ordered)

    def abort(self) -> None:
        """Close the append handle without finalizing (records survive)."""
        if self._log is not None:
            self._log.close()
            self._log = None

    # -- manifest --------------------------------------------------------------

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Journal the (nondeterministic) run statistics: temp + rename.

        Called both at completion and as the heartbeat during a run, so
        a reader never sees a half-written manifest — the previous one
        survives intact until the rename lands.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        write_text_atomic(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            injector=self.injector,
        )

    def read_manifest(self) -> Dict[str, Any]:
        """The last run's statistics (raises when absent)."""
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"cannot read manifest {self.manifest_path}: {exc}"
            ) from exc

    # -- traces ----------------------------------------------------------------

    def write_trace(self, path, spec: CampaignSpec,
                    cell_traces: List[Tuple[str, List[Dict[str, Any]]]]) -> None:
        """Write the merged campaign trace: per-cell SessionTracer streams.

        Each record gains a ``cell_id`` field; cells that produced no
        trace (cache hits, non-simulate kinds) are absent.  The file is
        written atomically like every other campaign artifact.
        """
        lines = [_dump({
            "type": "campaign-header",
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "cells_traced": len(cell_traces),
        })]
        for cell_id, records in cell_traces:
            for record in records:
                lines.append(_dump({**record, "cell_id": cell_id}))
        write_text_atomic(
            path, "".join(line + "\n" for line in lines),
            injector=self.injector,
        )
