"""Campaign result store: JSONL results, manifest, resume bookkeeping.

A campaign directory holds these files:

- ``spec.json`` — the spec as resolved, so the directory is
  self-describing;
- ``results.jsonl`` — a header line then one record per cell.  During a
  run records are appended in *completion* order (crash-safe progress);
  a finishing run rewrites the file in *cell* order, which is what makes
  the final file byte-identical at any ``-j``;
- ``manifest.json`` — run statistics plus the live heartbeat (wall
  clock, cache hits, retries, worker deaths, progress).  Everything
  nondeterministic lives here and only here: the results file must
  never differ between equivalent runs;
- ``quarantine.jsonl`` — raw lines evicted from ``results.jsonl``
  because they failed to parse or failed their CRC.  Nothing is ever
  silently dropped: a corrupt record is moved here and counted.

Large campaigns can shard the results across ``N`` files
(``--shards N``): each record lands in
``results-{i:04d}-of-{N:04d}.jsonl`` where ``i`` is a pure function of
the record's ``cell_hash`` (:func:`shard_of`), so the layout is
deterministic at any ``-j`` and any completion order.  A ``layout.json``
sidecar (written first, atomically) names the live shard count; each
shard carries the campaign header plus its ``shard``/``shards`` fields
and its own expected cell count.  ``shards=1`` keeps the classic
single ``results.jsonl`` byte-for-byte — no layout file, no renamed
shards — so existing tooling and pinned baselines keep working.
Readers (:func:`result_files`, :func:`load_merged`, ``completed``)
merge every result file present regardless of the live layout, which
is what makes ``--resume`` converge when the shard count changes
between runs: the next ``open`` rewrites the survivors into the new
layout and drops the stale files.

Every JSONL record is *CRC-framed*: it carries a ``crc`` field holding
the CRC-32 of its canonical JSON with the ``crc`` key removed.  Framing
is a pure function of the record's content, so it preserves the
byte-identity guarantees while letting readers distinguish "torn by a
crash" from "rotted on disk" anywhere in the file — not just at the
final line.  Legacy unframed records still load (their integrity simply
cannot be vouched for; ``fsck`` reports them as unframed).

All writes flow through :mod:`repro.campaign.faultio`: appends are
flushed and fsynced per record, whole-file rewrites are temp + rename,
and the manifest is journaled the same way — which is also where the
deterministic fault injectors plug in.

``--resume`` loads whatever ``results.jsonl`` survived, checks its
header's ``spec_hash`` against the current spec (refusing to mix
campaigns), quarantines any corrupt lines, and replays only the cells
without an ``ok`` record.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

from repro.campaign.faultio import (
    AppendLog,
    FaultInjector,
    crc32_hex,
    write_text_atomic,
)
from repro.campaign.spec import CampaignSpec, SPEC_SCHEMA_VERSION

RESULTS_NAME = "results.jsonl"
MANIFEST_NAME = "manifest.json"
SPEC_NAME = "spec.json"
QUARANTINE_NAME = "quarantine.jsonl"
LAYOUT_NAME = "layout.json"

#: A shard file name: ``results-0003-of-0016.jsonl``.
SHARD_RE = re.compile(r"^results-(\d{4})-of-(\d{4})\.jsonl$")


class StoreError(ReproError):
    """A campaign directory that cannot be read or does not match."""


def shard_of(cell_hash: str, shards: int) -> int:
    """The shard index owning a cell: a pure function of its hash.

    The first 32 bits of the (hex) cell hash modulo the shard count —
    no run state, no completion order, so the same cell always lands
    in the same file at any parallelism.
    """
    if shards <= 1:
        return 0
    return int(cell_hash[:8], 16) % shards


def shard_name(index: int, shards: int) -> str:
    """The on-disk name of one shard in an ``shards``-way layout."""
    return f"results-{index:04d}-of-{shards:04d}.jsonl"


def result_files(out_dir) -> List[pathlib.Path]:
    """Every result file present: the legacy single file, then shards.

    Deliberately layout-agnostic — stale files from a previous shard
    count are included, which is what lets resume and repair migrate
    records instead of losing them.
    """
    out_dir = pathlib.Path(out_dir)
    files: List[pathlib.Path] = []
    legacy = out_dir / RESULTS_NAME
    if legacy.exists():
        files.append(legacy)
    if out_dir.is_dir():
        files.extend(sorted(
            p for p in out_dir.iterdir()
            if p.is_file() and SHARD_RE.match(p.name)
        ))
    return files


def read_layout(out_dir) -> Optional[Dict[str, Any]]:
    """The ``layout.json`` sidecar, or None when absent (single file).

    Raises :class:`StoreError` when the file exists but is not a valid
    layout object — a corrupt layout must be surfaced, not treated as
    "no layout".
    """
    path = pathlib.Path(out_dir) / LAYOUT_NAME
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise StoreError(f"cannot read layout {path}: {exc}") from exc
    if (
        not isinstance(doc, dict)
        or doc.get("type") != "layout"
        or not isinstance(doc.get("shards"), int)
        or doc["shards"] < 1
    ):
        raise StoreError(f"{path}: not a layout object")
    return doc


def result_record(
    cell, status: str, metrics: Dict[str, Any], error: Optional[str] = None
) -> Dict[str, Any]:
    """The deterministic on-disk form of one cell's outcome."""
    return {
        "type": "result",
        "index": cell.index,
        "cell_id": cell.cell_id,
        "cell_hash": cell.cell_hash,
        "seed": cell.seed,
        "params": cell.params,
        "status": status,
        "metrics": metrics,
        "error": error,
    }


def _header(spec: CampaignSpec, cells: int) -> Dict[str, Any]:
    return {
        "type": "header",
        "schema_version": SPEC_SCHEMA_VERSION,
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "cells": cells,
    }


def _dump(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def frame_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Attach the CRC-32 frame: ``crc`` over the record minus ``crc``.

    A pure function of the record content, so framed files keep the
    byte-identity-at-any-``-j`` guarantee.
    """
    body = {k: v for k, v in record.items() if k != "crc"}
    return {**body, "crc": crc32_hex(_dump(body).encode("utf-8"))}


def check_frame(record: Dict[str, Any]) -> Optional[bool]:
    """Frame verdict: True (valid), False (mismatch), None (unframed)."""
    crc = record.get("crc")
    if crc is None:
        return None
    body = {k: v for k, v in record.items() if k != "crc"}
    return crc == crc32_hex(_dump(body).encode("utf-8"))


def _dump_framed(record: Dict[str, Any]) -> str:
    return _dump(frame_record(record))


@dataclass(frozen=True)
class QuarantinedLine:
    """One line evicted from a results file, with why and what."""

    lineno: int
    reason: str
    raw: str
    #: Which result file the line came from (shard-aware layouts have
    #: several; the quarantine sidecar records the origin).
    source: str = RESULTS_NAME


@dataclass
class StoreReport:
    """Everything one pass over a results JSONL file establishes."""

    path: pathlib.Path
    header: Optional[Dict[str, Any]]
    records: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[QuarantinedLine] = field(default_factory=list)
    #: Lines that parsed but carried no CRC frame (legacy files).
    unframed: int = 0
    #: Duplicate cell_id records superseded by a later occurrence.
    superseded: int = 0
    #: True when the final line was torn (counted in ``quarantined``).
    torn_tail: bool = False


def load_report(path) -> StoreReport:
    """Read a results/baseline JSONL file, quarantining what's corrupt.

    A record anywhere in the file that fails to parse or fails its CRC
    is quarantined (collected, counted, never silently dropped) instead
    of aborting the load — a multi-hour campaign must survive a single
    rotten block.  Duplicate ``cell_id`` records (a crashed run resumed
    mid-append) keep the last valid occurrence.  Only an unreadable
    file raises.
    """
    path = pathlib.Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise StoreError(f"cannot read {path}: {exc}") from exc
    report = StoreReport(path=path, header=None)
    by_id: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            reason = "torn line" if lineno == len(lines) else "malformed JSON"
            report.quarantined.append(
                QuarantinedLine(lineno, reason, line, source=path.name)
            )
            report.torn_tail = report.torn_tail or lineno == len(lines)
            continue
        if not isinstance(record, dict):
            report.quarantined.append(
                QuarantinedLine(lineno, "not a JSON object", line,
                                source=path.name)
            )
            continue
        verdict = check_frame(record)
        if verdict is False:
            report.quarantined.append(
                QuarantinedLine(lineno, "CRC mismatch", line,
                                source=path.name)
            )
            continue
        if verdict is None:
            report.unframed += 1
        if record.get("type") == "header":
            report.header = record
        elif record.get("type") == "result":
            if record.get("cell_id") in by_id:
                report.superseded += 1
            by_id[record["cell_id"]] = record
    report.records = sorted(by_id.values(), key=lambda r: r["index"])
    return report


def load_records(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a results/baseline JSONL file: ``(header, result records)``.

    Corrupt lines anywhere are quarantined (see :func:`load_report`);
    a missing or unreadable header still raises, because without it the
    file's campaign identity is unknown.
    """
    report = load_report(path)
    if report.header is None:
        raise StoreError(f"{path}: no header record")
    return report.header, report.records


def load_merged(out_dir) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """``(header, records)`` merged across every result file present.

    The single-file layout degenerates to :func:`load_records`; sharded
    layouts merge all shard files, deduplicating by ``cell_id``
    (keep-last, like the single-file loader).  The returned header is
    the campaign header with any per-shard fields stripped and
    ``cells`` restored to the whole-campaign count (from
    ``layout.json`` when readable, else summed over the live shard
    headers).
    """
    out_dir = pathlib.Path(out_dir)
    files = result_files(out_dir)
    if not files:
        raise StoreError(f"{out_dir}: no result files")
    header: Optional[Dict[str, Any]] = None
    legacy_header = False
    shard_cells = 0
    by_id: Dict[str, Dict[str, Any]] = {}
    for path in files:
        report = load_report(path)
        h = report.header
        if h is not None:
            if header is None:
                header = {
                    k: v for k, v in h.items()
                    if k not in ("shard", "shards", "crc")
                }
                legacy_header = "shard" not in h
            if "shard" in h:
                shard_cells += int(h.get("cells", 0))
        for record in report.records:
            by_id[record["cell_id"]] = record
    if header is None:
        raise StoreError(f"{out_dir}: no header record in any result file")
    try:
        layout = read_layout(out_dir)
    except StoreError:
        layout = None
    if layout is not None and "cells" in layout:
        header["cells"] = int(layout["cells"])
    elif not legacy_header:
        header["cells"] = shard_cells
    records = sorted(by_id.values(), key=lambda r: r["index"])
    return header, records


def live_result_files(out_dir) -> List[pathlib.Path]:
    """The result files of the *current* layout only.

    Unlike :func:`result_files` (deliberately stale-inclusive, so
    resume/repair can migrate records), this returns exactly the files
    a reduce-style query should fold: the ``layout.json`` shard set
    when a layout sidecar exists, else the legacy single file.  Shard
    files the layout names but that are missing on disk are simply
    absent from the list (an un-started shard has no records to fold).
    """
    out_dir = pathlib.Path(out_dir)
    layout = read_layout(out_dir)
    if layout is not None:
        shards = int(layout["shards"])
        return [
            path
            for i in range(shards)
            if (path := out_dir / shard_name(i, shards)).exists()
        ]
    legacy = out_dir / RESULTS_NAME
    return [legacy] if legacy.exists() else []


def shard_partials(out_dir, fold, zero) -> List[Any]:
    """Fold each live result file into one partial, without merging.

    ``fold(acc, record) -> acc`` consumes one result record at a time;
    ``zero()`` builds a fresh accumulator per file.  Records within a
    file are the deduplicated keep-last set in index order (the same
    view :func:`load_report` serves), but no cross-file merge or sort
    happens — memory stays bounded by one shard, which is the point of
    reduce-style queries over sharded campaign stores.
    """
    partials: List[Any] = []
    for path in live_result_files(out_dir):
        acc = zero()
        for record in load_report(path).records:
            acc = fold(acc, record)
        partials.append(acc)
    return partials


def reduce_shards(out_dir, fold, zero, combine) -> Any:
    """Reduce a campaign's results shard by shard.

    Folds each live shard independently (:func:`shard_partials`), then
    combines the partials left to right with
    ``combine(acc, partial) -> acc``.  ``combine`` must be associative
    — shard membership is a hash artifact, not a meaningful grouping —
    which is exactly the contract mergeable aggregation sketches
    (e.g. :class:`repro.fleet.aggregate.FleetSummary`) are built to
    satisfy.  Raises :class:`StoreError` when the directory has no live
    result files at all.
    """
    partials = shard_partials(out_dir, fold, zero)
    if not partials:
        raise StoreError(f"{out_dir}: no result files")
    acc = zero()
    for partial in partials:
        acc = combine(acc, partial)
    return acc


class ResultStore:
    """One campaign directory's files, with append + finalize + resume.

    ``injector`` (a :class:`~repro.campaign.faultio.FaultInjector`)
    threads deterministic fault injection through every write this
    store performs; production runs pass None and pay one ``if`` per
    operation.
    """

    def __init__(
        self, out_dir, injector: Optional[FaultInjector] = None,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise StoreError("shards must be >= 1")
        self.out_dir = pathlib.Path(out_dir)
        self.injector = injector
        self.shards = shards
        self._logs: Optional[Dict[int, AppendLog]] = None
        #: Quarantine findings from the last ``completed()`` load; the
        #: runner copies the count into the manifest.
        self.last_quarantined: List[QuarantinedLine] = []

    @property
    def results_path(self) -> pathlib.Path:
        """Where the result records live."""
        return self.out_dir / RESULTS_NAME

    @property
    def manifest_path(self) -> pathlib.Path:
        """Where the run statistics live."""
        return self.out_dir / MANIFEST_NAME

    @property
    def spec_path(self) -> pathlib.Path:
        """Where the resolved spec lives."""
        return self.out_dir / SPEC_NAME

    @property
    def quarantine_path(self) -> pathlib.Path:
        """Where corrupt lines evicted from the results file land."""
        return self.out_dir / QUARANTINE_NAME

    @property
    def layout_path(self) -> pathlib.Path:
        """Where the shard layout sidecar lives (sharded stores only)."""
        return self.out_dir / LAYOUT_NAME

    def result_path(self, shard: int = 0) -> pathlib.Path:
        """The live file owning ``shard`` under this store's layout."""
        if self.shards == 1:
            return self.results_path
        return self.out_dir / shard_name(shard, self.shards)

    # -- resume ----------------------------------------------------------------

    def completed(self, spec: CampaignSpec) -> Dict[str, Dict[str, Any]]:
        """``cell_id -> record`` for every prior ``ok`` cell of this spec.

        Corrupt lines found on the way are remembered in
        ``last_quarantined`` (and moved to the quarantine sidecar at
        :meth:`open` time).  Raises :class:`StoreError` when the
        directory holds a different campaign (spec-hash mismatch) —
        resuming across specs would mix incomparable results.
        """
        self.last_quarantined = []
        files = result_files(self.out_dir)
        if not files:
            return {}
        quarantined: List[QuarantinedLine] = []
        by_id: Dict[str, Dict[str, Any]] = {}
        saw_header = False
        for path in files:
            report = load_report(path)
            if report.header is not None:
                saw_header = True
                if report.header.get("spec_hash") != spec.spec_hash():
                    raise StoreError(
                        f"{path} belongs to campaign "
                        f"{report.header.get('name')!r} (spec hash "
                        f"{str(report.header.get('spec_hash'))[:12]}...); "
                        f"refusing to resume {spec.name!r} over it"
                    )
            quarantined.extend(report.quarantined)
            for r in report.records:
                by_id[r["cell_id"]] = r
        if not saw_header:
            raise StoreError(f"{files[0]}: no header record")
        self.last_quarantined = quarantined
        return {
            cid: r for cid, r in by_id.items() if r["status"] == "ok"
        }

    # -- append-as-you-go ------------------------------------------------------

    def open(self, spec: CampaignSpec, cells: int,
             completed: Optional[Dict[str, Dict[str, Any]]] = None,
             cell_hashes: Optional[List[str]] = None) -> None:
        """Start (or restart) the campaign's result file(s).

        The header and prior completed records land in a temp file that
        is renamed over each result file only once fully written, so a
        crash at any point leaves either the old resumable files or the
        new ones — never a truncated, header-less file.  Corrupt lines
        the resume load quarantined are appended to the quarantine
        sidecar before the rewrite drops them from the results.

        Sharded stores write ``layout.json`` first, then every shard
        file (seeded with the completed records it owns), then drop
        files belonging to any other layout — prior completed records
        were already merged in, so nothing is lost.  ``cell_hashes``
        (all cells of the campaign, in any order) sizes each shard's
        expected-cell header; without it the expected counts fall back
        to the completed records on hand.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        spec.save(self.spec_path)
        if self.last_quarantined:
            self._quarantine_lines(self.last_quarantined)
            self.last_quarantined = []
        done = list((completed or {}).values())
        if self.shards == 1:
            self._replace_results(
                self.results_path, _header(spec, cells), done
            )
            self._drop_stale({RESULTS_NAME})
            self._logs = {
                0: AppendLog(self.results_path, injector=self.injector)
            }
            return
        self._write_layout(spec, cells)
        parts: List[List[Dict[str, Any]]] = [[] for _ in range(self.shards)]
        for record in done:
            parts[shard_of(record["cell_hash"], self.shards)].append(record)
        if cell_hashes is not None:
            counts = [0] * self.shards
            for cell_hash in cell_hashes:
                counts[shard_of(cell_hash, self.shards)] += 1
        else:
            counts = [len(part) for part in parts]
        keep = {LAYOUT_NAME}
        for i in range(self.shards):
            name = shard_name(i, self.shards)
            self._replace_results(
                self.out_dir / name, self._shard_header(spec, counts[i], i),
                parts[i],
            )
            keep.add(name)
        self._drop_stale(keep)
        self._logs = {}

    def _shard_header(self, spec: CampaignSpec, cells: int,
                      shard: int) -> Dict[str, Any]:
        return {
            **_header(spec, cells), "shard": shard, "shards": self.shards,
        }

    def _write_layout(self, spec: CampaignSpec, cells: int) -> None:
        """Atomically journal the live shard count (sharded stores)."""
        doc = {
            "type": "layout",
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "shards": self.shards,
            "cells": cells,
        }
        write_text_atomic(
            self.layout_path, _dump(frame_record(doc)) + "\n",
            injector=self.injector,
        )

    def _drop_stale(self, keep) -> None:
        """Unlink result files (and layout) outside the live layout."""
        for path in result_files(self.out_dir):
            if path.name not in keep:
                path.unlink()
        if LAYOUT_NAME not in keep and self.layout_path.exists():
            self.layout_path.unlink()

    def append(self, record: Dict[str, Any]) -> None:
        """Durably persist one framed record (completion order)."""
        if self._logs is None:
            raise StoreError("store not opened")
        shard = shard_of(record["cell_hash"], self.shards)
        log = self._logs.get(shard)
        if log is None:
            log = AppendLog(self.result_path(shard), injector=self.injector)
            self._logs[shard] = log
        log.append_line(_dump_framed(record))

    def _quarantine_lines(self, lines: List[QuarantinedLine]) -> None:
        """Append evicted raw lines to the quarantine sidecar."""
        log = AppendLog(self.quarantine_path, injector=self.injector)
        try:
            for bad in lines:
                log.append_line(_dump_framed({
                    "type": "quarantine",
                    "source": bad.source,
                    "lineno": bad.lineno,
                    "reason": bad.reason,
                    "raw": bad.raw,
                }))
        finally:
            log.close()

    def _replace_results(self, path: pathlib.Path, header: Dict[str, Any],
                         records) -> None:
        """Atomically swap in one result file: temp write + rename."""
        lines = [_dump_framed(header)]
        lines.extend(_dump_framed(record) for record in records)
        write_text_atomic(
            path, "".join(line + "\n" for line in lines),
            injector=self.injector,
        )

    def finalize(self, spec: CampaignSpec,
                 records: List[Dict[str, Any]]) -> None:
        """Rewrite the result file(s) in cell order and close them."""
        self._close_logs()
        ordered = sorted(records, key=lambda r: r["index"])
        if self.shards == 1:
            self._replace_results(
                self.results_path, _header(spec, len(ordered)), ordered
            )
            return
        self._write_layout(spec, len(ordered))
        parts: List[List[Dict[str, Any]]] = [[] for _ in range(self.shards)]
        for record in ordered:
            parts[shard_of(record["cell_hash"], self.shards)].append(record)
        for i, part in enumerate(parts):
            self._replace_results(
                self.out_dir / shard_name(i, self.shards),
                self._shard_header(spec, len(part), i), part,
            )

    def _close_logs(self) -> None:
        if self._logs is not None:
            for log in self._logs.values():
                log.close()
            self._logs = None

    def abort(self) -> None:
        """Close the append handles without finalizing (records survive)."""
        self._close_logs()

    # -- manifest --------------------------------------------------------------

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Journal the (nondeterministic) run statistics: temp + rename.

        Called both at completion and as the heartbeat during a run, so
        a reader never sees a half-written manifest — the previous one
        survives intact until the rename lands.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        write_text_atomic(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            injector=self.injector,
        )

    def read_manifest(self) -> Dict[str, Any]:
        """The last run's statistics (raises when absent)."""
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"cannot read manifest {self.manifest_path}: {exc}"
            ) from exc

    # -- traces ----------------------------------------------------------------

    def write_trace(self, path, spec: CampaignSpec,
                    cell_traces: List[Tuple[str, List[Dict[str, Any]]]]) -> None:
        """Write the merged campaign trace: per-cell SessionTracer streams.

        Each record gains a ``cell_id`` field; cells that produced no
        trace (cache hits, non-simulate kinds) are absent.  The file is
        written atomically like every other campaign artifact.
        """
        lines = [_dump({
            "type": "campaign-header",
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "cells_traced": len(cell_traces),
        })]
        for cell_id, records in cell_traces:
            for record in records:
                lines.append(_dump({**record, "cell_id": cell_id}))
        write_text_atomic(
            path, "".join(line + "\n" for line in lines),
            injector=self.injector,
        )
