"""Campaign result store: JSONL results, manifest, resume bookkeeping.

A campaign directory holds three files:

- ``spec.json`` — the spec as resolved, so the directory is
  self-describing;
- ``results.jsonl`` — a header line then one record per cell.  During a
  run records are appended in *completion* order (crash-safe progress);
  a finishing run rewrites the file in *cell* order, which is what makes
  the final file byte-identical at any ``-j``;
- ``manifest.json`` — run statistics (wall clock, cache hits, retries,
  parallel speedup).  Everything nondeterministic lives here and only
  here: the results file must never differ between equivalent runs.

``--resume`` loads whatever ``results.jsonl`` survived, checks its
header's ``spec_hash`` against the current spec (refusing to mix
campaigns), and replays only the cells without an ``ok`` record.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

from repro.campaign.spec import CampaignSpec, SPEC_SCHEMA_VERSION

RESULTS_NAME = "results.jsonl"
MANIFEST_NAME = "manifest.json"
SPEC_NAME = "spec.json"


class StoreError(ReproError):
    """A campaign directory that cannot be read or does not match."""


def result_record(
    cell, status: str, metrics: Dict[str, Any], error: Optional[str] = None
) -> Dict[str, Any]:
    """The deterministic on-disk form of one cell's outcome."""
    return {
        "type": "result",
        "index": cell.index,
        "cell_id": cell.cell_id,
        "cell_hash": cell.cell_hash,
        "seed": cell.seed,
        "params": cell.params,
        "status": status,
        "metrics": metrics,
        "error": error,
    }


def _header(spec: CampaignSpec, cells: int) -> Dict[str, Any]:
    return {
        "type": "header",
        "schema_version": SPEC_SCHEMA_VERSION,
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "cells": cells,
    }


def _dump(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def load_records(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a results/baseline JSONL file: ``(header, result records)``.

    Duplicate ``cell_id`` records (a crashed run resumed mid-append)
    keep the last occurrence.  A missing or malformed header raises.
    """
    path = pathlib.Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise StoreError(f"cannot read {path}: {exc}") from exc
    header: Optional[Dict[str, Any]] = None
    by_id: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # A torn final line from a killed run is resumable, not fatal.
            if lineno == len(lines):
                continue
            raise StoreError(f"{path}:{lineno}: malformed JSON")
        if record.get("type") == "header":
            header = record
        elif record.get("type") == "result":
            by_id[record["cell_id"]] = record
    if header is None:
        raise StoreError(f"{path}: no header record")
    records = sorted(by_id.values(), key=lambda r: r["index"])
    return header, records


class ResultStore:
    """One campaign directory's files, with append + finalize + resume."""

    def __init__(self, out_dir) -> None:
        self.out_dir = pathlib.Path(out_dir)
        self._fp = None

    @property
    def results_path(self) -> pathlib.Path:
        """Where the result records live."""
        return self.out_dir / RESULTS_NAME

    @property
    def manifest_path(self) -> pathlib.Path:
        """Where the run statistics live."""
        return self.out_dir / MANIFEST_NAME

    @property
    def spec_path(self) -> pathlib.Path:
        """Where the resolved spec lives."""
        return self.out_dir / SPEC_NAME

    # -- resume ----------------------------------------------------------------

    def completed(self, spec: CampaignSpec) -> Dict[str, Dict[str, Any]]:
        """``cell_id -> record`` for every prior ``ok`` cell of this spec.

        Raises :class:`StoreError` when the directory holds a different
        campaign (spec-hash mismatch) — resuming across specs would mix
        incomparable results.
        """
        if not self.results_path.exists():
            return {}
        header, records = load_records(self.results_path)
        if header.get("spec_hash") != spec.spec_hash():
            raise StoreError(
                f"{self.results_path} belongs to campaign "
                f"{header.get('name')!r} (spec hash "
                f"{str(header.get('spec_hash'))[:12]}...); refusing to "
                f"resume {spec.name!r} over it"
            )
        return {r["cell_id"]: r for r in records if r["status"] == "ok"}

    # -- append-as-you-go ------------------------------------------------------

    def open(self, spec: CampaignSpec, cells: int,
             completed: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        """Start (or restart) the campaign's results file.

        The header and prior completed records land in a temp file that
        is renamed over ``results.jsonl`` only once fully written, so a
        crash at any point leaves either the old resumable file or the
        new one — never a truncated, header-less file.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        spec.save(self.spec_path)
        self._replace_results(_header(spec, cells), (completed or {}).values())
        self._fp = open(self.results_path, "a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        """Persist one record immediately (completion order)."""
        if self._fp is None:
            raise StoreError("store not opened")
        self._fp.write(_dump(record) + "\n")
        self._fp.flush()

    def _replace_results(self, header: Dict[str, Any],
                         records) -> None:
        """Atomically swap in a results file: temp write + rename."""
        tmp = self.results_path.with_name(RESULTS_NAME + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fp:
                fp.write(_dump(header) + "\n")
                for record in records:
                    fp.write(_dump(record) + "\n")
            os.replace(tmp, self.results_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def finalize(self, spec: CampaignSpec,
                 records: List[Dict[str, Any]]) -> None:
        """Rewrite the results file in cell order and close it."""
        if self._fp is not None:
            self._fp.close()
            self._fp = None
        ordered = sorted(records, key=lambda r: r["index"])
        self._replace_results(_header(spec, len(ordered)), ordered)

    def abort(self) -> None:
        """Close the append handle without finalizing (records survive)."""
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    # -- manifest --------------------------------------------------------------

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Persist the (nondeterministic) run statistics."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )

    def read_manifest(self) -> Dict[str, Any]:
        """The last run's statistics (raises when absent)."""
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"cannot read manifest {self.manifest_path}: {exc}"
            ) from exc

    # -- traces ----------------------------------------------------------------

    def write_trace(self, path, spec: CampaignSpec,
                    cell_traces: List[Tuple[str, List[Dict[str, Any]]]]) -> None:
        """Write the merged campaign trace: per-cell SessionTracer streams.

        Each record gains a ``cell_id`` field; cells that produced no
        trace (cache hits, non-simulate kinds) are absent.
        """
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(_dump({
                "type": "campaign-header",
                "schema_version": SPEC_SCHEMA_VERSION,
                "name": spec.name,
                "spec_hash": spec.spec_hash(),
                "cells_traced": len(cell_traces),
            }) + "\n")
            for cell_id, records in cell_traces:
                for record in records:
                    fp.write(_dump({**record, "cell_id": cell_id}) + "\n")
