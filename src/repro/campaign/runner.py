"""Parallel campaign execution: process pool, retries, determinism.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into an
ordered list of result records:

1. expand the spec into cells;
2. drop cells already completed by a resumed run (``--resume``);
3. serve cells whose content address is in the result cache;
4. execute the rest — inline at ``jobs=1``, else on a
   ``multiprocessing`` pool whose workers isolate every failure: an
   exception inside a cell becomes a ``failed`` record with the error
   captured, never a dead campaign.  Failed cells are retried up to
   ``retries`` extra attempts *inside* the worker, so a flaky cell
   costs no extra scheduling round trips.

Because cell execution is pure (metrics depend only on params + seed)
and the store finalizes records in cell order, the same spec produces a
byte-identical ``results.jsonl`` at any ``-j`` — and a warm-cache rerun
reproduces it without recomputing a single cell.  Wall-clock facts
(durations, speedup, hit rate) go to the manifest and the metrics
registry only.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache, cache_key, code_fingerprint
from repro.campaign.executor import execute_cell, sanitize_metrics
from repro.campaign.spec import CampaignSpec, Cell
from repro.campaign.store import ResultStore, result_record


@dataclass
class CampaignSummary:
    """Run statistics: everything nondeterministic about a campaign."""

    name: str
    spec_hash: str
    jobs: int
    total: int = 0
    ok: int = 0
    failed: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    retries: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    cell_durations: List[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Sum of per-cell compute time over wall time (1.0 = serial)."""
        return self.busy_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over cells that needed a result this run."""
        lookups = self.cache_hits + self.executed
        return self.cache_hits / lookups if lookups else 0.0

    def to_manifest(self) -> Dict[str, Any]:
        """The manifest document the store persists."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "jobs": self.jobs,
            "cells_total": self.total,
            "cells_ok": self.ok,
            "cells_failed": self.failed,
            "cells_executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "cells_resumed": self.resumed,
            "retries": self.retries,
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "speedup": self.speedup,
            "complete": self.ok + self.failed == self.total,
        }


@dataclass
class CampaignResult:
    """What a finished run hands back: records in cell order + stats."""

    summary: CampaignSummary
    records: List[Dict[str, Any]]
    traces: List[Tuple[str, List[Dict[str, Any]]]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """True when every cell completed successfully."""
        return self.summary.failed == 0 and (
            self.summary.ok == self.summary.total
        )

    def by_id(self) -> Dict[str, Dict[str, Any]]:
        """``cell_id -> record`` for result assembly."""
        return {r["cell_id"]: r for r in self.records}

    def metric(self, cell_id: str, name: str) -> Any:
        """One metric of one cell (raises KeyError when absent)."""
        return self.by_id()[cell_id]["metrics"][name]


#: (cell fields..., context) — everything a worker needs, all picklable.
_Task = Tuple[int, str, str, Dict[str, Any], int, Dict[str, Any]]


def _attempt_cell(task: _Task):
    """Run one cell with bounded retries; never raises."""
    index, cell_id, cell_hash, params, seed, context = task
    retries = int(context.get("retries", 0))
    start = time.monotonic()
    error: Optional[str] = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            metrics, trace_records = execute_cell(
                params,
                seed,
                repo_root=context.get("repo_root"),
                trace=bool(context.get("trace")),
            )
        except Exception:
            error = traceback.format_exc(limit=8)
            continue
        return (
            index, cell_id, "ok", sanitize_metrics(metrics), None,
            time.monotonic() - start, attempts, trace_records,
        )
    return (
        index, cell_id, "failed", {}, error,
        time.monotonic() - start, attempts, None,
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class CampaignRunner:
    """Executes one spec against an optional store and cache.

    Args:
        spec: the campaign definition.
        store: where results land (None = in-memory only).
        cache: content-addressed result cache (None = always compute).
        jobs: worker processes; 1 executes inline, no pool.
        retries: extra attempts per failed cell, inside the worker.
        repo_root: project root for ``experiment`` cells (defaults to
            the current directory at execution time).
        trace: collect per-cell SessionTracer streams (simulate cells).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        cache: Optional[ResultCache] = None,
        jobs: int = 1,
        retries: int = 0,
        repo_root: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.spec = spec
        self.store = store
        self.cache = cache
        self.jobs = jobs
        self.retries = retries
        self.repo_root = repo_root
        self.trace = trace

    # -- internals -------------------------------------------------------------

    def _fingerprint(self, cells: List[Cell]) -> str:
        import pathlib

        extra = []
        if any(c.kind == "experiment" for c in cells):
            root = pathlib.Path(self.repo_root or ".") / "benchmarks"
            if root.is_dir():
                extra.append(root)
        return code_fingerprint(extra)

    def _context(self) -> Dict[str, Any]:
        return {
            "repo_root": self.repo_root,
            "trace": self.trace,
            "retries": self.retries,
        }

    # -- the run ---------------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignResult:
        """Execute the campaign; returns records in cell order.

        With ``resume=True`` and a store, cells already completed by a
        prior run of the *same* spec are kept as-is and not recomputed.
        """
        started = time.monotonic()
        cells = self.spec.expand()
        summary = CampaignSummary(
            name=self.spec.name,
            spec_hash=self.spec.spec_hash(),
            jobs=self.jobs,
            total=len(cells),
        )

        completed: Dict[str, Dict[str, Any]] = {}
        if resume and self.store is not None:
            completed = self.store.completed(self.spec)
        summary.resumed = len(completed)

        fingerprint = self._fingerprint(cells) if self.cache else ""
        records: Dict[str, Dict[str, Any]] = dict(completed)
        cache_keys: Dict[str, str] = {}
        pending: List[Cell] = []
        for cell in cells:
            if cell.cell_id in completed:
                continue
            if self.cache is not None:
                key = cache_key(cell.cell_hash, cell.seed, fingerprint)
                cache_keys[cell.cell_id] = key
                hit = self.cache.lookup(key)
                if hit is not None and hit.get("cell_hash") == cell.cell_hash:
                    # Cached records carry the index/cell_id of the run
                    # that stored them; rebuild identity from the current
                    # cell so a spec edit that reorders or relabels cells
                    # serves hits under their new position, not the old.
                    records[cell.cell_id] = result_record(
                        cell, hit["status"], hit.get("metrics", {}),
                        hit.get("error"),
                    )
                    summary.cache_hits += 1
                    continue
            pending.append(cell)

        if self.store is not None:
            self.store.open(self.spec, len(cells), completed=records)

        context = self._context()
        tasks: List[_Task] = [
            (c.index, c.cell_id, c.cell_hash, c.params, c.seed, context)
            for c in pending
        ]
        by_id = {c.cell_id: c for c in cells}
        traces: List[Tuple[str, List[Dict[str, Any]]]] = []

        def harvest(outcome) -> None:
            (index, cell_id, status, metrics, error, duration, attempts,
             trace_records) = outcome
            cell = by_id[cell_id]
            record = result_record(cell, status, metrics, error)
            records[cell_id] = record
            summary.executed += 1
            summary.retries += attempts - 1
            summary.busy_s += duration
            summary.cell_durations.append(duration)
            if trace_records:
                traces.append((cell_id, trace_records))
            if self.store is not None:
                self.store.append(record)
            if (
                self.cache is not None
                and status == "ok"
                and cell_id in cache_keys
            ):
                self.cache.store(cache_keys[cell_id], record)

        try:
            if tasks:
                if self.jobs == 1:
                    for task in tasks:
                        harvest(_attempt_cell(task))
                else:
                    ctx = _pool_context()
                    chunksize = max(1, len(tasks) // (self.jobs * 4))
                    with ctx.Pool(processes=self.jobs) as pool:
                        for outcome in pool.imap_unordered(
                            _attempt_cell, tasks, chunksize=chunksize
                        ):
                            harvest(outcome)
        except BaseException:
            if self.store is not None:
                self.store.abort()
            raise

        ordered = sorted(records.values(), key=lambda r: r["index"])
        summary.ok = sum(1 for r in ordered if r["status"] == "ok")
        summary.failed = sum(1 for r in ordered if r["status"] == "failed")
        summary.wall_s = time.monotonic() - started
        if self.store is not None:
            self.store.finalize(self.spec, ordered)
            self.store.write_manifest(summary.to_manifest())
        return CampaignResult(
            summary=summary, records=ordered, traces=traces
        )


def run_campaign(
    spec: CampaignSpec, jobs: int = 1, **kwargs: Any
) -> CampaignResult:
    """One-call convenience: run a spec with no store and no cache.

    This is what the benchmark sweeps use to fan their grids over the
    machine's cores while keeping pytest in charge of assertions.
    """
    return CampaignRunner(spec, jobs=jobs, **kwargs).run()
