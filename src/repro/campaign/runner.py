"""Parallel campaign execution: supervised workers, retries, determinism.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into an
ordered list of result records:

1. expand the spec into cells;
2. drop cells already completed by a resumed run (``--resume``);
3. serve cells whose content address is in the result cache;
4. execute the rest — inline at ``jobs=1``, else on a *supervised*
   pool of worker processes.

Supervision is what makes hours-long campaigns crash-only.  Workers
are plain ``multiprocessing`` processes driven through a task queue;
the parent watches them and recovers from every way a worker can die:

- an exception inside a cell becomes a ``failed`` record with the
  error captured (retried up to ``retries`` extra attempts *inside*
  the worker, so a flaky cell costs no extra scheduling round trips);
- a worker that dies between picking a cell up and reporting it —
  SIGKILL, OOM kill, segfault — is detected, the cell is requeued
  (``retries`` covers these deaths too), and a replacement worker is
  spawned;
- a worker stuck past the per-cell wall-clock watchdog
  (``watchdog_s``) is killed and treated exactly like a death;
- a cell that keeps killing its workers is *quarantined* after its
  attempts are exhausted: it becomes a deterministic ``failed`` record
  instead of sinking the campaign;
- workers orphaned by a SIGKILLed parent notice (their PPID changes)
  and exit instead of lingering forever on a dead queue.

While running, the parent heartbeats progress into ``manifest.json``
(journaled, so the previous manifest is never torn) — a resumable
record of how far the campaign got, refreshed every ``heartbeat_s``.

Because cell execution is pure (metrics depend only on params + seed)
and the store finalizes records in cell order, the same spec produces a
byte-identical ``results.jsonl`` at any ``-j`` — and a warm-cache rerun
reproduces it without recomputing a single cell.  Wall-clock facts
(durations, speedup, hit rate, deaths) go to the manifest and the
metrics registry only.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import queue as queue_mod
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache, cache_key, code_fingerprint
from repro.campaign.executor import execute_cell, sanitize_metrics
from repro.campaign.faultio import InjectedCrash
from repro.campaign.spec import CampaignSpec, Cell
from repro.campaign.store import ResultStore, result_record

#: Seconds a worker waits on the task queue before re-checking that its
#: parent is still alive (orphan self-termination cadence).
WORKER_POLL_S = 0.25

#: Default seconds between journaled progress-manifest heartbeats.
DEFAULT_HEARTBEAT_S = 2.0

#: Seconds of total silence (no pickups, no results, nothing active,
#: task queue drained) before the supervisor assumes a task was lost
#: inside a dying worker and requeues the unaccounted cells.
STALL_RECHECK_S = 5.0

#: Cells per batch-engine evaluation chunk: large enough to amortize
#: the vector setup, small enough that manifest heartbeats keep flowing
#: through a million-cell grid.
BATCH_CHUNK_CELLS = 16384


@dataclass
class CampaignSummary:
    """Run statistics: everything nondeterministic about a campaign."""

    name: str
    spec_hash: str
    jobs: int
    total: int = 0
    ok: int = 0
    failed: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    retries: int = 0
    #: Cells evaluated by the vectorized batch engine (subset of
    #: ``executed``; their records are byte-identical to scalar ones).
    batch_cells: int = 0
    #: Worker processes that died (or were watchdog-killed) mid-cell.
    worker_deaths: int = 0
    #: Workers killed by the per-cell wall-clock watchdog.
    watchdog_kills: int = 0
    #: Cells recorded as failed because they exhausted their workers.
    quarantined_cells: int = 0
    #: Corrupt results.jsonl lines quarantined during the resume load.
    quarantined_lines: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    cell_durations: List[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Sum of per-cell compute time over wall time (1.0 = serial)."""
        return self.busy_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over cells that needed a result this run."""
        lookups = self.cache_hits + self.executed
        return self.cache_hits / lookups if lookups else 0.0

    def to_manifest(self, phase: str = "final") -> Dict[str, Any]:
        """The manifest document the store persists.

        ``phase`` distinguishes the heartbeat snapshots written while
        the campaign runs (``running``) from the one written after
        finalize (``final``).
        """
        return {
            "phase": phase,
            "name": self.name,
            "spec_hash": self.spec_hash,
            "jobs": self.jobs,
            "cells_total": self.total,
            "cells_ok": self.ok,
            "cells_failed": self.failed,
            "cells_executed": self.executed,
            "batch_cells": self.batch_cells,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "cells_resumed": self.resumed,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "watchdog_kills": self.watchdog_kills,
            "quarantined_cells": self.quarantined_cells,
            "quarantined_lines": self.quarantined_lines,
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "speedup": self.speedup,
            "complete": self.ok + self.failed == self.total,
        }


@dataclass
class CampaignResult:
    """What a finished run hands back: records in cell order + stats."""

    summary: CampaignSummary
    records: List[Dict[str, Any]]
    traces: List[Tuple[str, List[Dict[str, Any]]]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """True when every cell completed successfully."""
        return self.summary.failed == 0 and (
            self.summary.ok == self.summary.total
        )

    def by_id(self) -> Dict[str, Dict[str, Any]]:
        """``cell_id -> record`` for result assembly."""
        return {r["cell_id"]: r for r in self.records}

    def metric(self, cell_id: str, name: str) -> Any:
        """One metric of one cell (raises KeyError when absent)."""
        return self.by_id()[cell_id]["metrics"][name]


#: (cell fields..., context) — everything a worker needs, all picklable.
_Task = Tuple[int, str, str, Dict[str, Any], int, Dict[str, Any]]


def _apply_test_hooks(params: Dict[str, Any]) -> None:
    """Deterministic chaos hooks the supervision tests plant in cells.

    ``_test_hang_s`` busy-waits (for watchdog tests); a cell whose
    ``_test_die_once`` marker file does not exist yet creates it and
    SIGKILLs its own worker — the requeued attempt finds the marker and
    proceeds, exercising the death-recovery path end to end.
    """
    die_marker = params.get("_test_die_once")
    if die_marker:
        marker = pathlib.Path(die_marker)
        if not marker.exists():
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    hang = params.get("_test_hang_s")
    if hang:
        time.sleep(float(hang))


def _attempt_cell(task: _Task):
    """Run one cell with bounded in-worker retries; never raises."""
    index, cell_id, cell_hash, params, seed, context = task
    retries = int(context.get("retries", 0))
    start = time.monotonic()
    error: Optional[str] = None
    attempts = 0
    _apply_test_hooks(params)
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            metrics, trace_records = execute_cell(
                params,
                seed,
                repo_root=context.get("repo_root"),
                trace=bool(context.get("trace")),
            )
        except Exception:
            error = traceback.format_exc(limit=8)
            continue
        return (
            index, cell_id, "ok", sanitize_metrics(metrics), None,
            time.monotonic() - start, attempts, trace_records,
        )
    return (
        index, cell_id, "failed", {}, error,
        time.monotonic() - start, attempts, None,
    )


def _worker_main(worker_id: int, task_queue, result_queue,
                 parent_pid: int) -> None:
    """Worker loop: pull tasks, announce pickups, report outcomes.

    The pickup announcement is what lets the parent attribute a later
    death to a specific cell.  The PPID check is the crash-only half of
    the contract: a worker whose parent was SIGKILLed exits on its own
    instead of blocking forever on an orphaned queue.
    """
    while True:
        if os.getppid() != parent_pid:
            return
        try:
            task = task_queue.get(timeout=WORKER_POLL_S)
        except queue_mod.Empty:
            continue
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            result_queue.put(("pickup", worker_id, task[1]))
            outcome = _attempt_cell(task)
            result_queue.put(("done", worker_id, outcome))
        except (EOFError, OSError):
            return


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class CampaignRunner:
    """Executes one spec against an optional store and cache.

    Args:
        spec: the campaign definition.
        store: where results land (None = in-memory only).
        cache: content-addressed result cache (None = always compute).
        jobs: worker processes; 1 executes inline, no pool.
        retries: extra attempts per failed cell.  Covers both in-worker
            exceptions (retried inside the worker) and worker-process
            deaths (the cell is requeued onto a fresh worker).
        repo_root: project root for ``experiment`` cells (defaults to
            the current directory at execution time).
        trace: collect per-cell SessionTracer streams (simulate cells).
        watchdog_s: per-cell wall-clock budget; a worker busy on one
            cell for longer is killed and the cell requeued (None
            disables; ignored at ``jobs=1`` where there is no worker
            to kill).
        heartbeat_s: seconds between journaled progress manifests.
        batch: route batch-eligible analytic threshold cells through
            the vectorized engine (:mod:`repro.simulator.batch`) in the
            parent process; everything else keeps the supervised pool.
            Records are byte-identical either way — the flag exists for
            A/B timing and as an escape hatch.  A missing numpy
            disables the fast path automatically.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        cache: Optional[ResultCache] = None,
        jobs: int = 1,
        retries: int = 0,
        repo_root: Optional[str] = None,
        trace: bool = False,
        watchdog_s: Optional[float] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        batch: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if watchdog_s is not None and watchdog_s <= 0:
            raise ValueError(f"watchdog_s must be > 0, got {watchdog_s}")
        self.spec = spec
        self.store = store
        self.cache = cache
        self.jobs = jobs
        self.retries = retries
        self.repo_root = repo_root
        self.trace = trace
        self.watchdog_s = watchdog_s
        self.heartbeat_s = heartbeat_s
        self.batch = batch

    # -- internals -------------------------------------------------------------

    def _fingerprint(self, cells: List[Cell]) -> str:
        extra = []
        if any(c.kind == "experiment" for c in cells):
            root = pathlib.Path(self.repo_root or ".") / "benchmarks"
            if root.is_dir():
                extra.append(root)
        return code_fingerprint(extra)

    def _context(self) -> Dict[str, Any]:
        return {
            "repo_root": self.repo_root,
            "trace": self.trace,
            "retries": self.retries,
        }

    def _run_supervised(self, tasks: List[_Task], by_id: Dict[str, Cell],
                        summary: CampaignSummary, harvest) -> None:
        """Drive ``tasks`` through supervised workers until accounted.

        Every task ends in exactly one ``harvest`` call: its worker's
        ``done`` outcome, or a synthesized ``failed`` record when the
        cell exhausted its workers (quarantine).  The loop survives
        worker deaths, watchdog kills, and lost-in-a-dying-worker
        tasks; it raises only if supervision itself stops making
        progress for an implausibly long time.
        """
        ctx = _pool_context()
        task_queue = ctx.Queue()
        # Results ride a SimpleQueue on purpose: its put() writes the
        # pipe synchronously (no feeder thread), so a worker that dies
        # right after announcing a pickup cannot lose the announcement
        # in an unflushed buffer — death attribution depends on it.
        result_queue = ctx.SimpleQueue()
        state: Dict[str, str] = {}        # cell_id -> queued|active|done
        deaths: Dict[str, int] = {}
        task_by_id: Dict[str, _Task] = {}
        active: Dict[int, Tuple[str, float]] = {}   # wid -> (cell_id, t0)
        procs: Dict[int, Any] = {}
        next_wid = 0

        for task in tasks:
            task_by_id[task[1]] = task
            state[task[1]] = "queued"
            task_queue.put(task)

        def spawn() -> None:
            nonlocal next_wid
            wid = next_wid
            next_wid += 1
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, task_queue, result_queue, os.getpid()),
                daemon=True,
            )
            proc.start()
            procs[wid] = proc

        def fail_cell(cell_id: str, reason: str, duration: float) -> None:
            cell = by_id[cell_id]
            summary.quarantined_cells += 1
            state[cell_id] = "done"
            harvest((
                cell.index, cell_id, "failed", {}, reason, duration,
                deaths.get(cell_id, 1), None,
            ))

        def cell_died(cell_id: str, watchdog: bool,
                      duration: float) -> None:
            """One worker death, attributed: requeue or quarantine."""
            if state.get(cell_id) == "done":
                return
            summary.worker_deaths += 1
            deaths[cell_id] = deaths.get(cell_id, 0) + 1
            cause = (
                f"watchdog: cell exceeded {self.watchdog_s:g}s wall clock; "
                f"worker killed" if watchdog else "worker process died"
            )
            if deaths[cell_id] > self.retries:
                fail_cell(
                    cell_id,
                    f"{cause} (death {deaths[cell_id]} of "
                    f"{self.retries + 1} allowed attempts); cell "
                    f"quarantined as poison",
                    duration,
                )
            else:
                state[cell_id] = "queued"
                task_queue.put(task_by_id[cell_id])

        #: Death candidates gathered this iteration: a reaped worker's
        #: active cell, or a pickup announced by an already-reaped
        #: worker.  A ``done`` for the cell cancels the candidate — the
        #: worker finished the cell and died idle (or its backlog
        #: simply drained late).
        pending_deaths: Dict[str, Tuple[bool, float]] = {}

        def drain() -> bool:
            """Process every queued worker message; True if any."""
            progressed = False
            try:
                while not result_queue.empty():
                    kind, wid, payload = result_queue.get()
                    progressed = True
                    if kind == "pickup":
                        if wid in procs:
                            state[payload] = "active"
                            active[wid] = (payload, time.monotonic())
                        else:
                            # Announced by a worker already reaped: a
                            # death candidate unless its done follows.
                            pending_deaths.setdefault(
                                payload, (False, 0.0)
                            )
                    elif kind == "done":
                        cell_id = payload[1]
                        pending_deaths.pop(cell_id, None)
                        if state.get(cell_id) != "done":
                            state[cell_id] = "done"
                            harvest(payload)
                        active.pop(wid, None)
            except (EOFError, OSError):
                # A worker died mid-put and corrupted the pipe; the
                # liveness checks recover the cell.
                pass
            return progressed

        for _ in range(min(self.jobs, max(1, len(tasks)))):
            spawn()

        last_beat = 0.0
        last_progress = time.monotonic()
        stall_rounds = 0
        try:
            while any(s != "done" for s in state.values()):
                now = time.monotonic()
                # 1. Drain every pending worker message.
                if drain():
                    last_progress = time.monotonic()
                else:
                    time.sleep(0.05)
                # 2. Watchdog: kill workers stuck past the cell budget.
                if self.watchdog_s is not None:
                    for wid, (cell_id, t0) in list(active.items()):
                        if now - t0 > self.watchdog_s:
                            proc = procs.get(wid)
                            if proc is not None and proc.is_alive():
                                proc.kill()
                                proc.join(timeout=5.0)
                            summary.watchdog_kills += 1
                # 3. Liveness: reap dead workers.  Their active cells
                # become death candidates, not deaths: a dead worker's
                # whole message backlog already sits in the pipe, so
                # one more drain deterministically settles whether a
                # candidate actually completed before the crash.
                reaped = False
                for wid, proc in list(procs.items()):
                    if not proc.is_alive():
                        reaped = True
                        entry = active.pop(wid, None)
                        procs.pop(wid, None)
                        if entry is not None:
                            cell_id, t0 = entry
                            watchdogged = (
                                self.watchdog_s is not None
                                and now - t0 > self.watchdog_s
                            )
                            pending_deaths.setdefault(
                                cell_id, (watchdogged, now - t0)
                            )
                        last_progress = time.monotonic()
                if reaped:
                    drain()
                for cell_id, (watchdogged, duration) in (
                    pending_deaths.items()
                ):
                    cell_died(cell_id, watchdogged, duration)
                pending_deaths.clear()
                still_needed = sum(
                    1 for s in state.values() if s != "done"
                )
                while len(procs) < min(self.jobs, max(1, still_needed)):
                    spawn()
                # 4. Lost-task reconciliation: a worker that died after
                # task_queue.get() but before announcing its pickup
                # leaves a cell queued-but-nowhere.  After a silent
                # stall with idle workers, requeue the unaccounted —
                # cells are pure, so a duplicate execution is harmless
                # (first 'done' wins).
                if (
                    not active
                    and time.monotonic() - last_progress > STALL_RECHECK_S
                ):
                    stall_rounds += 1
                    if stall_rounds > 50:
                        raise RuntimeError(
                            "campaign supervision stalled: workers alive "
                            "but no task progress"
                        )
                    for cell_id, s in state.items():
                        if s == "queued":
                            task_queue.put(task_by_id[cell_id])
                    last_progress = time.monotonic()
                # 5. Heartbeat the journaled progress manifest.
                if (
                    self.store is not None
                    and time.monotonic() - last_beat > self.heartbeat_s
                ):
                    summary.wall_s = time.monotonic() - self._started
                    self.store.write_manifest(
                        summary.to_manifest(phase="running")
                    )
                    last_beat = time.monotonic()
        finally:
            for proc in procs.values():
                if proc.is_alive():
                    proc.kill()
            for proc in procs.values():
                proc.join(timeout=5.0)
            task_queue.cancel_join_thread()
            task_queue.close()
            result_queue.close()

    def _run_batch(self, batch_cells: List[Cell],
                   summary: CampaignSummary, harvest) -> List[Cell]:
        """Evaluate analytic cells through the vectorized batch engine.

        Cells are fed through ``harvest`` exactly like scalar outcomes
        (same record bytes; the chunk's wall time is spread evenly over
        its cells for the busy-time stats).  Returns the cells the
        engine declined at runtime — they rejoin the scalar pool, which
        stays authoritative.
        """
        from repro.simulator import batch as batch_engine

        fallback: List[Cell] = []
        last_beat = time.monotonic()
        for start in range(0, len(batch_cells), BATCH_CHUNK_CELLS):
            chunk = batch_cells[start:start + BATCH_CHUNK_CELLS]
            t0 = time.monotonic()
            results, declined = batch_engine.evaluate_cells(chunk)
            fallback.extend(declined)
            per_cell = (
                (time.monotonic() - t0) / len(results) if results else 0.0
            )
            for cell, metrics in results:
                harvest((
                    cell.index, cell.cell_id, "ok",
                    sanitize_metrics(metrics), None, per_cell, 1, None,
                ))
            summary.batch_cells += len(results)
            if (
                self.store is not None
                and time.monotonic() - last_beat > self.heartbeat_s
            ):
                summary.wall_s = time.monotonic() - self._started
                self.store.write_manifest(
                    summary.to_manifest(phase="running")
                )
                last_beat = time.monotonic()
        return fallback

    # -- the run ---------------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignResult:
        """Execute the campaign; returns records in cell order.

        With ``resume=True`` and a store, cells already completed by a
        prior run of the *same* spec are kept as-is and not recomputed;
        corrupt lines found in the surviving results file are
        quarantined (moved to the sidecar, counted in the manifest) and
        their cells re-run.
        """
        self._started = time.monotonic()
        cells = self.spec.expand()
        summary = CampaignSummary(
            name=self.spec.name,
            spec_hash=self.spec.spec_hash(),
            jobs=self.jobs,
            total=len(cells),
        )

        completed: Dict[str, Dict[str, Any]] = {}
        if resume and self.store is not None:
            completed = self.store.completed(self.spec)
            summary.quarantined_lines = len(self.store.last_quarantined)
        summary.resumed = len(completed)

        fingerprint = self._fingerprint(cells) if self.cache else ""
        records: Dict[str, Dict[str, Any]] = dict(completed)
        cache_keys: Dict[str, str] = {}
        pending: List[Cell] = []
        for cell in cells:
            if cell.cell_id in completed:
                continue
            if self.cache is not None:
                key = cache_key(cell.cell_hash, cell.seed, fingerprint)
                cache_keys[cell.cell_id] = key
                hit = self.cache.lookup(key)
                if hit is not None and hit.get("cell_hash") == cell.cell_hash:
                    # Cached records carry the index/cell_id of the run
                    # that stored them; rebuild identity from the current
                    # cell so a spec edit that reorders or relabels cells
                    # serves hits under their new position, not the old.
                    records[cell.cell_id] = result_record(
                        cell, hit["status"], hit.get("metrics", {}),
                        hit.get("error"),
                    )
                    summary.cache_hits += 1
                    continue
            pending.append(cell)

        if self.store is not None:
            self.store.open(
                self.spec, len(cells), completed=records,
                cell_hashes=[c.cell_hash for c in cells],
            )

        batch_pending: List[Cell] = []
        # Traced runs stay scalar: the batch engine reproduces metrics
        # bit for bit but emits no per-segment trace records, and a
        # silently trace-less cell would corrupt the trace artifact.
        if self.batch and not self.trace:
            from repro.simulator import batch as batch_engine

            batch_pending, pending = batch_engine.partition_cells(pending)

        context = self._context()
        by_id = {c.cell_id: c for c in cells}
        traces: List[Tuple[str, List[Dict[str, Any]]]] = []

        def harvest(outcome) -> None:
            (index, cell_id, status, metrics, error, duration, attempts,
             trace_records) = outcome
            cell = by_id[cell_id]
            record = result_record(cell, status, metrics, error)
            records[cell_id] = record
            summary.executed += 1
            summary.retries += attempts - 1
            summary.busy_s += duration
            summary.cell_durations.append(duration)
            if trace_records:
                traces.append((cell_id, trace_records))
            if self.store is not None:
                self.store.append(record)
            if (
                self.cache is not None
                and status == "ok"
                and cell_id in cache_keys
            ):
                self.cache.store(cache_keys[cell_id], record)

        try:
            if batch_pending:
                declined = self._run_batch(batch_pending, summary, harvest)
                pending = sorted(
                    pending + declined, key=lambda c: c.index
                )
            tasks: List[_Task] = [
                (c.index, c.cell_id, c.cell_hash, c.params, c.seed, context)
                for c in pending
            ]
            if tasks:
                if self.jobs == 1:
                    for task in tasks:
                        harvest(_attempt_cell(task))
                else:
                    self._run_supervised(tasks, by_id, summary, harvest)
        except BaseException as exc:
            if self.store is not None:
                summary.wall_s = time.monotonic() - self._started
                self.store.abort()
                if not isinstance(exc, InjectedCrash):
                    # A simulated process death must leave the directory
                    # exactly as the crash found it — no parting writes.
                    try:
                        self.store.write_manifest(
                            summary.to_manifest(phase="aborted")
                        )
                    except OSError:
                        pass
            raise

        ordered = sorted(records.values(), key=lambda r: r["index"])
        summary.ok = sum(1 for r in ordered if r["status"] == "ok")
        summary.failed = sum(1 for r in ordered if r["status"] == "failed")
        summary.wall_s = time.monotonic() - self._started
        if self.store is not None:
            self.store.finalize(self.spec, ordered)
            self.store.write_manifest(summary.to_manifest(phase="final"))
        return CampaignResult(
            summary=summary, records=ordered, traces=traces
        )


def run_campaign(
    spec: CampaignSpec, jobs: int = 1, **kwargs: Any
) -> CampaignResult:
    """One-call convenience: run a spec with no store and no cache.

    This is what the benchmark sweeps use to fan their grids over the
    machine's cores while keeping pytest in charge of assertions.
    """
    return CampaignRunner(spec, jobs=jobs, **kwargs).run()
