"""Seeded fault-injecting I/O: the campaign stack's durability shim.

Every artifact the campaign layer persists — ``results.jsonl``, the
content-addressed result cache, ``manifest.json``, pinned baselines,
proxy cache snapshots, session traces — is written through this module,
which provides exactly two write disciplines:

- :func:`write_bytes_atomic` / :func:`write_text_atomic` — full-file
  replacement via temp file + ``fsync`` + ``os.replace``, so a reader
  (or a crash) sees either the old complete file or the new complete
  file, never a torn hybrid;
- :class:`AppendLog` — durable line appends (``write`` + ``flush`` +
  ``fsync``) for JSONL progress logs, where a crash may tear at most
  the final line.

Both disciplines accept a *fault injector* that deterministically turns
individual I/O operations into the failures a long campaign will
eventually meet for real: ``ENOSPC``, ``EIO``, short/torn writes, and
process death immediately before or after a rename.  Decisions are
keyed on ``(seed, path name, per-path op counter)`` — never wall clock
and never cross-path arrival order — so a fault schedule replays
identically at any parallelism, which is what lets the property suite
and the crash-chaos harness assert byte-identical recovery.

Two injector flavours cover the two test styles:

- :class:`SeededFaultInjector` fires pseudo-randomly at a configured
  rate (hypothesis-style sweeps: *every* injected fault must surface a
  typed error or leave a readable store);
- :class:`CrashPointInjector` fires exactly once, at the N-th matching
  operation, and either raises :class:`InjectedCrash` (in-process
  tests) or SIGKILLs the process (the subprocess crash-chaos driver);
  :func:`injector_from_env` builds one from ``REPRO_FAULTIO_CRASH`` so
  a driver can plant a crash point inside a child ``repro campaign
  run`` without touching its command line.
"""

from __future__ import annotations

import errno
import fnmatch
import hashlib
import os
import pathlib
import signal
import tempfile
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Environment variable holding a crash-point spec for child processes:
#: ``<name-glob>:<op>:<nth>:<mode>`` with mode ``before``/``torn``/``after``.
CRASH_ENV = "REPRO_FAULTIO_CRASH"

#: Operation names the injectors key on.
OPS = ("write", "fsync", "rename")

#: Fault kinds a seeded injector can draw.
FAULT_KINDS = (
    "enospc",
    "eio",
    "torn",
    "crash_before_rename",
    "crash_after_rename",
)


class InjectedCrash(BaseException):
    """Simulated process death at an I/O crash point.

    Deliberately *not* an :class:`Exception`: production ``except
    Exception`` clauses must never swallow a simulated crash, exactly as
    they cannot swallow a real SIGKILL.  Only the test harness catches
    it, at its outermost frame.
    """

    def __init__(self, op: str, path: str, mode: str) -> None:
        self.op = op
        self.path = path
        self.mode = mode
        super().__init__(f"injected crash {mode} {op} of {path}")


@dataclass(frozen=True)
class Fault:
    """One injection decision: what fails, and how."""

    #: One of :data:`FAULT_KINDS` or the crash modes ``before``/``after``.
    kind: str
    #: ``raise`` surfaces Python exceptions; ``kill`` SIGKILLs the process.
    action: str = "raise"


class FaultInjector:
    """Base injector: no faults.  Subclasses override :meth:`decide`.

    The shim calls :meth:`on_op` once per I/O operation; the per-path
    operation counter that keys every decision lives here so all
    subclasses count identically.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], int] = {}

    def on_op(self, op: str, path) -> Optional[Fault]:
        """Advance ``path``'s counter for ``op`` and return a decision."""
        name = pathlib.Path(path).name
        n = self._counters.get((name, op), 0) + 1
        self._counters[(name, op)] = n
        return self.decide(op, name, n)

    def decide(self, op: str, name: str, n: int) -> Optional[Fault]:
        """The injection decision for the ``n``-th ``op`` on ``name``."""
        return None


class SeededFaultInjector(FaultInjector):
    """Pseudo-random faults at a fixed rate, keyed on (seed, path, op).

    The decision for the ``n``-th operation on a path is a pure function
    of ``(seed, path name, n, op)``: two runs with the same seed inject
    the same faults at the same operations regardless of scheduling,
    wall clock, or how other paths interleave.
    """

    def __init__(
        self,
        seed: int,
        rate: float,
        kinds: Tuple[str, ...] = FAULT_KINDS,
        action: str = "raise",
    ) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.action = action

    def decide(self, op: str, name: str, n: int) -> Optional[Fault]:
        """Deterministic draw: fires when the keyed hash is under rate."""
        digest = hashlib.sha256(
            f"{self.seed}:{name}:{n}:{op}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        if draw >= self.rate:
            return None
        kind = self.kinds[digest[8] % len(self.kinds)]
        # Rename-phase kinds only make sense at a rename; write-phase
        # kinds only at a write.  A mismatched draw stays silent so the
        # op mix does not skew which kinds ever fire.
        if op == "rename" and kind not in (
            "crash_before_rename", "crash_after_rename"
        ):
            return None
        if op != "rename" and kind in (
            "crash_before_rename", "crash_after_rename"
        ):
            return None
        return Fault(kind=kind, action=self.action)


class CrashPointInjector(FaultInjector):
    """Fire exactly once: at the ``nth`` matching op on a matching path.

    ``mode`` is ``before`` (die before the operation), ``torn`` (write
    half the payload, then die — writes only), or ``after`` (die after
    the operation completed).  ``action='kill'`` delivers a real
    SIGKILL, which is what the crash-chaos subprocess driver uses.
    """

    def __init__(
        self, name_glob: str, op: str, nth: int, mode: str = "before",
        action: str = "raise",
    ) -> None:
        super().__init__()
        if op not in OPS:
            raise ValueError(f"unknown op {op!r} (one of {', '.join(OPS)})")
        if mode not in ("before", "torn", "after"):
            raise ValueError(f"unknown crash mode {mode!r}")
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self.name_glob = name_glob
        self.op = op
        self.nth = nth
        self.mode = mode
        self.action = action
        self.fired = False

    def decide(self, op: str, name: str, n: int) -> Optional[Fault]:
        """Fire at the configured (glob, op, nth) triple, once."""
        if self.fired or op != self.op:
            return None
        if not fnmatch.fnmatchcase(name, self.name_glob):
            return None
        # Counters are per (name, op); the glob may match several names,
        # each counting independently — first to reach nth fires.
        if n != self.nth:
            return None
        self.fired = True
        if self.mode == "torn" and op == "write":
            return Fault(kind="torn", action=self.action)
        return Fault(kind=self.mode, action=self.action)

    def spec(self) -> str:
        """The env-var form :func:`injector_from_env` parses."""
        return f"{self.name_glob}:{self.op}:{self.nth}:{self.mode}"


def injector_from_env(
    environ=None,
) -> Optional[CrashPointInjector]:
    """Build the crash-point injector :data:`CRASH_ENV` describes.

    Returns None when the variable is unset; raises ``ValueError`` on a
    malformed spec (a silently ignored crash point would make the chaos
    harness vacuously pass).
    """
    spec = (environ if environ is not None else os.environ).get(CRASH_ENV)
    if not spec:
        return None
    parts = spec.split(":")
    if len(parts) != 4:
        raise ValueError(
            f"{CRASH_ENV}={spec!r}: want <name-glob>:<op>:<nth>:<mode>"
        )
    glob, op, nth, mode = parts
    return CrashPointInjector(
        glob, op, int(nth), mode=mode, action="kill"
    )


def _die(fault: Fault, op: str, path) -> None:
    """Deliver a crash decision: SIGKILL for real, or raise the marker."""
    if fault.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedCrash(op, str(path), fault.kind)


def _checked_write(fp, data: bytes, fault: Optional[Fault], path) -> None:
    """One guarded write: apply the injected failure semantics."""
    if fault is None:
        fp.write(data)
        return
    if fault.kind == "enospc":
        raise OSError(
            errno.ENOSPC, "injected: no space left on device", str(path)
        )
    if fault.kind == "eio":
        raise OSError(errno.EIO, "injected I/O error", str(path))
    if fault.kind == "torn":
        # Half the payload reaches the disk, then the write dies: the
        # on-disk state is genuinely torn, which is the point.
        fp.write(data[: max(1, len(data) // 2)])
        fp.flush()
        try:
            os.fsync(fp.fileno())
        except OSError:
            pass
        if fault.action == "kill":
            _die(fault, "write", path)
        raise OSError(errno.EIO, "injected torn write", str(path))
    if fault.kind == "before":
        _die(fault, "write", path)
    # 'after': complete the write, then die.
    fp.write(data)
    fp.flush()
    try:
        os.fsync(fp.fileno())
    except OSError:
        pass
    _die(fault, "write", path)


def _checked_fsync(fp, fault: Optional[Fault], path) -> None:
    """One guarded fsync."""
    if fault is not None:
        if fault.kind in ("before",):
            _die(fault, "fsync", path)
        if fault.kind in ("enospc", "eio"):
            code = errno.ENOSPC if fault.kind == "enospc" else errno.EIO
            raise OSError(code, f"injected {fault.kind} at fsync", str(path))
    os.fsync(fp.fileno())
    if fault is not None and fault.kind == "after":
        _die(fault, "fsync", path)


def _checked_replace(tmp, path, fault: Optional[Fault]) -> None:
    """One guarded rename, with crash-before/after-rename semantics."""
    if fault is not None and fault.kind in ("before", "crash_before_rename"):
        _die(fault, "rename", path)
    os.replace(tmp, path)
    if fault is not None and fault.kind in ("after", "crash_after_rename"):
        _die(fault, "rename", path)


def fsync_dir(path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_bytes_atomic(
    path, data: bytes, injector: Optional[FaultInjector] = None,
    tmp_prefix: str = ".tmp-",
) -> None:
    """Replace ``path`` with ``data`` atomically (temp + fsync + rename).

    An injected write fault leaves at worst an orphaned temp file (which
    ``fsck`` detects); the destination is only ever touched by the final
    rename, so readers never see a partial file.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=tmp_prefix, suffix=path.suffix + ".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fp:
            fault = injector.on_op("write", path) if injector else None
            _checked_write(fp, data, fault, path)
            fault = injector.on_op("fsync", path) if injector else None
            _checked_fsync(fp, fault, path)
        fault = injector.on_op("rename", path) if injector else None
        _checked_replace(tmp, path, fault)
    except InjectedCrash:
        # A simulated crash leaves the filesystem exactly as-is — that
        # torn state is what the recovery paths are tested against.
        raise
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def write_text_atomic(
    path, text: str, injector: Optional[FaultInjector] = None,
) -> None:
    """:func:`write_bytes_atomic` for text (UTF-8)."""
    write_bytes_atomic(path, text.encode("utf-8"), injector=injector)


class AppendLog:
    """A durable line-append handle with fault injection.

    Each :meth:`append_line` writes ``line + '\\n'``, flushes, and
    fsyncs, so a completed append survives a crash an instant later.
    Injected faults either prevent the append entirely (``ENOSPC``,
    ``EIO``, crash-before) or tear the final line (short write, torn
    crash) — both states the JSONL readers are required to recover
    from.
    """

    def __init__(self, path, injector: Optional[FaultInjector] = None) -> None:
        self.path = pathlib.Path(path)
        self.injector = injector
        self._fp = open(self.path, "a", encoding="utf-8", newline="")
        self._torn = False

    def append_line(self, line: str) -> None:
        """Durably append one line (no embedded newlines allowed)."""
        if "\n" in line:
            raise ValueError("append_line takes a single line")
        if self._torn:
            # A previous append tore mid-line and the caller carried on:
            # terminate the fragment first, or this line would fuse with
            # it into one unreadable hybrid.  The lone fragment line is
            # quarantined by the readers; this line survives intact.
            self._fp.write("\n")
            self._fp.flush()
            self._torn = False
        data = line + "\n"
        fault = self.injector.on_op("write", self.path) if self.injector \
            else None
        if fault is not None and fault.kind == "torn":
            cut = max(1, len(data) // 2)
            self._fp.write(data[:cut])
            self._fp.flush()
            try:
                os.fsync(self._fp.fileno())
            except OSError:
                pass
            if fault.action == "kill":
                _die(fault, "write", self.path)
            self._torn = True
            raise OSError(errno.EIO, "injected torn append", str(self.path))
        if fault is not None:
            if fault.kind == "enospc":
                raise OSError(
                    errno.ENOSPC, "injected: no space left on device",
                    str(self.path),
                )
            if fault.kind == "eio":
                raise OSError(errno.EIO, "injected I/O error", str(self.path))
            if fault.kind == "before":
                _die(fault, "write", self.path)
        self._fp.write(data)
        self._fp.flush()
        if fault is not None and fault.kind == "after":
            try:
                os.fsync(self._fp.fileno())
            except OSError:
                pass
            _die(fault, "write", self.path)
        fault = self.injector.on_op("fsync", self.path) if self.injector \
            else None
        _checked_fsync(self._fp, fault, self.path)

    def close(self) -> None:
        """Close the handle (appends already on disk stay there)."""
        if self._fp is not None:
            self._fp.close()
            self._fp = None


def crc32_hex(data: bytes) -> str:
    """The 8-hex-digit CRC-32 used to frame JSONL records."""
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


__all__ = [
    "AppendLog",
    "CRASH_ENV",
    "CrashPointInjector",
    "Fault",
    "FaultInjector",
    "FAULT_KINDS",
    "InjectedCrash",
    "OPS",
    "SeededFaultInjector",
    "crc32_hex",
    "fsync_dir",
    "injector_from_env",
    "write_bytes_atomic",
    "write_text_atomic",
]
