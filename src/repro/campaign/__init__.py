"""Campaign orchestration: declarative sweeps, parallel, cached, gated.

The evaluation is a large grid — scheme x file x link rate x
loss/corruption/fault configuration — and this package is the layer
that runs such grids as *campaigns*: a serializable
:class:`~repro.campaign.spec.CampaignSpec` expands into cells, a
:class:`~repro.campaign.runner.CampaignRunner` executes them on a
process pool with per-cell failure isolation and deterministic
collection, a :class:`~repro.campaign.cache.ResultCache` serves
content-addressed results so only invalidated cells recompute, a
:class:`~repro.campaign.store.ResultStore` makes runs resumable, and
:mod:`~repro.campaign.regress` pins baselines and gates later runs
under per-metric tolerances.  ``repro campaign run|status|diff|baseline``
is the CLI face; the heaviest benchmark sweeps route their grids
through :func:`~repro.campaign.runner.run_campaign` for multi-core
speedup.
"""

from repro.campaign.cache import ResultCache, cache_key, code_fingerprint
from repro.campaign.executor import execute_cell, flatten_metrics
from repro.campaign.regress import (
    DiffReport,
    Tolerance,
    diff_files,
    diff_records,
    pin_baseline,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSummary,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, CampaignSpecError, Cell
from repro.campaign.store import ResultStore, StoreError, load_records

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignSummary",
    "Cell",
    "DiffReport",
    "ResultCache",
    "ResultStore",
    "StoreError",
    "Tolerance",
    "cache_key",
    "code_fingerprint",
    "diff_files",
    "diff_records",
    "execute_cell",
    "flatten_metrics",
    "load_records",
    "pin_baseline",
    "run_campaign",
]
