"""Per-cell execution: pure functions from cell parameters to metrics.

Each cell kind maps onto one public surface of the toolkit:

- ``threshold`` — the Equation 6 family (factor threshold, size floor,
  break-even residual BER), literal or model-derived, at any ladder
  rate, under loss/corruption extensions;
- ``simulate`` — one session through either engine, with the full
  lossy-link / integrity / fault-timeline configuration vocabulary of
  ``repro simulate``;
- ``fleet`` — a population-scale fleet evaluation: seeded synthesis
  plus closed-form cohort aggregation, reduced to flat summary
  metrics (battery-lifetime/energy percentiles, Eq-6 flip fraction);
- ``resume_policy`` — the restart-vs-resume outage comparison;
- ``experiment`` — a whole indexed table/figure bench run as a pytest
  subprocess, its JSON artifact flattened into gateable metrics.

Execution must be *pure*: metrics depend only on ``(params, seed)``, so
the runner can replay cells at any parallelism, serve them from the
content-addressed cache, and diff them against pinned baselines.
Wall-clock, host names, and file paths therefore never appear in a
metrics dict.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import subprocess
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro import units
from repro.errors import ReproError

#: Seconds an experiment-cell pytest subprocess may run before it is
#: killed and the cell marked failed.
DEFAULT_EXPERIMENT_TIMEOUT_S = 600.0


class CellExecutionError(ReproError):
    """A cell whose parameters cannot be executed."""


def _model_at(link_mbps: float):
    from repro.core.thresholds import model_at_rate

    return model_at_rate(float(link_mbps))


def _loss_arq(params: Dict[str, Any], seed: int):
    from repro.network.arq import ArqConfig
    from repro.network.loss import UniformLoss

    rate = float(params.get("loss_rate", 0.0))
    if rate == 0.0:
        return None, None
    arq_params = params.get("arq") or {}
    arq = ArqConfig(**arq_params) if arq_params else ArqConfig()
    return UniformLoss(rate, seed=seed), arq


def _corruption_recovery(params: Dict[str, Any], seed: int):
    from repro.core.recovery import RecoveryConfig
    from repro.network.corruption import BitFlipCorruption

    rate = float(params.get("corrupt_rate", 0.0))
    if rate == 0.0:
        return None, None
    recovery = RecoveryConfig(
        policy=params.get("recovery_policy", "refetch"),
        max_retries=int(params.get("recovery_retries", 3)),
        deadline_s=params.get("deadline_s"),
    )
    return BitFlipCorruption(rate, seed=seed), recovery


def _faults(params: Dict[str, Any]):
    from repro.network.timeline import FaultTimeline, Outage, RateStep, Stall

    spec = params.get("faults")
    if not spec:
        return None
    if "seeded" in spec:
        return FaultTimeline.seeded(**spec["seeded"])
    events: List[Any] = []
    for step in spec.get("rate_steps", ()):
        events.append(RateStep(*step))
    for outage in spec.get("outages", ()):
        events.append(Outage(*outage))
    for stall in spec.get("stalls", ()):
        events.append(Stall(*stall))
    return FaultTimeline.scripted(*events)


def _resume(params: Dict[str, Any]):
    from repro.core.resume import ResumeConfig

    spec = params.get("resume")
    if not spec:
        return None
    if spec is True:
        return ResumeConfig()
    return ResumeConfig(**spec)


def _recovery_for_threshold(params: Dict[str, Any]):
    from repro.core.recovery import RecoveryConfig

    policy = params.get("recovery_policy")
    if policy is None:
        return None
    return RecoveryConfig(policy=policy)


# -- threshold cells -----------------------------------------------------------


def _execute_threshold(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.core import thresholds
    from repro.network.arq import ArqConfig

    quantity = params.get("quantity", "factor")
    literal = bool(params.get("literal", False))
    codec = params.get("codec", "gzip")
    loss_rate = float(params.get("loss_rate", 0.0))
    corrupt_rate = float(params.get("corrupt_rate", 0.0))
    arq = ArqConfig(**(params.get("arq") or {})) if loss_rate > 0 else None
    recovery = _recovery_for_threshold(params)
    model = None if literal else _model_at(params.get("link_mbps", 11.0))

    if quantity == "factor":
        raw_bytes = float(params["size_mb"]) * units.BYTES_PER_MB
        value = thresholds.factor_threshold(
            raw_bytes, model, codec=codec, loss_rate=loss_rate, arq=arq,
            corrupt_rate=corrupt_rate, recovery=recovery,
        )
        return {"factor_threshold": value}
    if quantity == "size_floor":
        value = thresholds.size_threshold_bytes(
            model, codec=codec, loss_rate=loss_rate, arq=arq,
            corrupt_rate=corrupt_rate, recovery=recovery,
        )
        return {"size_floor_bytes": value}
    if quantity == "break_even_ber":
        raw_bytes = float(params["size_mb"]) * units.BYTES_PER_MB
        value = thresholds.break_even_corrupt_rate(
            raw_bytes, float(params["factor"]), model, codec=codec,
            recovery=recovery,
        )
        return {"break_even_ber": value}
    if quantity == "worthwhile":
        raw_bytes = float(params["size_mb"]) * units.BYTES_PER_MB
        value = thresholds.compression_worthwhile(
            raw_bytes, float(params["factor"]), model, codec=codec,
            loss_rate=loss_rate, arq=arq,
            corrupt_rate=corrupt_rate, recovery=recovery,
        )
        return {"worthwhile": bool(value)}
    raise CellExecutionError(f"unknown threshold quantity {quantity!r}")


# -- simulate cells ------------------------------------------------------------


def _run_scenario(session, scenario: str, raw_bytes: int, compressed: int,
                  codec: str):
    if scenario == "raw":
        return session.raw(raw_bytes)
    if scenario == "sequential":
        return session.precompressed(
            raw_bytes, compressed, codec=codec, interleave=False
        )
    if scenario == "interleaved":
        return session.precompressed(
            raw_bytes, compressed, codec=codec, interleave=True
        )
    if scenario == "sleep":
        return session.precompressed(
            raw_bytes, compressed, codec=codec, interleave=False,
            radio_power_save=True,
        )
    if scenario == "ondemand":
        return session.ondemand(raw_bytes, compressed, codec=codec,
                                overlap=True)
    if scenario == "upload-raw":
        return session.upload_raw(raw_bytes)
    if scenario == "upload":
        return session.upload_compressed(
            raw_bytes, compressed, codec=codec, interleave=True
        )
    raise CellExecutionError(f"unknown scenario {scenario!r}")


def _execute_simulate(
    params: Dict[str, Any], seed: int, trace: bool = False
) -> Tuple[Dict[str, Any], Optional[List[Dict[str, Any]]]]:
    engine = params.get("engine", "analytic")
    model = _model_at(params.get("link_mbps", 11.0))
    loss, arq = _loss_arq(params, seed)
    corruption, recovery = _corruption_recovery(params, seed)
    faults = _faults(params)
    resume = _resume(params)
    watchdog = None
    if params.get("watchdog_s"):
        from repro.core.watchdog import WatchdogConfig

        watchdog = WatchdogConfig.uniform(float(params["watchdog_s"]))

    tracer = None
    if trace:
        from repro.observability import SessionTracer

        tracer = SessionTracer()
    kwargs = dict(
        loss=loss, arq=arq, corruption=corruption, recovery=recovery,
        faults=faults, resume=resume, watchdog=watchdog, tracer=tracer,
    )
    if engine == "des":
        from repro.simulator.des import DesSession

        session = DesSession(model, **kwargs)
    elif engine == "analytic":
        from repro.simulator.analytic import AnalyticSession

        session = AnalyticSession(model, **kwargs)
    else:
        raise CellExecutionError(f"unknown engine {engine!r}")

    raw_bytes = int(float(params["size_mb"]) * units.BYTES_PER_MB)
    factor = float(params.get("factor", 1.0))
    compressed = int(raw_bytes / factor) if factor > 0 else raw_bytes
    scenario = params.get("scenario", "interleaved")
    result = _run_scenario(
        session, scenario, raw_bytes, compressed, params.get("codec", "gzip")
    )

    metrics: Dict[str, Any] = {
        "time_s": result.time_s,
        "energy_j": result.energy_j,
        "transfer_bytes": result.transfer_bytes,
    }
    if result.link_stats is not None:
        metrics["loss_overhead_j"] = result.loss_overhead_j
        metrics["arq_retries"] = result.link_stats.retries
    if result.recovery_stats is not None:
        metrics["integrity_overhead_j"] = result.integrity_overhead_j
        metrics["recovery_energy_j"] = result.recovery_energy_j
    if result.fault_stats is not None:
        metrics["fault_overhead_j"] = result.fault_overhead_j
        metrics["fault_dead_time_s"] = result.fault_dead_time_s
    for tag, joules in sorted(result.energy_breakdown().items()):
        metrics[f"energy_by_tag.{tag}"] = joules

    trace_records = None
    if tracer is not None:
        trace_records = list(tracer.to_records())
    return metrics, trace_records


# -- fleet cells ---------------------------------------------------------------


def _execute_fleet(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.fleet.aggregate import evaluate_population
    from repro.fleet.population import PopulationSpec, synthesize

    spec = PopulationSpec.from_params(params)
    population = synthesize(spec, int(params.get("population_seed", seed)))
    summary = evaluate_population(
        population,
        policy=params.get("policy", "fleet-advised"),
        collision_overhead=float(params.get("collision_overhead", 0.0)),
    )
    return summary.metrics()


# -- resume-policy cells -------------------------------------------------------


def _execute_resume_policy(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.core.resume import compare_restart_resume

    raw_bytes = int(float(params["size_mb"]) * units.BYTES_PER_MB)
    factor = float(params.get("factor", 1.0))
    compressed = int(raw_bytes / factor) if factor > 0 else raw_bytes
    cmp = compare_restart_resume(
        raw_bytes,
        compressed,
        codec=params.get("codec", "gzip"),
        outage_at_fraction=float(params.get("outage_at_fraction", 0.9)),
        outage_s=float(params.get("outage_s", 2.0)),
        resume=_resume(params),
    )
    return {
        "restart_overhead_j": cmp.restart_overhead_j,
        "resume_overhead_j": cmp.resume_overhead_j,
        "saving_j": cmp.saving_j,
        "resume_wins": bool(cmp.resume_wins),
    }


# -- experiment cells ----------------------------------------------------------


def flatten_metrics(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten a JSON artifact into dotted/indexed scalar metric names.

    Numbers, strings, booleans and nulls become gateable leaves;
    containers recurse.  ``{"energy": {"raw": [1, 2]}}`` flattens to
    ``{"energy.raw[0]": 1, "energy.raw[1]": 2}``.
    """
    out: Dict[str, Any] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(value[key], child))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            out.update(flatten_metrics(item, f"{prefix}[{i}]"))
    else:
        out[prefix or "value"] = value
    return out


def _execute_experiment(
    params: Dict[str, Any], seed: int, repo_root: Optional[str]
) -> Dict[str, Any]:
    from repro.experiments import get_experiment

    exp = get_experiment(params["id"])
    root = pathlib.Path(repo_root or os.getcwd())
    bench = root / "benchmarks" / exp.bench
    if not bench.exists():
        raise CellExecutionError(f"bench not found: {bench}")
    artifact = None
    stamp_before = None
    if exp.artifact != "-":
        artifact = root / "benchmarks" / "results" / f"{exp.artifact}.json"
        if artifact.exists():
            stamp_before = artifact.stat().st_mtime_ns
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [
        sys.executable, "-m", "pytest", f"benchmarks/{exp.bench}",
        "--benchmark-only", "-q", "-p", "no:cacheprovider",
    ]
    timeout = float(params.get("timeout_s", DEFAULT_EXPERIMENT_TIMEOUT_S))
    try:
        proc = subprocess.run(
            cmd, cwd=str(root), env=env, timeout=timeout,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
    except subprocess.TimeoutExpired:
        raise CellExecutionError(
            f"experiment {exp.id!r} timed out after {timeout:g}s"
        )
    if proc.returncode != 0:
        tail = proc.stdout.decode("utf-8", "replace")[-2000:]
        raise CellExecutionError(
            f"experiment {exp.id!r} exited {proc.returncode}:\n{tail}"
        )
    metrics: Dict[str, Any] = {"exit_code": proc.returncode}
    if artifact is not None:
        # Artifact JSONs are checked into the repo, so a bench that
        # passes without rewriting its artifact would otherwise gate on
        # the stale checked-in copy with no warning.
        if not artifact.exists():
            raise CellExecutionError(
                f"experiment {exp.id!r} passed but wrote no artifact "
                f"{artifact.name}"
            )
        if (stamp_before is not None
                and artifact.stat().st_mtime_ns == stamp_before):
            raise CellExecutionError(
                f"experiment {exp.id!r} passed but did not rewrite its "
                f"artifact {artifact.name}; refusing to report the stale "
                f"copy's metrics"
            )
        payload = json.loads(artifact.read_text())
        for name, value in flatten_metrics(payload, "artifact").items():
            metrics[name] = value
    return metrics


# -- dispatch ------------------------------------------------------------------


def execute_cell(
    params: Dict[str, Any],
    seed: int,
    repo_root: Optional[str] = None,
    trace: bool = False,
) -> Tuple[Dict[str, Any], Optional[List[Dict[str, Any]]]]:
    """Run one cell; returns ``(metrics, trace_records_or_None)``.

    Raises on bad parameters or failed execution — the runner converts
    exceptions into failed result records, it never lets them escape a
    worker.
    """
    kind = params.get("kind", "simulate")
    if kind == "threshold":
        return _execute_threshold(params, seed), None
    if kind == "simulate":
        return _execute_simulate(params, seed, trace=trace)
    if kind == "fleet":
        return _execute_fleet(params, seed), None
    if kind == "resume_policy":
        return _execute_resume_policy(params, seed), None
    if kind == "experiment":
        return _execute_experiment(params, seed, repo_root), None
    raise CellExecutionError(f"unknown cell kind {kind!r}")


def sanitize_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Make a metrics dict JSON-stable: non-finite floats to strings.

    ``inf`` thresholds are meaningful results (compression never pays);
    canonical JSON must round-trip them identically on every platform,
    so they are stored as the strings ``"inf"``/``"-inf"``/``"nan"``.
    """
    out: Dict[str, Any] = {}
    for key, value in metrics.items():
        if isinstance(value, float) and not math.isfinite(value):
            out[key] = "nan" if math.isnan(value) else (
                "inf" if value > 0 else "-inf"
            )
        else:
            out[key] = value
    return out
