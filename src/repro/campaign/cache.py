"""Content-addressed result cache: recompute only what changed.

A cell's result is addressed by ``sha256(cell_hash : seed : code
fingerprint)``, where the *code fingerprint* hashes every source file
the result could depend on — the whole ``repro`` package, plus the
``benchmarks/`` tree when the campaign runs experiment cells.  Editing
any source file therefore invalidates every cached cell at once (safe,
coarse), while re-running an unchanged campaign recomputes nothing.

Records are stored one JSON file per key, fanned out over two-hex-digit
subdirectories, written atomically through
:mod:`repro.campaign.faultio` (temp file + fsync + rename) so parallel
campaigns sharing one cache directory never read torn files.  Every
entry is CRC-framed like a results record; an entry that fails to parse
*or* fails its CRC degrades to a miss (counted separately, so silent
rot is visible) and ``repro campaign fsck`` can find and quarantine it.
A cache hit returns the *exact* record the cold run produced —
byte-identity of warm and cold results is a tested invariant, so
nothing run-specific (timings, attempt counts, cache status) is ever
stored in a record.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Iterable, Optional

import repro
from repro.campaign.faultio import FaultInjector, write_text_atomic
from repro.campaign.store import check_frame, frame_record

#: Bumped whenever the record shape changes; part of every cache key.
CACHE_SCHEMA_VERSION = 1


def _iter_source_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def code_fingerprint(extra_roots: Iterable[os.PathLike] = ()) -> str:
    """Hex digest over the repro package sources (+ any extra trees).

    The digest covers relative path names and file contents, so moving,
    editing, adding or deleting any module changes it.
    """
    digest = hashlib.sha256()
    package_root = pathlib.Path(repro.__file__).parent
    roots = [package_root] + [pathlib.Path(r) for r in extra_roots]
    for root in roots:
        base = root if root.is_dir() else root.parent
        for path in _iter_source_files(root):
            digest.update(str(path.relative_to(base)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


def cache_key(cell_hash: str, seed: int, fingerprint: str) -> str:
    """The content address of one cell's result."""
    return hashlib.sha256(
        f"{CACHE_SCHEMA_VERSION}:{cell_hash}:{seed}:{fingerprint}".encode()
    ).hexdigest()


class ResultCache:
    """A directory of content-addressed cell results.

    ``injector`` threads deterministic fault injection through every
    store; a failed store surfaces the injected ``OSError`` (the runner
    treats the cache as best-effort), never a torn entry under the
    final name.
    """

    def __init__(self, root, injector: Optional[FaultInjector] = None) -> None:
        self.root = pathlib.Path(root)
        self.injector = injector
        self.hits = 0
        self.misses = 0
        #: Misses caused by an entry that existed but failed parse/CRC.
        self.corrupt = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record, or None (counts the hit/miss either way).

        An unreadable, unparsable, or CRC-mismatched entry degrades to
        a miss — and bumps ``corrupt`` so rot never passes silently.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            framed = json.loads(text)
            if not isinstance(framed, dict):
                raise ValueError("cache entry is not an object")
        except ValueError:
            self.misses += 1
            self.corrupt += 1
            return None
        if check_frame(framed) is False:
            self.misses += 1
            self.corrupt += 1
            return None
        record = {k: v for k, v in framed.items() if k != "crc"}
        self.hits += 1
        return record

    def store(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically persist one CRC-framed record under its address."""
        path = self._path(key)
        write_text_atomic(
            path,
            json.dumps(frame_record(record), sort_keys=True),
            injector=self.injector,
        )

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0
