"""Built-in campaign specs: the sweeps the evaluation already runs.

Each preset is the *single source of truth* for one sweep's grid — the
benchmark that regenerates the corresponding artifact builds its spec
here and assembles its tables from the campaign records, so the bench,
the ``repro campaign`` CLI, and the pinned baselines can never drift
apart.

Presets return fresh :class:`CampaignSpec` objects; mutating one never
affects the next caller.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.campaign.spec import CampaignSpec

#: Equation 6 sweep sizes (MB), the bench's seven canonical points.
EQ6_SIZES_MB = (0.01, 0.05, 0.128, 0.5, 1, 4, 8)

#: Loss-rate sweep points (0 = the paper's clean channel).
LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)

#: Residual bit-error-rate sweep points.
BER_RATES = (0.0, 1e-8, 1e-7, 3e-7, 1e-6)

#: Representative whole-file factors per scheme (Table 2 text-file
#: ballpark: gzip ~3.8, compress ~2.9, bzip2 ~4.3).
SCHEME_FACTORS = {"gzip": 3.8, "compress": 2.9, "bzip2": 4.3}

#: Scheme order shared with ``benchmarks.common.SCHEMES``.
SCHEMES = ("gzip", "compress", "bzip2")

#: Recovery policies ranked by the corruption sweep.
RECOVERY_POLICIES = ("restart", "refetch", "degrade")

#: The rate-trajectory sweep's scripted/seeded schedules, in the
#: serializable fault vocabulary of the simulate cell kind.
TRAJECTORIES: List[Dict[str, Any]] = [
    {"label": "steady 11", "faults": None},
    {"label": "11 -> 2 at 1s", "faults": {"rate_steps": [[1.0, 2.0]]}},
    {
        "label": "fade 11 -> 1 -> 11",
        "faults": {"rate_steps": [[0.8, 1.0], [2.2, 11.0]]},
    },
    {
        "label": "outage + stall",
        "faults": {"outages": [[0.9, 1.5, 0.3]], "stalls": [[3.0, 0.5]]},
    },
    {
        "label": "seeded walk",
        "faults": {
            "seeded": {
                "seed": 7,
                "horizon_s": 12.0,
                "rate_walk_interval_s": 2.0,
                "outage_interval_s": 8.0,
            }
        },
    },
]

#: Default tolerances pinned baselines are gated under: tight relative
#: drift for every metric, with a little extra slack for bisection
#: results whose last ulp depends on the platform's libm.
DEFAULT_TOLERANCES: Dict[str, Dict[str, float]] = {
    "default": {"rel": 1e-9, "abs": 1e-12},
    "factor_threshold": {"rel": 1e-6, "abs": 1e-9},
    "break_even_ber": {"rel": 1e-4, "abs": 1e-12},
    "size_floor_bytes": {"rel": 0.0, "abs": 1.0},
}


def eq6_spec() -> CampaignSpec:
    """The Equation 6 threshold sweep (literal and model-derived)."""
    cells: List[Dict[str, Any]] = []
    for literal in (True, False):
        tag = "literal" if literal else "model"
        cells.append({
            "label": f"floor/{tag}",
            "quantity": "size_floor",
            "literal": literal,
        })
        for size in EQ6_SIZES_MB:
            cells.append({
                "label": f"factor/{size}/{tag}",
                "quantity": "factor",
                "size_mb": size,
                "literal": literal,
            })
    return CampaignSpec(
        name="eq6-thresholds",
        description="Equation 6 selective-compression thresholds",
        mode="list",
        base={"kind": "threshold", "codec": "gzip"},
        cells=cells,
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def eq6_dense_spec() -> CampaignSpec:
    """A dense Eq-6 threshold plane: the parallel-speedup workhorse.

    Every cell is a 200-iteration bisection over full model
    evaluations, so the grid is compute-bound and embarrassingly
    parallel — the ``make campaign-perf`` target replays it at ``-j 1``
    and ``-j N`` and reports the measured speedup.
    """
    return CampaignSpec(
        name="eq6-dense",
        description="Dense Equation 6 plane: size x codec x loss x BER",
        mode="grid",
        base={"kind": "threshold", "quantity": "factor"},
        axes={
            "size_mb": [0.01, 0.02, 0.05, 0.128, 0.25, 0.5, 1, 2, 4, 8],
            "codec": list(SCHEMES),
            "loss_rate": [0.0, 0.05, 0.15],
            "corrupt_rate": [0.0, 1e-7],
        },
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def eq6_mega_spec() -> CampaignSpec:
    """A ~1M-cell Eq-6 plane: the batch engine's scale demonstration.

    Every cell is batch-eligible (threshold/factor over loss x BER), so
    the vectorized engine evaluates the whole campaign in broadcasted
    numpy sweeps; with ``--shards`` the result stream fans out across
    shard files keyed by cell hash.  At scalar-path speeds this grid
    would take half a day — batched it completes in minutes (see
    EXPERIMENTS.md).
    """
    sizes = [round(0.01 * 1.06 ** i, 6) for i in range(120)]
    losses = [round(0.5 * i / 55, 6) for i in range(56)]
    bers = [0.0] + [
        round(10.0 ** (-9.0 + 7.0 * i / 48.0), 16) for i in range(49)
    ]
    return CampaignSpec(
        name="eq6-mega",
        description="Million-cell Equation 6 plane for the batch engine",
        mode="grid",
        base={"kind": "threshold", "quantity": "factor"},
        axes={
            "size_mb": sizes,
            "codec": list(SCHEMES),
            "loss_rate": losses,
            "corrupt_rate": bers,
        },
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def loss_sweep_spec() -> CampaignSpec:
    """The lossy-link sweep: thresholds + 1 MB energies per loss rate."""
    cells: List[Dict[str, Any]] = []
    for rate in LOSS_RATES:
        cells.append({
            "label": f"floor/{rate}",
            "kind": "threshold",
            "quantity": "size_floor",
            "loss_rate": rate,
        })
        for scheme in SCHEMES:
            cells.append({
                "label": f"factor/{rate}/{scheme}",
                "kind": "threshold",
                "quantity": "factor",
                "size_mb": 1,
                "codec": scheme,
                "loss_rate": rate,
            })
        cells.append({
            "label": f"energy/{rate}/raw",
            "kind": "simulate",
            "scenario": "raw",
            "size_mb": 1,
            "loss_rate": rate,
        })
        for scheme in SCHEMES:
            cells.append({
                "label": f"energy/{rate}/{scheme}",
                "kind": "simulate",
                "scenario": "interleaved",
                "size_mb": 1,
                "codec": scheme,
                "factor": SCHEME_FACTORS[scheme],
                "loss_rate": rate,
            })
    return CampaignSpec(
        name="loss-sweep",
        description="Lossy-link break-even shift and ARQ energy tax",
        mode="list",
        base={"engine": "analytic"},
        cells=cells,
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def corruption_sweep_spec() -> CampaignSpec:
    """The residual-corruption sweep: energies + break-even BERs."""
    cells: List[Dict[str, Any]] = [{
        "label": "energy/raw",
        "kind": "simulate",
        "scenario": "raw",
        "size_mb": 1,
    }]
    for ber in BER_RATES:
        for scheme in SCHEMES:
            cells.append({
                "label": f"energy/{ber}/{scheme}",
                "kind": "simulate",
                "scenario": "interleaved",
                "size_mb": 1,
                "codec": scheme,
                "factor": SCHEME_FACTORS[scheme],
                "corrupt_rate": ber,
            })
    for scheme in SCHEMES:
        for policy in RECOVERY_POLICIES:
            cells.append({
                "label": f"break-even/{scheme}/{policy}",
                "kind": "threshold",
                "quantity": "break_even_ber",
                "size_mb": 1,
                "codec": scheme,
                "factor": SCHEME_FACTORS[scheme],
                "recovery_policy": policy,
            })
    return CampaignSpec(
        name="corruption-sweep",
        description="Recovery energy vs residual BER, break-even BERs",
        mode="list",
        base={"engine": "analytic"},
        cells=cells,
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def trajectory_spec() -> CampaignSpec:
    """Fault trajectories x scheme x engine, plus outage policies."""
    cells: List[Dict[str, Any]] = []
    for traj in TRAJECTORIES:
        for scheme in ("raw", "sequential", "interleaved"):
            for engine in ("analytic", "des"):
                cell: Dict[str, Any] = {
                    "label": f"run/{traj['label']}/{scheme}/{engine}",
                    "kind": "simulate",
                    "engine": engine,
                    "scenario": scheme,
                    "size_mb": 4,
                    "factor": SCHEME_FACTORS["gzip"],
                    "codec": "gzip",
                    "resume": True,
                }
                if traj["faults"] is not None:
                    cell["faults"] = traj["faults"]
                cells.append(cell)
    for fraction in (0.5, 0.9):
        cells.append({
            "label": f"policy/{fraction}",
            "kind": "resume_policy",
            "size_mb": 4,
            "factor": SCHEME_FACTORS["gzip"],
            "outage_at_fraction": fraction,
        })
    return CampaignSpec(
        name="rate-trajectory",
        description="Fault timelines x scheme x engine, outage policies",
        mode="list",
        cells=cells,
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def smoke_spec() -> CampaignSpec:
    """The tiny CI campaign ``make campaign-smoke`` gates against."""
    return CampaignSpec(
        name="campaign-smoke",
        description="Tiny cross-kind campaign for the CI regression gate",
        mode="list",
        base={},
        cells=[
            {
                "label": "floor/literal",
                "kind": "threshold",
                "quantity": "size_floor",
                "literal": True,
            },
            {
                "label": "factor/1MB/model",
                "kind": "threshold",
                "quantity": "factor",
                "size_mb": 1,
            },
            {
                "label": "factor/1MB/lossy",
                "kind": "threshold",
                "quantity": "factor",
                "size_mb": 1,
                "loss_rate": 0.1,
            },
            {
                "label": "sim/raw",
                "kind": "simulate",
                "scenario": "raw",
                "size_mb": 0.5,
            },
            {
                "label": "sim/interleaved",
                "kind": "simulate",
                "scenario": "interleaved",
                "size_mb": 0.5,
                "factor": 3.8,
            },
            {
                "label": "sim/des-loss",
                "kind": "simulate",
                "engine": "des",
                "scenario": "interleaved",
                "size_mb": 0.1,
                "factor": 3.8,
                "loss_rate": 0.05,
            },
            {
                "label": "policy/0.9",
                "kind": "resume_policy",
                "size_mb": 1,
                "factor": 3.8,
                "outage_at_fraction": 0.9,
            },
        ],
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def fleet_pop_spec() -> CampaignSpec:
    """The population sweep: fleet composition x AP density x policy.

    Every cell synthesizes a seeded 20k-device fleet and reduces it
    through the closed-form cohort aggregator (``kind=fleet``), so the
    36-cell grid spans mixes, contention levels and compression
    policies in seconds.
    """
    return CampaignSpec(
        name="fleet-pop",
        description="Population-scale fleet: mix x AP density x policy",
        mode="grid",
        base={"kind": "fleet", "devices": 20000},
        axes={
            "mix": ["balanced", "pda-heavy", "media-heavy"],
            "devices_per_ap": [8, 25, 60],
            "policy": ["raw", "compressed", "advised", "fleet-advised"],
        },
        tolerances=dict(DEFAULT_TOLERANCES),
    )


def experiments_spec(
    ids: Optional[Iterable[str]] = None, paper_only: bool = False
) -> CampaignSpec:
    """Every indexed experiment (or a subset) as one campaign.

    ``repro campaign run --experiments all -j N`` regenerates the full
    evaluation in parallel through this spec.
    """
    from repro.experiments import all_experiments, get_experiment

    if ids:
        exps = [get_experiment(i) for i in ids]
    else:
        exps = all_experiments(include_extensions=not paper_only)
    return CampaignSpec(
        name="experiments",
        description="Full paper-figure regeneration via the bench index",
        mode="list",
        base={"kind": "experiment"},
        cells=[{"label": f"exp/{e.id}", "id": e.id} for e in exps],
        tolerances={
            "default": {"rel": 1e-6, "abs": 1e-9},
        },
    )


#: Name -> builder for the CLI's ``--preset`` flag.
PRESETS = {
    "eq6": eq6_spec,
    "eq6-dense": eq6_dense_spec,
    "eq6-mega": eq6_mega_spec,
    "loss": loss_sweep_spec,
    "corruption": corruption_sweep_spec,
    "trajectory": trajectory_spec,
    "fleet-pop": fleet_pop_spec,
    "smoke": smoke_spec,
}


def get_preset(name: str) -> CampaignSpec:
    """Build a preset spec by name (KeyError lists the known names)."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; known: {', '.join(sorted(PRESETS))}"
        ) from None
