"""Crash-chaos harness: SIGKILL a live campaign, resume, compare bytes.

The crash-only contract says a campaign may die at *any* instant and a
``--resume`` run afterwards must converge on exactly the bytes an
uninterrupted run produces, with a clean ``fsck``.  This module proves
it with real process death, not simulated exceptions:

1. run a reference campaign to completion in a child process;
2. for each seeded crash point, run a fresh child with
   :data:`~repro.campaign.faultio.CRASH_ENV` set so the child's
   :class:`~repro.campaign.faultio.CrashPointInjector` SIGKILLs it at a
   deterministic I/O operation (the N-th write/fsync/rename on a named
   artifact — never a wall-clock timer);
3. resume the wreckage with a second child, repair-fsck the directory,
   and assert ``results.jsonl`` is byte-identical to the reference and
   a final fsck reports clean.

Crash points are keyed on per-path operation counters, so the schedule
replays identically at any parallelism.  All runs use ``--no-cache``:
a warm cache would mask the append path the harness exists to torture.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import repro
from repro.campaign.faultio import CRASH_ENV
from repro.campaign.fsck import EXIT_CLEAN, EXIT_REPAIRED, fsck_campaign

#: Seconds a chaos child may run before the harness gives up on it.
DEFAULT_CHILD_TIMEOUT_S = 300.0


@dataclass
class ChaosOutcome:
    """What happened at one crash point."""

    #: The ``<name-glob>:<op>:<nth>:<mode>`` spec planted in the child.
    point: str
    #: True when the child actually died at the point (SIGKILL observed).
    fired: bool = False
    #: True when resume + fsck converged on the reference bytes.
    survived: bool = False
    detail: str = ""


@dataclass
class ChaosReport:
    """The harness verdict over every crash point."""

    spec_path: str
    outcomes: List[ChaosOutcome] = field(default_factory=list)
    #: Points the harness required to actually fire.
    min_fired: int = 10
    fatal: Optional[str] = None

    @property
    def fired(self) -> List[ChaosOutcome]:
        """Outcomes whose crash point actually killed the child."""
        return [o for o in self.outcomes if o.fired]

    @property
    def ok(self) -> bool:
        """Every fired point survived, and enough points fired."""
        if self.fatal is not None:
            return False
        fired = self.fired
        return (
            len(fired) >= self.min_fired
            and all(o.survived for o in fired)
        )

    def render(self) -> str:
        """Human-readable verdict, one line per point."""
        lines = [f"crash-chaos over {self.spec_path}"]
        if self.fatal is not None:
            lines.append(f"  FATAL: {self.fatal}")
            return "\n".join(lines)
        for o in self.outcomes:
            status = (
                "survived" if o.fired and o.survived
                else "FAILED" if o.fired
                else "did not fire"
            )
            detail = f" — {o.detail}" if o.detail else ""
            lines.append(f"  [{status}] {o.point}{detail}")
        fired = self.fired
        lines.append(
            f"  {len(fired)}/{len(self.outcomes)} points fired "
            f"(need >= {self.min_fired}), "
            f"{sum(1 for o in fired if o.survived)} survived"
        )
        lines.append("  PASS" if self.ok else "  FAIL")
        return "\n".join(lines)


def default_crash_points(cells: int, shards: int = 1) -> List[str]:
    """The seeded SIGKILL schedule for a campaign of ``cells`` cells.

    Covers the append path (each record write, torn/before/after), both
    atomic rewrites of ``results.jsonl`` (open and finalize renames),
    and the journaled manifest.  Write op 1 on ``results.jsonl`` is the
    open rewrite; appends are ops 2..cells+1; finalize is the last.

    With ``shards > 1`` the schedule targets the shard files instead
    (``results-*.jsonl`` — per-path counters, so the first shard to
    reach the nth op fires) plus the ``layout.json`` renames that
    bracket a reshard.
    """
    points: List[str] = []
    modes = ("torn", "before", "after")
    target = "results.jsonl" if shards == 1 else "results-*.jsonl"
    for nth in range(1, min(cells, 4) + 2):
        points.append(f"{target}:write:{nth}:{modes[nth % 3]}")
    points.extend([
        f"{target}:write:1:torn",
        f"{target}:write:2:before",
        f"{target}:rename:1:before",
        f"{target}:rename:1:after",
        f"{target}:rename:2:before",
        f"{target}:rename:2:after",
        f"{target}:fsync:2:before",
    ])
    if shards == 1:
        points.insert(7, f"results.jsonl:write:{cells + 1}:after")
    else:
        points.extend([
            "layout.json:rename:1:before",
            "layout.json:rename:1:after",
            "layout.json:rename:2:before",
        ])
    points.extend([
        "manifest.json:write:1:before",
        "manifest.json:rename:1:after",
        "quarantine.jsonl:write:1:before",
    ])
    seen: Dict[str, None] = {}
    for p in points:
        seen.setdefault(p)
    return list(seen)


def _results_bytes(out_dir: pathlib.Path) -> bytes:
    """The concatenated bytes of every result file, in layout order.

    Works for both layouts: the single ``results.jsonl`` or the sorted
    shard files.  A finished run holds only its live layout (``open``
    drops stale files), so equal concatenations mean equal files.
    """
    from repro.campaign.store import result_files

    return b"".join(p.read_bytes() for p in result_files(out_dir))


def _child_env(crash_point: Optional[str] = None) -> Dict[str, str]:
    env = dict(os.environ)
    src = str(pathlib.Path(repro.__file__).parent.parent)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    env.pop(CRASH_ENV, None)
    if crash_point is not None:
        env[CRASH_ENV] = crash_point
    return env


def _run_child(
    spec_path: pathlib.Path,
    out_dir: pathlib.Path,
    jobs: int,
    resume: bool,
    crash_point: Optional[str],
    timeout_s: float,
    shards: int = 1,
) -> subprocess.CompletedProcess:
    cmd = [
        sys.executable, "-m", "repro.cli", "campaign", "run",
        "--spec", str(spec_path), "--out", str(out_dir),
        "--no-cache", "-j", str(jobs),
    ]
    if shards > 1:
        cmd.extend(["--shards", str(shards)])
    if resume:
        cmd.append("--resume")
    return subprocess.run(
        cmd,
        env=_child_env(crash_point),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=timeout_s,
    )


def run_chaos(
    spec,
    work_dir,
    jobs: int = 2,
    points: Optional[List[str]] = None,
    min_fired: int = 10,
    timeout_s: float = DEFAULT_CHILD_TIMEOUT_S,
    shards: int = 1,
) -> ChaosReport:
    """Run the whole harness; returns the per-point verdict.

    ``spec`` is a :class:`~repro.campaign.spec.CampaignSpec`;
    ``work_dir`` holds the reference run and one subdirectory per crash
    point (wiped per point so every run starts from the crash state
    alone).
    """
    work_dir = pathlib.Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    spec_path = spec.save(work_dir / "chaos-spec.json")
    cells = len(spec.expand())
    if points is None:
        points = default_crash_points(cells, shards=shards)
    report = ChaosReport(spec_path=str(spec_path), min_fired=min_fired)

    ref_dir = work_dir / "reference"
    shutil.rmtree(ref_dir, ignore_errors=True)
    ref = _run_child(
        spec_path, ref_dir, jobs, False, None, timeout_s, shards=shards
    )
    if ref.returncode != 0:
        report.fatal = (
            f"reference run exited {ref.returncode}:\n"
            f"{ref.stdout.decode('utf-8', 'replace')[-2000:]}"
        )
        return report
    expected = _results_bytes(ref_dir)

    for i, point in enumerate(points):
        outcome = ChaosOutcome(point=point)
        report.outcomes.append(outcome)
        crash_dir = work_dir / f"point-{i:02d}"
        shutil.rmtree(crash_dir, ignore_errors=True)
        try:
            crashed = _run_child(
                spec_path, crash_dir, jobs, False, point, timeout_s,
                shards=shards,
            )
        except subprocess.TimeoutExpired:
            outcome.fired = True
            outcome.detail = "child hung at the crash point"
            continue
        if crashed.returncode == -signal.SIGKILL:
            outcome.fired = True
        elif crashed.returncode == 0:
            outcome.detail = "campaign completed before the point matched"
            continue
        else:
            outcome.fired = True
            outcome.detail = (
                f"child exited {crashed.returncode} instead of dying"
            )
            continue
        try:
            resumed = _run_child(
                spec_path, crash_dir, jobs, True, None, timeout_s,
                shards=shards,
            )
        except subprocess.TimeoutExpired:
            outcome.detail = "resume run hung"
            continue
        if resumed.returncode != 0:
            outcome.detail = (
                f"resume exited {resumed.returncode}:\n"
                f"{resumed.stdout.decode('utf-8', 'replace')[-500:]}"
            )
            continue
        got = _results_bytes(crash_dir)
        if got != expected:
            outcome.detail = "result files differ from reference"
            continue
        repair = fsck_campaign(crash_dir, repair=True)
        if repair.exit_code not in (EXIT_CLEAN, EXIT_REPAIRED):
            outcome.detail = f"repair fsck exited {repair.exit_code}"
            continue
        verify = fsck_campaign(crash_dir)
        if verify.exit_code != EXIT_CLEAN:
            outcome.detail = f"post-repair fsck exited {verify.exit_code}"
            continue
        outcome.survived = True
    return report


__all__ = [
    "ChaosOutcome",
    "ChaosReport",
    "DEFAULT_CHILD_TIMEOUT_S",
    "default_crash_points",
    "run_chaos",
]
