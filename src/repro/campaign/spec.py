"""Declarative campaign specs: parameter spaces over the whole toolkit.

A :class:`CampaignSpec` names *what* to compute — a parameter space
whose cells are threshold derivations, simulated sessions, recovery
policy comparisons, or whole indexed experiments — without saying how
to schedule it.  The runner turns a spec into work; the spec only has
to be serializable, hashable, and deterministic:

- ``grid`` spaces take the cartesian product of their axes (axes are
  iterated in sorted name order, so the expansion — like every hash in
  this package — is independent of dict insertion order);
- ``zip`` spaces walk their equal-length axes in lockstep;
- ``list`` spaces enumerate explicit cells, each merged over ``base``.

Every cell gets a *content hash* (canonical JSON of its parameters) and
a *derived seed* mixed from the spec's base seed and that hash, so the
same cell always replays with the same randomness no matter which spec
it appears in, at which index, or at which ``-j`` — which is what makes
the content-addressed cache and the ``-j 1`` / ``-j N`` byte-identity
guarantee possible.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ReproError

#: Bumped whenever the spec schema or the cell vocabulary changes
#: incompatibly; stored in every manifest and baseline header.
SPEC_SCHEMA_VERSION = 1

#: Cell kinds the executor understands.
CELL_KINDS = ("threshold", "simulate", "resume_policy", "experiment", "fleet")


class CampaignSpecError(ReproError):
    """A spec that cannot be expanded into cells."""


def canonical_json(obj: Any) -> str:
    """Canonical (sorted, compact) JSON for hashing and byte-identity."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any) -> str:
    """Hex SHA-256 of an object's canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, cell_hash: str) -> int:
    """The cell's deterministic seed: base seed mixed with its hash.

    Derived from the cell's own content (not its index or siblings) so
    editing a spec never reseeds — and so never invalidates the cached
    results of — the cells it keeps.
    """
    digest = hashlib.sha256(f"{base_seed}:{cell_hash}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class Cell:
    """One expanded unit of campaign work."""

    index: int
    cell_id: str
    params: Dict[str, Any]
    seed: int

    @property
    def kind(self) -> str:
        """The executor dispatch key."""
        return self.params.get("kind", "simulate")

    @property
    def cell_hash(self) -> str:
        """Content hash of the parameters (code-independent)."""
        return content_hash(self.params)


@dataclass(frozen=True)
class CampaignSpec:
    """A named, serializable sweep definition.

    Attributes:
        name: campaign identity (manifest, baselines, metric labels).
        mode: ``grid`` | ``zip`` | ``list``.
        base: parameters shared by every cell (cells override it).
        axes: for grid/zip modes, ``{param: [values...]}``.
        cells: for list mode, explicit per-cell parameter dicts.
        seed: base seed every per-cell seed derives from.
        tolerances: regression-gate tolerances keyed by metric-name
            glob; ``default`` applies when no glob matches.  Each entry
            is ``{"abs": x, "rel": y}`` (either may be omitted).
        description: free text for humans.
    """

    name: str
    mode: str = "list"
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    cells: List[Dict[str, Any]] = field(default_factory=list)
    seed: int = 0
    tolerances: Dict[str, Dict[str, float]] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("grid", "zip", "list"):
            raise CampaignSpecError(
                f"unknown mode {self.mode!r} (grid, zip or list)"
            )
        if self.mode == "zip" and self.axes:
            lengths = {len(v) for v in self.axes.values()}
            if len(lengths) > 1:
                raise CampaignSpecError(
                    f"zip axes must share one length, got {sorted(lengths)}"
                )

    # -- expansion -------------------------------------------------------------

    def _raw_cells(self) -> Iterable[Dict[str, Any]]:
        if self.mode == "list":
            for overrides in self.cells:
                yield {**self.base, **overrides}
        elif self.mode == "zip":
            names = sorted(self.axes)
            if not names:
                return
            for values in zip(*(self.axes[n] for n in names)):
                yield {**self.base, **dict(zip(names, values))}
        else:  # grid
            names = sorted(self.axes)
            if not names:
                return
            for values in itertools.product(*(self.axes[n] for n in names)):
                yield {**self.base, **dict(zip(names, values))}

    def expand(self) -> List[Cell]:
        """The ordered cell list (deterministic for a given spec)."""
        out: List[Cell] = []
        seen: Dict[str, int] = {}
        for index, params in enumerate(self._raw_cells()):
            kind = params.get("kind", "simulate")
            if kind not in CELL_KINDS:
                raise CampaignSpecError(
                    f"cell {index}: unknown kind {kind!r} "
                    f"(one of {', '.join(CELL_KINDS)})"
                )
            cell_id = str(params.get("label") or f"c{index:04d}")
            if cell_id in seen:
                raise CampaignSpecError(
                    f"duplicate cell id {cell_id!r} "
                    f"(cells {seen[cell_id]} and {index})"
                )
            seen[cell_id] = index
            cell_hash = content_hash(params)
            out.append(
                Cell(
                    index=index,
                    cell_id=cell_id,
                    params=params,
                    seed=derive_seed(self.seed, cell_hash),
                )
            )
        if not out:
            raise CampaignSpecError(f"spec {self.name!r} expands to no cells")
        return out

    # -- identity --------------------------------------------------------------

    def content_dict(self) -> Dict[str, Any]:
        """The computation-defining subset (name/docs/tolerances excluded)."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "mode": self.mode,
            "base": self.base,
            "axes": self.axes,
            "cells": self.cells,
            "seed": self.seed,
        }

    def spec_hash(self) -> str:
        """Identity of the computation: what ``--resume`` checks against."""
        return content_hash(self.content_dict())

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full JSON form, ``from_dict``'s inverse."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "mode": self.mode,
            "base": self.base,
            "axes": self.axes,
            "cells": self.cells,
            "seed": self.seed,
            "tolerances": self.tolerances,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Parse a spec document (schema-checked)."""
        if not isinstance(data, dict):
            raise CampaignSpecError(f"spec must be an object, got {type(data)}")
        version = data.get("schema_version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise CampaignSpecError(
                f"spec schema {version} != supported {SPEC_SCHEMA_VERSION}"
            )
        known = {
            "schema_version", "name", "description", "mode", "base",
            "axes", "cells", "seed", "tolerances",
        }
        unknown = set(data) - known
        if unknown:
            raise CampaignSpecError(f"unknown spec fields: {sorted(unknown)}")
        if "name" not in data:
            raise CampaignSpecError("spec needs a name")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            mode=str(data.get("mode", "list")),
            base=dict(data.get("base", {})),
            axes={k: list(v) for k, v in data.get("axes", {}).items()},
            cells=[dict(c) for c in data.get("cells", [])],
            seed=int(data.get("seed", 0)),
            tolerances={
                str(k): dict(v)
                for k, v in data.get("tolerances", {}).items()
            },
        )

    def save(self, path) -> pathlib.Path:
        """Write the spec as indented JSON.

        Keys keep their insertion order — tolerance glob precedence is
        "first match wins in spec order", so alphabetizing here would
        silently reshuffle overlapping patterns on every resave.
        """
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "CampaignSpec":
        """Read a spec written by :meth:`save` (or by hand)."""
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CampaignSpecError(f"cannot load spec {path}: {exc}") from exc
        return cls.from_dict(data)
