"""Regression gates: pin a baseline, diff runs metric-by-metric.

A *baseline* is a finished campaign's ``results.jsonl``, copied under a
name the repository checks in.  ``diff`` compares a later run against
it cell-by-cell, metric-by-metric, under per-metric tolerances:

- a numeric metric passes when ``|current - baseline|`` is within
  ``max(abs_tol, rel_tol * |baseline|)``;
- strings, booleans and nulls (including the sanitized ``"inf"``
  spellings of non-finite thresholds) must match exactly;
- cells or metrics present on one side only are failures — a silently
  vanished figure series is exactly what the gate exists to catch.

Tolerances resolve by ``fnmatch`` glob over the metric name, first
match wins in spec order, with ``default`` as the fallback, so a spec
can say "energies to 0.1% relative, byte counts exactly".  The exit
code contract (0 clean, 1 drifted) is what ``make campaign-smoke``
enforces in CI.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import ascii_table
from repro.campaign.faultio import FaultInjector, write_text_atomic
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    StoreError,
    frame_record,
    load_merged,
    load_records,
)


def _load_any(path):
    """``(header, records)`` from a results file or a campaign dir.

    Directories go through the shard-aware merged loader, so diff and
    baseline pinning work identically over single-file and sharded
    layouts.
    """
    path = pathlib.Path(path)
    if path.is_dir():
        return load_merged(path)
    return load_records(path)

#: Tolerance applied when neither the spec nor the CLI names one: tight
#: enough to catch any real drift, loose enough to absorb cross-libm
#: rounding in transcendental-heavy cells.
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12


@dataclass(frozen=True)
class Tolerance:
    """Per-metric drift allowance."""

    rel: float = DEFAULT_REL_TOL
    abs: float = DEFAULT_ABS_TOL

    def allows(self, baseline: float, current: float) -> bool:
        """True when the drift is inside the allowance."""
        return abs(current - baseline) <= max(
            self.abs, self.rel * abs(baseline)
        )


def resolve_tolerance(
    metric: str,
    tolerances: Dict[str, Dict[str, float]],
    default: Optional[Tolerance] = None,
) -> Tolerance:
    """The tolerance for one metric name: first glob match wins."""
    fallback = default or Tolerance()
    for pattern, entry in tolerances.items():
        if pattern == "default":
            continue
        if fnmatch.fnmatchcase(metric, pattern):
            return Tolerance(
                rel=float(entry.get("rel", fallback.rel)),
                abs=float(entry.get("abs", fallback.abs)),
            )
    entry = tolerances.get("default")
    if entry:
        return Tolerance(
            rel=float(entry.get("rel", fallback.rel)),
            abs=float(entry.get("abs", fallback.abs)),
        )
    return fallback


@dataclass(frozen=True)
class Drift:
    """One out-of-tolerance (or missing) comparison."""

    cell_id: str
    metric: str
    baseline: Any
    current: Any
    reason: str


@dataclass
class DiffReport:
    """Everything ``campaign diff`` decides and reports."""

    cells_compared: int
    metrics_compared: int
    drifts: List[Drift]
    missing_cells: List[str]
    extra_cells: List[str]

    @property
    def clean(self) -> bool:
        """True when nothing drifted and the cell sets match."""
        return not (self.drifts or self.missing_cells or self.extra_cells)

    @property
    def exit_code(self) -> int:
        """The CI contract: 0 clean, 1 anything moved."""
        return 0 if self.clean else 1

    def render(self) -> str:
        """The human-readable diff report."""
        lines = [
            f"compared {self.cells_compared} cells, "
            f"{self.metrics_compared} metrics"
        ]
        if self.missing_cells:
            lines.append(
                f"MISSING from current run: {', '.join(self.missing_cells)}"
            )
        if self.extra_cells:
            lines.append(
                f"NOT IN baseline: {', '.join(self.extra_cells)}"
            )
        if self.drifts:
            rows = [
                (
                    d.cell_id,
                    d.metric,
                    _fmt(d.baseline),
                    _fmt(d.current),
                    d.reason,
                )
                for d in self.drifts
            ]
            lines.append(
                ascii_table(
                    ["cell", "metric", "baseline", "current", "violation"],
                    rows,
                    title=f"{len(self.drifts)} metric(s) out of tolerance",
                )
            )
        if self.clean:
            lines.append("OK: no drift past tolerance")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_records(
    baseline: List[Dict[str, Any]],
    current: List[Dict[str, Any]],
    tolerances: Optional[Dict[str, Dict[str, float]]] = None,
    default: Optional[Tolerance] = None,
) -> DiffReport:
    """Compare two record sets metric-by-metric under tolerances."""
    tolerances = tolerances or {}
    base_by_id = {r["cell_id"]: r for r in baseline}
    cur_by_id = {r["cell_id"]: r for r in current}
    missing = sorted(set(base_by_id) - set(cur_by_id))
    extra = sorted(set(cur_by_id) - set(base_by_id))

    drifts: List[Drift] = []
    metrics_compared = 0
    for cell_id in (cid for cid in base_by_id if cid in cur_by_id):
        b_rec, c_rec = base_by_id[cell_id], cur_by_id[cell_id]
        if b_rec["status"] != c_rec["status"]:
            drifts.append(Drift(
                cell_id, "<status>", b_rec["status"], c_rec["status"],
                "status changed",
            ))
            continue
        b_m, c_m = b_rec.get("metrics", {}), c_rec.get("metrics", {})
        for name in sorted(set(b_m) | set(c_m)):
            metrics_compared += 1
            if name not in c_m:
                drifts.append(Drift(
                    cell_id, name, b_m[name], None, "metric vanished"
                ))
                continue
            if name not in b_m:
                drifts.append(Drift(
                    cell_id, name, None, c_m[name], "metric appeared"
                ))
                continue
            b_v, c_v = b_m[name], c_m[name]
            if _is_number(b_v) and _is_number(c_v):
                tol = resolve_tolerance(name, tolerances, default)
                if not tol.allows(float(b_v), float(c_v)):
                    drift = abs(float(c_v) - float(b_v))
                    limit = max(tol.abs, tol.rel * abs(float(b_v)))
                    drifts.append(Drift(
                        cell_id, name, b_v, c_v,
                        f"|drift| {drift:.3g} > {limit:.3g}",
                    ))
            elif b_v != c_v:
                drifts.append(Drift(
                    cell_id, name, b_v, c_v, "value changed"
                ))
    return DiffReport(
        cells_compared=sum(1 for cid in base_by_id if cid in cur_by_id),
        metrics_compared=metrics_compared,
        drifts=drifts,
        missing_cells=missing,
        extra_cells=extra,
    )


def diff_files(
    baseline_path,
    results_path,
    tolerances: Optional[Dict[str, Dict[str, float]]] = None,
    default: Optional[Tolerance] = None,
    require_same_spec: bool = True,
) -> DiffReport:
    """Diff two JSONL result files (spec-hash checked by default).

    Either side may also be a campaign directory, in which case its
    result files (single or sharded) are loaded merged.
    """
    b_header, b_records = _load_any(baseline_path)
    c_header, c_records = _load_any(results_path)
    if require_same_spec and b_header.get("spec_hash") != c_header.get(
        "spec_hash"
    ):
        raise StoreError(
            f"baseline {baseline_path} pins spec "
            f"{str(b_header.get('spec_hash'))[:12]}... but the run is "
            f"{str(c_header.get('spec_hash'))[:12]}...; re-pin with "
            "'repro campaign baseline' after intentional spec changes"
        )
    return diff_records(b_records, c_records, tolerances, default)


def pin_baseline(
    results_path, baseline_path,
    injector: Optional[FaultInjector] = None,
) -> pathlib.Path:
    """Pin a finished run's results as the new baseline, atomically.

    The baseline is rewritten from the *loaded* records (CRC-framed,
    canonical order) rather than byte-copied, so quarantined junk in
    the source file never gets immortalized in a pinned baseline, and
    a crash mid-pin leaves the previous baseline intact.
    """
    header, records = _load_any(results_path)
    failed = [r["cell_id"] for r in records if r["status"] != "ok"]
    if failed:
        raise StoreError(
            f"refusing to pin a baseline with failed cells: "
            f"{', '.join(failed[:5])}"
        )
    baseline_path = pathlib.Path(baseline_path)

    def dump(record: Dict[str, Any]) -> str:
        return json.dumps(
            frame_record(record), sort_keys=True, separators=(",", ":")
        )

    lines = [dump(header)] + [dump(r) for r in records]
    write_text_atomic(
        baseline_path, "".join(line + "\n" for line in lines),
        injector=injector,
    )
    return baseline_path


def spec_tolerances(spec: CampaignSpec) -> Dict[str, Dict[str, float]]:
    """The spec's tolerance table (empty dict when unspecified)."""
    return spec.tolerances or {}
