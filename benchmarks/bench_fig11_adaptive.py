"""Figure 11: the block-by-block adaptive scheme on mixed/low-factor files.

Runs the real adaptive container over regenerated corpus bytes for the
files the paper says the scheme may affect (containers and low-factor
media) and compares: gzip whole-file, zlib whole-file interleaved, and
adaptive zlib interleaved.  Headline claim: 'the compression tool no
longer incurs higher energy cost (than no compression) for any file'.
"""

import pytest

from repro.analysis.report import bar_chart
from repro.core.adaptive import AdaptiveBlockCodec
from repro.compression import get_codec
from benchmarks.common import write_artifact
from repro.workload.manifest import mixed_content_files

#: Scale block size with the corpus so block counts match full-size runs.
def _adaptive_for(corpus):
    block = max(8 * 1024, int(131072 * corpus.scale * 4))
    return AdaptiveBlockCodec(block_size=block, size_threshold=1000)


def compute(corpus, analytic):
    zlib = get_codec("zlib")
    specs = [s for s in mixed_content_files() if not s.is_small]
    labels, series = [], {"gzip": [], "zlib+inter": [], "adaptive": []}
    for spec in specs:
        gf = corpus.generate(spec.name)
        raw = analytic.raw(gf.size)
        whole = zlib.compress(gf.data)
        seq = analytic.precompressed(gf.size, whole.compressed_size, interleave=False)
        inter = analytic.precompressed(gf.size, whole.compressed_size, interleave=True)
        adaptive_result = _adaptive_for(corpus).compress(gf.data)
        adaptive = analytic.adaptive(adaptive_result, codec="zlib")
        labels.append(f"{spec.name} (F={whole.factor:.2f})")
        series["gzip"].append(seq.energy_ratio(raw))
        series["zlib+inter"].append(inter.energy_ratio(raw))
        series["adaptive"].append(adaptive.energy_ratio(raw))
    return labels, series


def test_fig11_block_adaptive(benchmark, corpus, analytic):
    labels, series = benchmark.pedantic(
        compute, args=(corpus, analytic), rounds=1, iterations=1
    )
    text = bar_chart(
        labels,
        series,
        max_value=1.5,
        title="Figure 11 - relative energy with the block-adaptive scheme",
    )
    write_artifact(
        "fig11_adaptive",
        text,
        data={"files": labels, "energy_ratios": series},
    )

    for i, label in enumerate(labels):
        # The headline: adaptive never loses to no-compression.
        assert series["adaptive"][i] <= 1.02, label
        # And never does worse than whole-file interleaved zlib by more
        # than the per-block header noise.
        assert series["adaptive"][i] <= series["zlib+inter"][i] + 0.03, label

    # On incompressible files whole-file compression loses but adaptive
    # does not.
    losing = [i for i in range(len(labels)) if series["zlib+inter"][i] > 1.02]
    assert losing, "expected some files where plain compression loses"
    for i in losing:
        assert series["adaptive"][i] < series["zlib+inter"][i]
