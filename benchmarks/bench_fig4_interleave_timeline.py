"""Figure 4: interleaving timelines in the two regimes.

(a) decompression faster than downloading: CPU-idle periods remain, the
    session ends with the last packet (plus the final block's tail);
(b) decompression slower: the CPU saturates and work spills past the
    link going quiet.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core.interleave import plan_interleave
from repro.device.cpu import DeviceCpuModel, LinearCost
from repro.network.link import plan_receive
from repro.network.wlan import LINK_11MBPS
from benchmarks.common import write_artifact
from tests.conftest import mb


def fast_cpu():
    return DeviceCpuModel(
        decompress={"gzip": LinearCost(0.02, 0.02, 0.0)},
        compress={"gzip": LinearCost(0.0, 1.0, 0.0)},
    )


def slow_cpu():
    return DeviceCpuModel(
        decompress={"gzip": LinearCost(0.5, 2.0, 0.0)},
        compress={"gzip": LinearCost(0.0, 1.0, 0.0)},
    )


def compute():
    receive = plan_receive(mb(1), mb(2), LINK_11MBPS)
    fast = plan_interleave(receive, cpu=fast_cpu())
    slow = plan_interleave(receive, cpu=slow_cpu())
    return receive, fast, slow


def test_fig4_interleaving_regimes(benchmark):
    receive, fast, slow = benchmark(compute)
    rows = []
    for label, plan in (("(a) fast decompression", fast), ("(b) slow decompression", slow)):
        rows.append(
            (
                label,
                round(plan.receive_end_s, 3),
                round(plan.finish_s, 3),
                round(plan.residual_idle_s, 3),
                round(plan.overflow_s, 3),
                plan.saturated,
            )
        )
    text = ascii_table(
        ["regime", "recv end (s)", "finish (s)", "idle left (s)", "overflow (s)", "saturated"],
        rows,
        title="Figure 4 - interleaving timelines",
    )
    # Also render the first few block schedules of each regime.
    for label, plan in (("fast", fast), ("slow", slow)):
        lines = [
            f"  block {b.index}: arrive {b.arrive_s:.3f} "
            f"decompress {b.decompress_start_s:.3f}..{b.decompress_end_s:.3f}"
            for b in plan.blocks[:4]
        ]
        text += f"\n\n{label} regime, first blocks:\n" + "\n".join(lines)
    write_artifact(
        "fig4_interleave_timeline",
        text,
        data={
            "regimes": {
                label: {
                    "receive_end_s": plan.receive_end_s,
                    "finish_s": plan.finish_s,
                    "residual_idle_s": plan.residual_idle_s,
                    "overflow_s": plan.overflow_s,
                    "saturated": plan.saturated,
                }
                for label, plan in (("fast", fast), ("slow", slow))
            },
        },
    )

    # Regime (a): idle periods remain, finish ~ receive end.
    assert not fast.saturated
    assert fast.residual_idle_s > 0
    assert fast.finish_s == pytest.approx(fast.receive_end_s, rel=0.02)

    # Regime (b): the CPU is the bottleneck.
    assert slow.saturated
    assert slow.finish_s > slow.receive_end_s * 1.5
    # While saturated the decompressor is never idle between blocks.
    for prev, cur in zip(slow.blocks, slow.blocks[1:]):
        assert cur.decompress_start_s == pytest.approx(
            max(prev.decompress_end_s, cur.arrive_s), rel=1e-6
        )
