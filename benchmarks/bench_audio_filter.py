"""Extension bench: specialized audio pre-filter (Section 7 future work).

Compares plain gzip against delta-filtered gzip on PCM-like audio for
both directions: factor, download energy, and upload energy.  A deeper
factor at near-zero extra CPU moves the upload decision for audio — the
case the paper flags as needing specialized schemes.
"""

import random

import pytest

from repro.analysis.report import ascii_table
from repro.compression import get_codec
from repro.core.upload import UploadModel
from repro.workload import generators
from benchmarks.common import write_artifact


def compute(model, analytic):
    rng = random.Random(17)
    wav = generators.wav_like(rng, 1_000_000, 0.32)
    upload = UploadModel(model)

    rows = []
    for name in ("zlib", "audio", "audio16"):
        codec = get_codec(name)
        result = codec.compress(wav)
        assert codec.decompress_bytes(result.payload) == wav
        down = analytic.precompressed(
            len(wav), result.compressed_size, codec="gzip", interleave=True
        )
        up_e = upload.interleaved_energy_j(
            len(wav), result.compressed_size, codec="gzip-fast"
        )
        rows.append(
            (
                name,
                f"{result.factor:.2f}",
                round(down.energy_j, 3),
                round(up_e, 3),
            )
        )
    raw_down = analytic.raw(len(wav))
    raw_up = upload.upload_energy_j(len(wav))
    rows.append(("(raw)", "1.00", round(raw_down.energy_j, 3), round(raw_up, 3)))
    return rows


def test_audio_filter_extension(benchmark, model, analytic):
    rows = benchmark.pedantic(
        compute, args=(model, analytic), rounds=1, iterations=1
    )
    text = ascii_table(
        ["codec", "factor", "download J", "upload J (gzip-fast cost)"],
        rows,
        title="Specialized audio filter on 1 MB PCM-like capture",
    )
    write_artifact(
        "audio_filter",
        text,
        data={
            "codecs": [
                {
                    "codec": name,
                    "factor": float(factor),
                    "download_j": down_j,
                    "upload_j": up_j,
                }
                for name, factor, down_j, up_j in rows
            ],
        },
    )

    by_name = {r[0]: r for r in rows}
    plain_f = float(by_name["zlib"][1])
    delta_f = float(by_name["audio"][1])
    # The filter deepens the factor substantially on PCM.
    assert delta_f > plain_f * 1.15
    # And the deeper factor converts to energy in both directions.
    assert by_name["audio"][2] < by_name["zlib"][2]
    assert by_name["audio"][3] < by_name["zlib"][3]
    assert by_name["audio"][2] < by_name["(raw)"][2]
