"""Section 4.2 ablation: sleep-during-decompression vs interleaving.

The paper derives that putting the WaveLAN card in power-saving mode
during (non-interleaved) decompression only beats interleaving when the
compression factor exceeds 4.6 — 'this explains why the sleep mode does
not have much impact on energy saving for gzip'.
"""

import pytest

from repro.analysis.report import ascii_table
from benchmarks.common import write_artifact
from tests.conftest import mb


def compute(model):
    rows = []
    s = mb(4)
    for f in (1.5, 2, 3, 4, 4.6, 5, 6, 10, 20):
        sc = int(s / f)
        sleep = model.sequential_energy_j(s, sc, radio_power_save=True)
        inter = model.interleaved_energy_j(s, sc)
        rows.append((f, round(sleep, 3), round(inter, 3), "sleep" if sleep < inter else "interleave"))
    crossover = model.sleep_vs_interleave_crossover_factor(s)
    return rows, crossover


def test_sleep_vs_interleave_crossover(benchmark, model):
    rows, crossover = benchmark.pedantic(compute, args=(model,), rounds=1, iterations=1)
    text = ascii_table(
        ["factor", "sleep-mode J", "interleave J", "winner"],
        rows,
        title="Sleep-mode vs interleaving (4 MB file)",
    )
    text += f"\n\ncrossover factor: {crossover:.2f} (paper: 4.6)"
    write_artifact(
        "sleep_crossover",
        text,
        data={
            "sweep": [
                {
                    "factor": f,
                    "sleep_j": sleep,
                    "interleave_j": inter,
                    "winner": winner,
                }
                for f, sleep, inter, winner in rows
            ],
            "crossover_factor": crossover,
        },
    )

    assert crossover == pytest.approx(4.6, rel=0.12)
    # Below the crossover interleaving wins, above it sleep wins.
    for f, sleep, inter, winner in rows:
        if f < crossover * 0.95:
            assert winner == "interleave"
        if f > crossover * 1.05:
            assert winner == "sleep"
