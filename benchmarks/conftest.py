"""Benchmark fixtures: shared corpus, model and sessions."""

import pytest

from repro.core.energy_model import EnergyModel
from repro.network.wlan import LINK_2MBPS
from repro.simulator.analytic import AnalyticSession
from repro.simulator.des import DesSession
from repro.workload.corpus import Corpus


@pytest.fixture(scope="session")
def model():
    return EnergyModel()


@pytest.fixture(scope="session")
def model_2mbps():
    return EnergyModel(link=LINK_2MBPS)


@pytest.fixture(scope="session")
def analytic(model):
    return AnalyticSession(model)


@pytest.fixture(scope="session")
def des(model):
    return DesSession(model)


@pytest.fixture(scope="session")
def corpus():
    """Corpus for codec-running benches; large files at 1/20 scale."""
    return Corpus(scale=0.05)
