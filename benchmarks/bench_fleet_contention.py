"""Extension bench: fleet-level effect of compression under contention.

The paper measures one device on an idle WLAN.  With several handhelds
sharing the AP, compressed transfers release the medium sooner, so the
fleet saves *more* than the sum of per-file savings: waiting devices burn
idle power for less time.  This bench quantifies the amplification.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.simulator.multiclient import MultiClientSimulation, Request
from benchmarks.common import write_artifact
from tests.conftest import mb


def make_requests(n_clients: int):
    """Each client fetches one typical compressible page burst at t=0."""
    return [
        Request(
            client=f"c{i}",
            name=f"page{i}",
            raw_bytes=mb(2.0),
            factor=3.8,  # proxy.ps-class content
            arrival_s=0.0,
        )
        for i in range(n_clients)
    ]


def compute(model):
    simulation = MultiClientSimulation(model)
    rows = []
    for n in (1, 2, 4, 8):
        reports = simulation.compare_strategies(make_requests(n))
        raw = reports["raw"]
        comp = reports["compressed"]
        saving = 1 - comp.total_energy_j / raw.total_energy_j
        rows.append(
            (
                n,
                round(raw.total_energy_j, 2),
                round(comp.total_energy_j, 2),
                f"{saving * 100:.1f}%",
                round(raw.mean_latency_s, 2),
                round(comp.mean_latency_s, 2),
            )
        )
    return rows


def test_fleet_contention(benchmark, model):
    rows = benchmark.pedantic(compute, args=(model,), rounds=1, iterations=1)
    text = ascii_table(
        ["clients", "raw J", "compressed J", "saving", "raw latency s", "comp latency s"],
        rows,
        title="Fleet-level effect of compression (2 MB, F=3.8 per client)",
    )
    write_artifact(
        "fleet_contention",
        text,
        data={
            "fleet": [
                {
                    "clients": n,
                    "raw_j": raw_j,
                    "compressed_j": comp_j,
                    "saving": float(saving.rstrip("%")) / 100,
                    "raw_latency_s": raw_lat,
                    "comp_latency_s": comp_lat,
                }
                for n, raw_j, comp_j, saving, raw_lat, comp_lat in rows
            ],
        },
    )

    savings = [float(r[3].rstrip("%")) for r in rows]
    # Single client: the paper's per-file saving.
    assert 30 < savings[0] < 75
    # Contention amplifies the saving monotonically (~64% alone vs ~69%
    # at 8 clients with this workload).
    assert savings == sorted(savings)
    assert savings[-1] > savings[0] + 3
    # Latency shrinks by roughly the compression factor under load.
    raw_lat, comp_lat = rows[-1][4], rows[-1][5]
    assert raw_lat / comp_lat > 2.5
