"""Extension bench: the serving policy across device profiles.

One decision matrix — device profiles (desk / far / low-battery /
lossless-only) x object classes (web page, binary, JPEG) — showing the
policy composing rate adaptation, Equation 6, contention pricing and
quality-floored transcoding into sensible per-client behaviour.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.network.wlan import LINK_2MBPS
from repro.proxy.policy import DeviceProfile, ServingPolicy
from repro.workload.manifest import FileType
from benchmarks.common import write_artifact
from tests.conftest import mb

OBJECTS = [
    ("page.html", mb(1), 4.0, FileType.HTML),
    ("tool.exe", mb(2), 1.10, FileType.BINARY),
    ("photo.jpg", mb(1.8), 1.04, FileType.JPEG),
]

PROFILES = [
    DeviceProfile(name="desk"),
    DeviceProfile(name="far", link=LINK_2MBPS),
    DeviceProfile(name="low-battery", battery_fraction=0.1),
    DeviceProfile(name="lossless-only", accepts_lossy=False),
]


def compute():
    policy = ServingPolicy()
    rows = []
    matrix = {}
    for profile in PROFILES:
        for name, size, factor, ftype in OBJECTS:
            decision = policy.decide(profile, size, factor, ftype)
            matrix[(profile.name, name)] = decision
            rows.append(
                (
                    profile.name,
                    name,
                    decision.mechanism,
                    f"q={decision.quality:.2f}" if decision.quality else "-",
                    f"{decision.saving_fraction:+.1%}",
                )
            )
    return rows, matrix


def test_serving_policy_matrix(benchmark):
    rows, matrix = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = ascii_table(
        ["profile", "object", "mechanism", "quality", "saving"],
        rows,
        title="Serving-policy decision matrix",
    )
    write_artifact(
        "serving_policy",
        text,
        data={
            f"{p}|{o}": {
                "mechanism": d.mechanism,
                "saving": d.saving_fraction,
                "quality": d.quality,
            }
            for (p, o), d in matrix.items()
        },
    )

    # Web pages compress everywhere.
    for profile in PROFILES:
        assert matrix[(profile.name, "page.html")].mechanism == "compress"
    # The marginal binary ships raw at the desk, compressed on the far link.
    assert matrix[("desk", "tool.exe")].mechanism == "raw"
    assert matrix[("far", "tool.exe")].mechanism == "compress"
    # Photos transcode unless lossy is refused.
    assert matrix[("desk", "photo.jpg")].mechanism == "transcode"
    assert matrix[("lossless-only", "photo.jpg")].mechanism == "raw"
    # The dying battery takes a deeper transcode than the desk profile.
    assert (
        matrix[("low-battery", "photo.jpg")].quality
        <= matrix[("desk", "photo.jpg")].quality
    )
