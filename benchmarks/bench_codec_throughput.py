"""Codec throughput: the pure-Python implementations vs the engines.

Not a paper figure — an engineering benchmark an open-source release
needs: how fast are the from-scratch codecs, and how large is the gap to
the C-backed engines?  Uses pytest-benchmark's statistics properly
(multiple rounds over a fixed 64 KiB text sample).
"""

import random

import pytest

from repro.compression import get_codec

_rng = random.Random(2003)
_WORDS = [
    "energy", "wireless", "handheld", "proxy", "compression", "battery",
    "interleaving", "decompression", "packet", "idle",
]
SAMPLE = (" ".join(_rng.choice(_WORDS) for _ in range(11000)).encode())[: 64 * 1024]


@pytest.fixture(scope="module")
def payloads():
    return {
        name: get_codec(name).compress_bytes(SAMPLE)
        for name in ("gzip", "compress", "bzip2", "zlib", "bz2")
    }


@pytest.mark.parametrize("name", ["gzip", "compress", "bzip2"])
def test_pure_codec_compress_throughput(benchmark, name):
    codec = get_codec(name)
    payload = benchmark(codec.compress_bytes, SAMPLE)
    assert len(payload) < len(SAMPLE)


@pytest.mark.parametrize("name", ["gzip", "compress", "bzip2"])
def test_pure_codec_decompress_throughput(benchmark, name, payloads):
    codec = get_codec(name)
    out = benchmark(codec.decompress_bytes, payloads[name])
    assert out == SAMPLE


@pytest.mark.parametrize("name", ["zlib", "bz2"])
def test_engine_compress_throughput(benchmark, name):
    codec = get_codec(name)
    payload = benchmark(codec.compress_bytes, SAMPLE)
    assert len(payload) < len(SAMPLE)


def test_streaming_throughput(benchmark):
    from repro.compression.streaming import stream_roundtrip

    out = benchmark(stream_roundtrip, SAMPLE, None, 8 * 1024, 1460)
    assert out == SAMPLE
