"""Loss-rate sweep: how a lossy link shifts the compression trade-off.

The paper measures a clean channel; this sweep re-runs the Equation 6
analysis and a representative interleaved download across packet loss
rates.  Two effects combine:

- every transferred byte now costs its expected retransmissions, so the
  *absolute* energy of every strategy rises with the loss rate, and
- the compressed transfer ships fewer bytes, so it pays less of that
  tax while its decompression cost stays fixed — the break-even size
  and factor thresholds *fall* as the loss rate rises.

The sweep grid lives in ``repro.campaign.presets.loss_sweep_spec``; this
bench runs it through the campaign runner and assembles its tables from
the result records.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.campaign.presets import LOSS_RATES, loss_sweep_spec
from repro.campaign.runner import run_campaign
from benchmarks.common import SCHEMES, campaign_jobs, write_artifact


def compute(model):
    result = run_campaign(loss_sweep_spec(), jobs=campaign_jobs())
    assert result.ok, [r for r in result.records if r["status"] != "ok"]
    floors = []
    factor_rows = []
    energy_rows = []
    for rate in LOSS_RATES:
        floors.append(result.metric(f"floor/{rate}", "size_floor_bytes"))
        factor_rows.append(
            tuple(
                round(
                    result.metric(
                        f"factor/{rate}/{scheme}", "factor_threshold"
                    ),
                    4,
                )
                for scheme in SCHEMES
            )
        )
        row = [round(result.metric(f"energy/{rate}/raw", "energy_j"), 3)]
        for scheme in SCHEMES:
            row.append(
                round(result.metric(f"energy/{rate}/{scheme}", "energy_j"), 3)
            )
        energy_rows.append(tuple(row))
    return floors, factor_rows, energy_rows


def test_loss_sweep(benchmark, model):
    floors, factor_rows, energy_rows = benchmark.pedantic(
        compute, args=(model,), rounds=1, iterations=1
    )
    labels = [f"{rate:.0%}" for rate in LOSS_RATES]
    text = ascii_table(
        ["loss rate", "size floor (bytes)"] ,
        list(zip(labels, floors)),
        title="Equation 6 size threshold vs packet loss rate",
    )
    text += "\n\n" + ascii_table(
        ["loss rate"] + [f"factor threshold ({s})" for s in SCHEMES],
        [(label,) + row for label, row in zip(labels, factor_rows)],
        title="1 MB break-even compression factor vs loss rate",
    )
    text += "\n\n" + ascii_table(
        ["loss rate", "raw (J)"] + [f"{s} (J)" for s in SCHEMES],
        [(label,) + row for label, row in zip(labels, energy_rows)],
        title="1 MB download energy vs loss rate (interleaved)",
    )
    write_artifact(
        "loss_sweep",
        text,
        data={
            "loss_rates": list(LOSS_RATES),
            "size_floor_bytes": floors,
            "factor_thresholds": {
                scheme: [row[i] for row in factor_rows]
                for i, scheme in enumerate(SCHEMES)
            },
            "energy_j": {
                "raw": [row[0] for row in energy_rows],
                **{
                    scheme: [row[i + 1] for row in energy_rows]
                    for i, scheme in enumerate(SCHEMES)
                },
            },
        },
    )

    # Clean channel reproduces the paper's floor.
    assert floors[0] == pytest.approx(3900, rel=0.05)
    # The break-even size shrinks monotonically as loss rises: the ARQ
    # tax scales with transferred bytes, decompression does not.
    assert floors == sorted(floors, reverse=True)
    assert floors[-1] < floors[0]
    for i in range(len(SCHEMES)):
        col = [row[i] for row in factor_rows]
        assert col == sorted(col, reverse=True)
    # Absolute energies rise with loss for every strategy.
    for col in range(len(energy_rows[0])):
        series = [row[col] for row in energy_rows]
        assert series == sorted(series)
    # Compression keeps beating raw at every swept rate (1 MB text file).
    for row in energy_rows:
        assert row[1] < row[0]
