"""Shared infrastructure for the figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper and
writes a text artifact to ``benchmarks/results/`` with the series the
paper reports, so the whole evaluation can be reviewed offline.
"""

from __future__ import annotations

import atexit
import json
import os
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.core.energy_model import EnergyModel
from repro.observability.profiling import PROFILER, profiled
from repro.simulator.analytic import AnalyticSession
from repro.simulator.des import DesSession
from repro.workload.manifest import FileSpec, large_files, small_files

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# REPRO_PROFILE=1 prints the wall-clock profile (sessions simulated,
# artifacts written) when the benchmark process exits.
if os.environ.get("REPRO_PROFILE"):
    atexit.register(
        lambda: PROFILER.as_dict() and print(f"\n{PROFILER.report()}")
    )

#: Scheme display order in every figure: left gzip, middle compress,
#: right bzip2 (the paper's bar layout).
SCHEMES = ("gzip", "compress", "bzip2")


def campaign_jobs(cap: int = 4) -> int:
    """Worker count for campaign-routed sweeps.

    ``REPRO_BENCH_JOBS`` overrides; otherwise the machine's cores,
    capped — campaign results are byte-identical at any ``-j``, so this
    only changes wall clock.
    """
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        return max(1, int(env))
    return max(1, min(cap, os.cpu_count() or 1))


def write_artifact(
    name: str, text: str, data: Optional[dict] = None
) -> pathlib.Path:
    """Write the human-readable artifact (and a JSON twin when given).

    The JSON twin carries whatever structured payload the bench passes,
    so downstream tooling does not have to parse the ASCII tables.
    """
    with profiled(f"artifact:{name}"):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True, default=str) + "\n"
            )
    print(f"\n{text}\n[artifact: {path}]")
    return path


def model_11() -> EnergyModel:
    return EnergyModel()


def sessions(model: EnergyModel):
    return AnalyticSession(model), DesSession(model)


def scheme_session(session, spec: FileSpec, scheme: str, interleave=False):
    """Precompressed download of a Table 2 entry under one scheme.

    bzip2 runs with radio power-saving during decompression, matching the
    paper: 'we show the energy results with power-saving enabled for
    bzip2 but not for the other two schemes' (Section 3.2).
    """
    s = spec.size_bytes
    sc = int(s / spec.factor(scheme))
    power_save = scheme == "bzip2" and not interleave
    return session.precompressed(
        s, sc, codec=scheme, interleave=interleave, radio_power_save=power_save
    )


def figure_ratios(
    session, specs: Sequence[FileSpec], metric: str, interleave=False
) -> Dict[str, List[float]]:
    """Per-scheme time or energy ratios relative to raw download."""
    out: Dict[str, List[float]] = {scheme: [] for scheme in SCHEMES}
    with profiled(f"figure-ratios:{metric}"):
        for spec in specs:
            raw = session.raw(spec.size_bytes)
            for scheme in SCHEMES:
                result = scheme_session(session, spec, scheme, interleave)
                ratio = (
                    result.time_ratio(raw)
                    if metric == "time"
                    else result.energy_ratio(raw)
                )
                out[scheme].append(ratio)
    return out


def large_specs() -> List[FileSpec]:
    return large_files()


def small_specs() -> List[FileSpec]:
    return small_files()
