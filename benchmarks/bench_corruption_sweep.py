"""Residual-corruption sweep: when does compression stop paying?

The lossy-link sweep shows loss *helps* compression (fewer bytes, less
ARQ tax).  Residual corruption — bit errors that slip past link ARQ and
surface as failed block CRCs — pushes the other way: one flipped bit
poisons a whole compressed block and forces a re-fetch, while a raw
download absorbs it as a single wrong byte.  This sweep re-runs the
Equation 6 analysis and a representative interleaved download across
residual bit-error rates, then reports the headline number of the
integrity extension: the break-even BER per scheme and recovery policy,
above which shipping the file raw is the energy-cheaper strategy.

The sweep grid lives in ``repro.campaign.presets.corruption_sweep_spec``;
this bench runs it through the campaign runner and assembles its tables
from the result records.  Raw downloads carry no framing to poison, so
the spec holds a single clean raw cell whose energy every row reuses.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.campaign.presets import BER_RATES, corruption_sweep_spec
from repro.campaign.runner import run_campaign
from benchmarks.common import SCHEMES, campaign_jobs, write_artifact

POLICIES = ("restart", "refetch", "degrade")


def compute(model):
    result = run_campaign(corruption_sweep_spec(), jobs=campaign_jobs())
    assert result.ok, [r for r in result.records if r["status"] != "ok"]
    by_id = result.by_id()
    energy_rows = []
    recovery_rows = []
    raw_e = result.metric("energy/raw", "energy_j")
    for ber in BER_RATES:
        row = [round(raw_e, 3)]
        rec_row = []
        for scheme in SCHEMES:
            metrics = by_id[f"energy/{ber}/{scheme}"]["metrics"]
            row.append(round(metrics["energy_j"], 3))
            # A clean channel carries no recovery machinery at all, so
            # the overhead metric is simply absent there.
            rec_row.append(round(metrics.get("integrity_overhead_j", 0.0), 3))
        energy_rows.append(tuple(row))
        recovery_rows.append(tuple(rec_row))

    break_even = {
        scheme: {
            policy: float(
                result.metric(f"break-even/{scheme}/{policy}", "break_even_ber")
            )
            for policy in POLICIES
        }
        for scheme in SCHEMES
    }
    return energy_rows, recovery_rows, break_even


def test_corruption_sweep(benchmark, model):
    energy_rows, recovery_rows, break_even = benchmark.pedantic(
        compute, args=(model,), rounds=1, iterations=1
    )
    labels = [f"{ber:.0e}" if ber else "0" for ber in BER_RATES]
    text = ascii_table(
        ["residual BER", "raw (J)"] + [f"{s} (J)" for s in SCHEMES],
        [(label,) + row for label, row in zip(labels, energy_rows)],
        title="1 MB download energy vs residual bit-error rate (interleaved)",
    )
    text += "\n\n" + ascii_table(
        ["residual BER"] + [f"{s} recovery (J)" for s in SCHEMES],
        [(label,) + row for label, row in zip(labels, recovery_rows)],
        title="Integrity overhead (verify + re-fetch) per scheme",
    )
    text += "\n\n" + ascii_table(
        ["scheme"] + [f"break-even BER ({p})" for p in POLICIES],
        [
            (scheme,)
            + tuple(f"{break_even[scheme][p]:.3e}" for p in POLICIES)
            for scheme in SCHEMES
        ],
        title="Residual BER above which compression stops saving energy (1 MB)",
    )
    write_artifact(
        "corruption_sweep",
        text,
        data={
            "ber_rates": list(BER_RATES),
            "energy_j": {
                "raw": [row[0] for row in energy_rows],
                **{
                    scheme: [row[i + 1] for row in energy_rows]
                    for i, scheme in enumerate(SCHEMES)
                },
            },
            "integrity_overhead_j": {
                scheme: [row[i] for row in recovery_rows]
                for i, scheme in enumerate(SCHEMES)
            },
            "break_even_ber": break_even,
        },
    )

    # A clean channel charges nothing: the integrity machinery is free
    # when every checksum passes.
    assert recovery_rows[0] == (0.0,) * len(SCHEMES)
    # Recovery energy rises monotonically with the residual error rate,
    # for every scheme; raw stays flat (asserted inside compute).
    for i in range(len(SCHEMES)):
        series = [row[i] for row in recovery_rows]
        assert series == sorted(series)
        assert series[-1] > 0
    # Compressed-session energy is monotone in BER too.
    for i in range(1, len(SCHEMES) + 1):
        series = [row[i] for row in energy_rows]
        assert series == sorted(series)
    # Equation 6 inverts: each break-even BER is finite, and refetch
    # (surgical repair) tolerates more corruption than restart
    # (whole-file re-download) for every scheme.
    for scheme in SCHEMES:
        be = break_even[scheme]
        assert 0 < be["restart"] < be["refetch"] < float("inf")
