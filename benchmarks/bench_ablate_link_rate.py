"""Ablation: link rate vs the compression break-even factor.

'The tradeoff is shown to depend on the network bandwidth and the ratio
of communication energy over computation energy' (Section 7): slower
links make compression worthwhile at lower factors.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core import thresholds
from repro.core.energy_model import EnergyModel
from repro.network import wlan
from repro.network.wlan import LINK_11MBPS, LINK_2MBPS
from benchmarks.common import write_artifact
from tests.conftest import mb


def compute():
    rows = []
    # Ordered by delivered rate: the degraded-to-0.25 point delivers
    # 0.15 MB/s, below the measured 2 Mb/s link's 0.176 MB/s.
    links = [
        ("11 Mb/s", EnergyModel(link=LINK_11MBPS)),
        ("5.5 Mb/s (degraded)", EnergyModel(link=LINK_11MBPS.degraded(0.5))),
        ("2 Mb/s", EnergyModel(link=LINK_2MBPS)),
        ("2.75 Mb/s nominal, 0.15 MB/s", EnergyModel(link=LINK_11MBPS.degraded(0.25))),
    ]
    for label, model in links:
        threshold = thresholds.factor_threshold(mb(4), model)
        raw_cost = model.download_energy_j(mb(1))
        rows.append((label, round(raw_cost, 3), round(threshold, 4)))
    return rows


def test_link_rate_ablation(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = ascii_table(
        ["link", "raw J/MB", "break-even factor (4MB file)"],
        rows,
        title="Ablation - link rate vs compression break-even factor",
    )
    write_artifact(
        "ablate_link_rate",
        text,
        data={
            "links": [
                {"link": label, "raw_j_per_mb": c, "break_even_factor": f}
                for label, c, f in rows
            ],
        },
    )

    factors = [f for _, _, f in rows]
    costs = [c for _, c, _ in rows]
    # Slower links: each MB costs more energy...
    assert costs == sorted(costs)
    # ...and compression pays off at progressively lower factors.
    assert factors == sorted(factors, reverse=True)
    assert factors[0] == pytest.approx(1.13, rel=0.02)
    assert factors[-1] < 1.10


def compute_ladder():
    rows = []
    for rate in wlan.LADDER_MBPS:
        model = thresholds.model_at_rate(rate)
        rows.append(
            (
                f"{rate:g} Mb/s",
                round(thresholds.factor_threshold(mb(4), model), 4),
                thresholds.size_threshold_bytes(model),
            )
        )
    return rows


def test_ladder_thresholds(benchmark):
    """Cross-reference: the 802.11b ladder the fault timeline steps on.

    Same physics as the ad-hoc link list above, but quantized to the
    rungs ``RateStep`` events are allowed to visit, so the artifact
    doubles as the lookup table for mid-session re-evaluation.
    """
    rows = benchmark.pedantic(compute_ladder, rounds=1, iterations=1)
    text = ascii_table(
        ["ladder rung", "break-even factor (4MB)", "size floor (bytes)"],
        rows,
        title="802.11b ladder - Equation 6 re-derived per rung",
    )
    write_artifact(
        "ablate_link_rate_ladder",
        text,
        data={
            "rungs": [
                {
                    "rung": label,
                    "break_even_factor": f,
                    "size_floor_bytes": floor,
                }
                for label, f, floor in rows
            ],
        },
    )

    floors = [floor for _, _, floor in rows]
    factors = [f for _, f, _ in rows]
    # Stepping down the ladder, compression pays for smaller files...
    assert floors == sorted(floors, reverse=True)
    # ...and at lower factors.
    assert factors == sorted(factors, reverse=True)
    # The top rung matches the paper's operating point.
    assert floors[0] == pytest.approx(3900, rel=0.01)
