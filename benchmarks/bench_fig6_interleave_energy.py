"""Figure 6: effect of interleaving on energy.

'Interleaving brings down the decompression overhead (both time-wise
and energy-wise) rather substantially' (Section 4.1): the reclaimed idle
energy is (ti' - td residue) * pi per Equation 3.
"""

import pytest

from repro.analysis.report import bar_chart
from benchmarks.common import large_specs, small_specs, write_artifact


def compute(analytic):
    series = {"gzip": [], "zlib": [], "zlib+interleave": []}
    specs = [s for s in large_specs() + small_specs()]
    for spec in specs:
        raw = analytic.raw(spec.size_bytes)
        sc = int(spec.size_bytes / spec.gzip_factor)
        seq = analytic.precompressed(spec.size_bytes, sc, interleave=False)
        inter = analytic.precompressed(spec.size_bytes, sc, interleave=True)
        series["gzip"].append(seq.energy_ratio(raw))
        series["zlib"].append(seq.energy_ratio(raw))
        series["zlib+interleave"].append(inter.energy_ratio(raw))
    return specs, series


def test_fig6_interleaving_energy(benchmark, analytic, model):
    specs, series = benchmark.pedantic(
        compute, args=(analytic,), rounds=1, iterations=1
    )
    text = bar_chart(
        [f"{s.name} (F={s.gzip_factor})" for s in specs],
        series,
        max_value=1.5,
        title="Figure 6 - relative energy: gzip / zlib / zlib interleaved",
    )
    write_artifact(
        "fig6_interleave_energy",
        text,
        data={
            "files": [
                {"name": s.name, "gzip_factor": s.gzip_factor} for s in specs
            ],
            "energy_ratios": series,
        },
    )

    for i in range(len(specs)):
        assert series["zlib+interleave"][i] <= series["zlib"][i] + 1e-9

    # Net loss for low-factor files shrinks to the paper's 2-14% band.
    for i, spec in enumerate(specs):
        if not spec.is_small and 1.0 < spec.gzip_factor <= 1.12:
            loss = series["zlib+interleave"][i] - 1.0
            assert 0.0 < loss < 0.20, spec.name

    # Interleaving recovers a meaningful share of the sequential penalty
    # for mid-factor large files.
    for i, spec in enumerate(specs):
        if not spec.is_small and 1.5 < spec.gzip_factor < 3.0:
            saved = series["zlib"][i] - series["zlib+interleave"][i]
            assert saved > 0.03, spec.name
