"""Extension bench: radio idle policies between requests (Section 2).

The paper uses the hardware power-saving mechanism and notes that
predictive sleep heuristics "highly depend on event predictability".
This bench quantifies that: four policies over three traffic patterns
(steady short gaps, long think times, bursty), energy per pattern.
"""

import random

import pytest

from repro.analysis.report import ascii_table
from repro.device.powersave import (
    AdaptiveTimeoutPolicy,
    AlwaysOnPolicy,
    compare_policies,
    SessionTrace,
    StaticPowerSavePolicy,
    TimeoutSleepPolicy,
)
from benchmarks.common import write_artifact
from tests.conftest import mb


def make_traces():
    rng = random.Random(5)
    # Back-to-back fetches: gaps far shorter than transfers, so the 25%
    # resume penalty outweighs the 1 W gap saving.
    steady = SessionTrace(
        requests=[(mb(2.0), 4.0, rng.uniform(0.05, 0.15)) for _ in range(12)]
    )
    think = SessionTrace(
        requests=[(mb(0.5), 4.0, rng.uniform(20, 60)) for _ in range(12)]
    )
    bursty_reqs = []
    for _ in range(3):
        for _ in range(4):
            bursty_reqs.append((mb(0.5), 4.0, rng.uniform(0.1, 0.4)))
        bursty_reqs.append((mb(0.5), 4.0, rng.uniform(30, 60)))
    bursty = SessionTrace(requests=bursty_reqs)
    return {"steady": steady, "think-time": think, "bursty": bursty}


def fresh_policies():
    return [
        AlwaysOnPolicy(),
        StaticPowerSavePolicy(),
        TimeoutSleepPolicy(timeout_s=1.0),
        AdaptiveTimeoutPolicy(),
    ]


def compute(model):
    table = {}
    for label, trace in make_traces().items():
        results = compare_policies(trace, policies=fresh_policies(), model=model)
        table[label] = {r.policy: r.energy_j for r in results}
    return table


def test_powersave_policies(benchmark, model):
    table = benchmark.pedantic(compute, args=(model,), rounds=1, iterations=1)
    policies = ["always-on", "power-save", "timeout", "adaptive-timeout"]
    rows = [
        (label, *(round(table[label][p], 2) for p in policies))
        for label in ("steady", "think-time", "bursty")
    ]
    text = ascii_table(
        ["traffic"] + policies,
        rows,
        title="Idle-policy energy (J) per traffic pattern",
    )
    write_artifact(
        "powersave_policies",
        text,
        data={"energy_j": table},
    )

    # Steady traffic: staying awake wins (the resume penalty dominates).
    steady = table["steady"]
    assert steady["always-on"] <= min(steady["power-save"], steady["timeout"]) * 1.001
    # Long think times: any sleeping policy crushes always-on.
    think = table["think-time"]
    assert think["power-save"] < think["always-on"] * 0.6
    assert think["timeout"] < think["always-on"] * 0.7
    # Bursty traffic: the adaptive heuristic beats always-on and is
    # competitive with the best static choice (within 10%).
    bursty = table["bursty"]
    assert bursty["adaptive-timeout"] < bursty["always-on"]
    best_static = min(bursty["power-save"], bursty["timeout"])
    assert bursty["adaptive-timeout"] <= best_static * 1.10
