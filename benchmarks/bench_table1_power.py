"""Table 1: power parameters (mA) per device/radio/power-save state.

Regenerates the table by driving the simulated device into each state
and reading the current with the simulated multimeter, the way the paper
measured the real iPAQ with the HP 3458a.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.device.meter import Multimeter
from repro.device.power import CpuState, IPAQ_POWER_TABLE, RadioState
from repro.device.timeline import PowerTimeline
from benchmarks.common import write_artifact

#: (label, cpu, radio, power_save, paper mA or midpoint of paper range)
ROWS = [
    ("idle / sleep", CpuState.IDLE, RadioState.SLEEP, None, 90),
    ("busy / sleep (decomp)", CpuState.BUSY, RadioState.SLEEP, None, 310),
    ("idle / idle / off", CpuState.IDLE, RadioState.IDLE, False, 310),
    ("idle / idle / on", CpuState.IDLE, RadioState.IDLE, True, 110),
    ("busy / idle / off (decomp)", CpuState.BUSY, RadioState.IDLE, False, 570),
    ("busy / idle / on (decomp)", CpuState.BUSY, RadioState.IDLE, True, 340),
    ("- / recv / off", CpuState.NETWORK, RadioState.RECV, False, 430),
    ("- / recv / on", CpuState.NETWORK, RadioState.RECV, True, 400),
    ("busy / recv / off", CpuState.BUSY, RadioState.RECV, False, 620),
    ("busy / recv / on", CpuState.BUSY, RadioState.RECV, True, 580),
]


def measure_all():
    meter = Multimeter(sample_rate_hz=400, trigger_overhead_fraction=0.0)
    rows = []
    for label, cpu, radio, ps, paper_ma in ROWS:
        activity = "decomp" in label and "decompress" or None
        power = IPAQ_POWER_TABLE.power_w(cpu, radio, ps, activity=activity)
        timeline = PowerTimeline()
        timeline.add(1.0, power, label)
        reading = meter.measure(timeline)
        rows.append((label, paper_ma, round(reading.avg_ma, 1)))
    return rows


def test_table1_reproduction(benchmark):
    rows = benchmark(measure_all)
    text = ascii_table(
        ["state", "paper mA", "measured mA"],
        rows,
        title="Table 1 - power parameters (screen off, 5 V external supply)",
    )
    write_artifact(
        "table1_power",
        text,
        data={
            "states": [
                {"state": label, "paper_ma": paper_ma, "measured_ma": measured_ma}
                for label, paper_ma, measured_ma in rows
            ],
        },
    )
    for label, paper_ma, measured_ma in rows:
        assert measured_ma == pytest.approx(paper_ma, rel=0.01), label
