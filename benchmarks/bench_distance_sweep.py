"""Extension bench: energy vs distance with 802.11b rate adaptation.

"With the advent of faster speed wireless LAN devices ... a wider range
of experimental environments will become available" (Section 7).  The
channel model sweeps the device away from the AP; as the rate ladder
steps down, raw downloads get expensive fast and the compression
break-even factor collapses toward 1.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core import thresholds
from repro.core.energy_model import EnergyModel
from repro.network import channel
from benchmarks.common import write_artifact
from tests.conftest import mb


def compute():
    rows = []
    for distance in (5, 25, 45, 80, 110):
        condition = channel.ChannelCondition(distance_m=distance)
        rate = channel.select_rate(condition)
        model = EnergyModel(link=channel.link_for_condition(condition))
        raw_j = model.download_energy_j(mb(1))
        threshold = thresholds.factor_threshold(mb(4), model)
        comp_j = model.interleaved_energy_j(mb(4), mb(1))
        rows.append(
            (
                distance,
                f"{rate:g}",
                round(raw_j, 2),
                round(threshold, 3),
                round(comp_j, 2),
            )
        )
    return rows


def test_distance_sweep(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = ascii_table(
        ["distance m", "rate Mb/s", "raw J/MB", "break-even F", "4MB F=4 J"],
        rows,
        title="Energy vs distance under 802.11b rate adaptation",
    )
    write_artifact(
        "distance_sweep",
        text,
        data={
            "sweep": [
                {
                    "distance_m": d,
                    "rate_mbps": float(rate),
                    "raw_j_per_mb": raw_j,
                    "break_even_factor": f,
                    "interleaved_4mb_j": comp_j,
                }
                for d, rate, raw_j, f, comp_j in rows
            ],
        },
    )

    raw_costs = [r[2] for r in rows]
    break_evens = [r[3] for r in rows]
    # Farther = more energy per raw MB, monotonically.
    assert raw_costs == sorted(raw_costs)
    assert raw_costs[-1] > raw_costs[0] * 3
    # And compression becomes worthwhile at ever-lower factors.
    assert break_evens == sorted(break_evens, reverse=True)
    assert break_evens[0] == pytest.approx(1.13, rel=0.02)
    assert break_evens[-1] < 1.05
