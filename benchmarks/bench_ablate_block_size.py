"""Ablation: the interleaving block size (the paper fixes 0.128 MB).

Smaller blocks shrink ti'' (the unusable first-block idle) but add
per-block latency in the real container; the model-level sweep shows the
energy sensitivity is mild around the paper's choice, i.e. 0.128 MB is
not a delicate constant.
"""

import pytest

from repro.analysis.report import ascii_table
from benchmarks.common import write_artifact
from tests.conftest import mb


def compute(model):
    rows = []
    s, f = mb(4), 3.0
    sc = int(s / f)
    for block_mb in (0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.0):
        altered = model.with_params(block_mb=block_mb)
        e = altered.interleaved_energy_j(s, sc)
        ti_prime, ti_dprime = altered.idle_times(s, sc)
        rows.append((block_mb, round(e, 4), round(ti_dprime, 4)))
    return rows


def test_block_size_ablation(benchmark, model):
    rows = benchmark.pedantic(compute, args=(model,), rounds=1, iterations=1)
    text = ascii_table(
        ["block MB", "interleaved J (4MB, F=3)", "ti'' (s)"],
        rows,
        title="Ablation - interleaving block size",
    )
    write_artifact(
        "ablate_block_size",
        text,
        data={
            "sweep": [
                {"block_mb": b, "interleaved_j": e, "ti_dprime_s": t}
                for b, e, t in rows
            ],
        },
    )

    energies = [e for _, e, _ in rows]
    ti_dprimes = [t for _, _, t in rows]
    # ti'' grows with the block size (more unusable first-block idle).
    assert ti_dprimes == sorted(ti_dprimes)
    # Energy is monotone in block size but varies by only a few percent
    # over a 64x range.
    assert energies == sorted(energies)
    assert (energies[-1] - energies[0]) / energies[0] < 0.10
    # The paper's 0.128 MB sits within 1% of the smallest block tried.
    paper = dict((b, e) for b, e, _ in rows)[0.128]
    assert paper <= energies[0] * 1.01 + 0.05
