"""Extension bench: the upload-direction trade-off (Section 7 future work).

The paper defers the upload study; this bench quantifies it with the
mirrored model: per scheme, the break-even compression factor for
uploads and the energy of uploading representative captures (voice
recordings, photos) raw vs compressed-on-device.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core.upload import UploadModel
from repro.workload.manifest import get_spec
from benchmarks.common import write_artifact
from tests.conftest import mb

#: Upload workload: things a handheld captures.
CAPTURES = [
    ("startup.wav", "compress"),
    ("startup.wav", "gzip-fast"),
    ("startup.wav", "gzip"),
    ("image01.jpg", "compress"),
    ("mail2", "compress"),
]


def compute(model):
    upload = UploadModel(model)
    threshold_rows = []
    for codec in ("compress", "gzip-fast", "gzip", "bzip2"):
        threshold_rows.append(
            (
                codec,
                round(upload.factor_threshold(mb(4), codec=codec), 3),
                round(
                    upload.factor_threshold(mb(4), codec=codec, interleaved=False), 3
                ),
            )
        )
    capture_rows = []
    for name, codec in CAPTURES:
        spec = get_spec(name)
        s = spec.size_bytes
        sc = int(s / spec.factor("compress" if codec == "compress" else "gzip"))
        raw_e = upload.upload_energy_j(s)
        comp_e = upload.interleaved_energy_j(s, sc, codec)
        capture_rows.append(
            (
                name,
                codec,
                round(raw_e, 3),
                round(comp_e, 3),
                f"{(1 - comp_e / raw_e) * 100:+.1f}%",
            )
        )
    return upload, threshold_rows, capture_rows


def test_upload_tradeoff(benchmark, model):
    upload, thresholds, captures = benchmark.pedantic(
        compute, args=(model,), rounds=1, iterations=1
    )
    text = ascii_table(
        ["codec", "break-even F (interleaved)", "break-even F (sequential)"],
        thresholds,
        title="Upload break-even factors, 4 MB capture",
    )
    text += "\n\n" + ascii_table(
        ["capture", "codec", "raw upload J", "compressed J", "saving"],
        captures,
        title="Representative uploads (compress on device, interleaved)",
    )
    write_artifact(
        "upload_tradeoff",
        text,
        data={
            "break_even_factors": [
                {
                    "codec": codec,
                    "interleaved": inter_t,
                    "sequential": seq_t,
                }
                for codec, inter_t, seq_t in thresholds
            ],
            "captures": [
                {
                    "capture": name,
                    "codec": codec,
                    "raw_j": raw_j,
                    "compressed_j": comp_j,
                    "saving": float(saving.rstrip("%")) / 100,
                }
                for name, codec, raw_j, comp_j, saving in captures
            ],
        },
    )

    by_codec = {row[0]: row for row in thresholds}
    # Device-side compression costs more than decompression, so every
    # upload threshold exceeds the download one (1.13).
    for codec, inter_t, seq_t in thresholds:
        assert inter_t > 1.13
        assert seq_t >= inter_t - 1e-9
    # Fast codecs make upload compression viable; gzip -9 and bzip2 do not.
    assert by_codec["compress"][1] < 2.6
    assert by_codec["gzip-fast"][1] < 2.6
    assert by_codec["gzip"][1] > 4.0
    assert by_codec["bzip2"][1] > 6.0

    # WAV uploads clearly save with gzip -1 and clearly lose with gzip -9;
    # LZW sits right at its break-even on this file (factor 2.26 vs
    # threshold ~2.2), so it is only asserted to be near zero.
    savings = {
        (name, codec): float(row[4].rstrip("%"))
        for (name, codec), row in zip(CAPTURES, captures)
    }
    assert savings[("startup.wav", "gzip-fast")] > 15
    assert savings[("startup.wav", "gzip")] < -30
    assert abs(savings[("startup.wav", "compress")]) < 8
    # Media and tiny captures should go raw (negative savings).
    assert savings[("image01.jpg", "compress")] < 0
    assert savings[("mail2", "compress")] < 0
