"""Figure 5: effect of interleaving on time.

Bars per file: gzip (sequential), zlib without interleaving, zlib with
interleaving — relative to raw download.  In this reproduction gzip and
zlib share one cost model (the paper notes only 'subtle differences'
between the tools), so the first two bars coincide and the claim under
test is the third bar's improvement.
"""

import pytest

from repro.analysis.report import bar_chart
from benchmarks.common import large_specs, small_specs, write_artifact


def compute(analytic):
    series = {"gzip": [], "zlib": [], "zlib+interleave": []}
    specs = [s for s in large_specs() + small_specs()]
    for spec in specs:
        raw = analytic.raw(spec.size_bytes)
        sc = int(spec.size_bytes / spec.gzip_factor)
        seq = analytic.precompressed(spec.size_bytes, sc, interleave=False)
        inter = analytic.precompressed(spec.size_bytes, sc, interleave=True)
        series["gzip"].append(seq.time_ratio(raw))
        series["zlib"].append(seq.time_ratio(raw))
        series["zlib+interleave"].append(inter.time_ratio(raw))
    return specs, series


def test_fig5_interleaving_time(benchmark, analytic):
    specs, series = benchmark.pedantic(
        compute, args=(analytic,), rounds=1, iterations=1
    )
    text = bar_chart(
        [f"{s.name} (F={s.gzip_factor})" for s in specs],
        series,
        max_value=1.5,
        title="Figure 5 - relative time: gzip / zlib / zlib interleaved",
    )
    write_artifact(
        "fig5_interleave_time",
        text,
        data={
            "files": [
                {"name": s.name, "gzip_factor": s.gzip_factor} for s in specs
            ],
            "time_ratios": series,
        },
    )

    for i, spec in enumerate(specs):
        # Interleaving never slows a download down.
        assert series["zlib+interleave"][i] <= series["zlib"][i] + 1e-9
    # And brings a substantial reduction where decompression fits in the
    # gaps (factor below the ~3.14 saturation point).
    gains = [
        series["zlib"][i] - series["zlib+interleave"][i]
        for i, s in enumerate(specs)
        if 1.3 < s.gzip_factor < 3.0 and not s.is_small
    ]
    assert gains and min(gains) > 0.05
