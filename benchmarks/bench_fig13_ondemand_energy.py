"""Figure 13: energy comparison when compressing on demand.

'The interleaving in the revised zlib completely masks the compression
time and hence no energy cost is wasted on waiting for the compressed
data to arrive' — the device-side waiting energy of the tool-style flows
disappears in the overlapped pipeline.
"""

import pytest

from repro.analysis.report import bar_chart
from benchmarks.common import large_specs, write_artifact


def compute(analytic):
    labels, series = [], {"gzip": [], "compress": [], "zlib+overlap": []}
    details = []
    for spec in large_specs():
        s = spec.size_bytes
        raw = analytic.raw(s)
        g = analytic.ondemand(s, int(s / spec.gzip_factor), "gzip", overlap=False)
        c = analytic.ondemand(
            s, int(s / spec.compress_factor), "compress", overlap=False
        )
        z = analytic.ondemand(s, int(s / spec.gzip_factor), "gzip", overlap=True)
        labels.append(f"{spec.name} (F={spec.gzip_factor})")
        series["gzip"].append(g.energy_ratio(raw))
        series["compress"].append(c.energy_ratio(raw))
        series["zlib+overlap"].append(z.energy_ratio(raw))
        details.append((spec, g, c, z, raw))
    return labels, series, details


def test_fig13_ondemand_energy(benchmark, analytic):
    labels, series, details = benchmark.pedantic(
        compute, args=(analytic,), rounds=1, iterations=1
    )
    text = bar_chart(
        labels,
        series,
        max_value=2.0,
        title="Figure 13 - relative energy, compression on demand",
    )
    write_artifact(
        "fig13_ondemand_energy",
        text,
        data={"files": labels, "energy_ratios": series},
    )

    specs = large_specs()
    # gzip fares better than compress in nearly all cases (Section 5).
    wins = sum(
        1
        for i, spec in enumerate(specs)
        if spec.gzip_factor > 1.1
        and series["gzip"][i] <= series["compress"][i] + 1e-9
    )
    contests = sum(1 for s in specs if s.gzip_factor > 1.1)
    assert wins >= contests * 0.8

    # The tool-style flows pay waiting energy; the overlapped one doesn't.
    for spec, g, c, z, raw in details:
        assert g.energy_breakdown().get("wait-compress", 0) > 0
        assert "wait-compress" not in z.energy_breakdown()
        assert z.energy_j <= g.energy_j + 1e-9

    # Overlapped on-demand approaches the precompressed interleaved cost.
    for spec, g, c, z, raw in details:
        if spec.gzip_factor > 1.5:
            pre = analytic.precompressed(
                spec.size_bytes,
                int(spec.size_bytes / spec.gzip_factor),
                interleave=True,
            )
            assert z.energy_j <= pre.energy_j * 1.15, spec.name
