"""Figure 8: (a) decompression-time fit, (b) download-energy fit.

Generates measurement points with the DES engine across the Table 2 size
range, runs the paper's fitting procedure (Section 4.2) and compares the
recovered coefficients with the paper's: td = 0.161 s + 0.161 sc + 0.004
(R^2 = 96.7%) and E = 3.519 s + 0.012 (avg error 7.2%), from which
m = 2.486 and cs = 0.012 are derived.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core.calibration import fit_decompression_time, fit_download_energy
from benchmarks.common import large_specs, small_specs, write_artifact


def compute(des, model):
    energy_samples = []
    td_samples = []
    for spec in large_specs() + small_specs():
        s = spec.size_bytes
        sc = int(s / spec.gzip_factor)
        energy_samples.append((s, des.raw(s).energy_j))
        td_samples.append(
            (s, sc, model.cpu.decompress_time_s("gzip", s, sc))
        )
    return fit_download_energy(energy_samples), fit_decompression_time(td_samples)


def test_fig8_linear_fits(benchmark, des, model):
    e_fit, t_fit = benchmark.pedantic(
        compute, args=(des, model), rounds=1, iterations=1
    )
    rows = [
        ("E slope (J/MB)", 3.519, round(e_fit.slope_j_per_mb, 4)),
        ("E intercept (J)", 0.012, round(e_fit.intercept_j, 4)),
        ("m (J/MB)", 2.486, round(e_fit.m_j_per_mb, 4)),
        ("cs (J)", 0.012, round(e_fit.cs_j, 4)),
        ("E fit R^2", ">0.9", round(e_fit.r_squared, 4)),
        ("td per raw MB (s)", 0.161, round(t_fit.per_raw_mb_s, 4)),
        ("td per comp MB (s)", 0.161, round(t_fit.per_compressed_mb_s, 4)),
        ("td constant (s)", 0.004, round(t_fit.constant_s, 4)),
        ("td fit R^2", 0.967, round(t_fit.r_squared, 4)),
    ]
    text = ascii_table(
        ["quantity", "paper", "refit"],
        rows,
        title="Figure 8 - linear fits refit from simulated measurements",
    )
    write_artifact(
        "fig8_fits",
        text,
        data={
            "energy_fit": {
                "slope_j_per_mb": e_fit.slope_j_per_mb,
                "intercept_j": e_fit.intercept_j,
                "m_j_per_mb": e_fit.m_j_per_mb,
                "cs_j": e_fit.cs_j,
                "r_squared": e_fit.r_squared,
            },
            "decompression_fit": {
                "per_raw_mb_s": t_fit.per_raw_mb_s,
                "per_compressed_mb_s": t_fit.per_compressed_mb_s,
                "constant_s": t_fit.constant_s,
                "r_squared": t_fit.r_squared,
            },
        },
    )

    assert e_fit.slope_j_per_mb == pytest.approx(3.519, rel=0.02)
    assert e_fit.m_j_per_mb == pytest.approx(2.486, rel=0.02)
    assert e_fit.cs_j == pytest.approx(0.012, abs=0.01)
    assert t_fit.per_raw_mb_s == pytest.approx(0.161, rel=0.02)
    assert t_fit.per_compressed_mb_s == pytest.approx(0.161, rel=0.05)
    assert t_fit.r_squared > 0.95
