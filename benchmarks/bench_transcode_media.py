"""Extension bench: lossy transcoding where lossless compression fails.

Table 2's media files sit at gzip factors 1.00-1.09 — the selective
scheme correctly ships them raw, leaving their (large) transfer energy
untouched.  The transcoding-proxy approach the paper's introduction
cites trades quality for size; this bench quantifies the rescue on the
Table 2 media set at two quality floors.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.proxy.transcode import TranscodingProxy
from repro.workload.manifest import get_spec
from benchmarks.common import write_artifact

MEDIA = ("image01.jpg", "image01.gif", "lovesong.mp3", "lorn.015.m2v")


def compute(model, analytic):
    proxy = TranscodingProxy(model=model)
    rows = []
    for name in MEDIA:
        spec = get_spec(name)
        raw = analytic.raw(spec.size_bytes)
        lossless = analytic.precompressed(
            spec.size_bytes,
            int(spec.size_bytes / spec.gzip_factor),
            interleave=True,
        )
        strict = proxy.decide(spec.size_bytes, quality_floor=0.7)
        loose = proxy.decide(spec.size_bytes, quality_floor=0.5)
        rows.append(
            (
                name,
                round(raw.energy_j, 2),
                round(lossless.energy_j, 2),
                f"{strict.chosen.quality:.2f}/{strict.chosen.device_energy_j:.2f}",
                f"{loose.chosen.quality:.2f}/{loose.chosen.device_energy_j:.2f}",
            )
        )
    return rows


def test_transcode_media(benchmark, model, analytic):
    rows = benchmark.pedantic(
        compute, args=(model, analytic), rounds=1, iterations=1
    )
    text = ascii_table(
        ["media file", "raw J", "gzip J", "q>=0.7 (q/J)", "q>=0.5 (q/J)"],
        rows,
        title="Lossy transcoding vs lossless compression on Table 2 media",
    )
    write_artifact(
        "transcode_media",
        text,
        data={
            "media": [
                {
                    "file": name,
                    "raw_j": raw_j,
                    "gzip_j": gzip_j,
                    "strict_quality": float(strict.split("/")[0]),
                    "strict_j": float(strict.split("/")[1]),
                    "loose_quality": float(loose.split("/")[0]),
                    "loose_j": float(loose.split("/")[1]),
                }
                for name, raw_j, gzip_j, strict, loose in rows
            ],
        },
    )

    for name, raw_j, gzip_j, strict, loose in rows:
        # Lossless is at best break-even on media.
        assert gzip_j >= raw_j * 0.97, name
        strict_j = float(strict.split("/")[1])
        loose_j = float(loose.split("/")[1])
        # Transcoding cuts the energy substantially; deeper with a looser floor.
        assert strict_j < raw_j * 0.65, name
        assert loose_j <= strict_j, name
