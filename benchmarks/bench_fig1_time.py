"""Figure 1: download+decompress time of the three schemes vs raw.

Three grouped bar charts (two large-file panels in the paper are one
here, plus the small-file panel), bar heights relative to uncompressed
download time.  Shape claims checked: time ratios fall as the factor
rises; bzip2's decompression makes it the slowest scheme; for
incompressible media every scheme is at or above 1.0.
"""

import pytest

from repro.analysis.report import bar_chart
from benchmarks.common import (
    SCHEMES,
    figure_ratios,
    large_specs,
    small_specs,
    write_artifact,
)


def compute(analytic):
    large = figure_ratios(analytic, large_specs(), "time")
    small = figure_ratios(analytic, small_specs(), "time")
    return large, small


def test_fig1_time_comparison(benchmark, analytic):
    large, small = benchmark.pedantic(compute, args=(analytic,), rounds=1, iterations=1)
    l_specs, s_specs = large_specs(), small_specs()
    text = bar_chart(
        [f"{s.name} (F={s.gzip_factor})" for s in l_specs],
        large,
        max_value=2.0,
        title="Figure 1 - relative time, large files (1.0 = raw download)",
    )
    text += "\n\n" + bar_chart(
        [f"{s.name} ({s.size_bytes}B)" for s in s_specs],
        small,
        max_value=2.0,
        title="Figure 1 - relative time, small files",
    )
    write_artifact(
        "fig1_time",
        text,
        data={
            "large": {"files": [s.name for s in l_specs], "series": large},
            "small": {"files": [s.name for s in s_specs], "series": small},
        },
    )

    gzip_large = large["gzip"]
    factors = [s.gzip_factor for s in l_specs]

    # Trend: higher factor => lower relative time (Section 3.2).
    high = [r for r, f in zip(gzip_large, factors) if f > 5]
    low = [r for r, f in zip(gzip_large, factors) if 1.3 < f < 3]
    assert max(high) < min(low)

    # High-factor files finish in a small fraction of the raw time.
    assert min(gzip_large) < 0.30

    # bzip2 is slowest on compressible files (reverse transform cost).
    for i, spec in enumerate(l_specs):
        if spec.gzip_factor > 2:
            assert large["bzip2"][i] > large["gzip"][i]

    # Media files gain nothing.
    for i, spec in enumerate(l_specs):
        if spec.gzip_factor <= 1.02:
            for scheme in SCHEMES:
                assert large[scheme][i] >= 0.95
