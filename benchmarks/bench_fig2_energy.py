"""Figure 2: energy of the three schemes vs raw download.

Shape claims (Section 3.2): with a large file and high factor every
scheme saves; small files lose to the start-up cost; low factors lose;
gzip balances communication vs decompression best, and bzip2's deeper
factors do not win it the energy contest.
"""

import pytest

from repro.analysis.report import bar_chart
from benchmarks.common import (
    figure_ratios,
    large_specs,
    small_specs,
    scheme_session,
    write_artifact,
)


def compute(analytic):
    large = figure_ratios(analytic, large_specs(), "energy")
    small = figure_ratios(analytic, small_specs(), "energy")
    return large, small


def test_fig2_energy_comparison(benchmark, analytic):
    large, small = benchmark.pedantic(compute, args=(analytic,), rounds=1, iterations=1)
    l_specs, s_specs = large_specs(), small_specs()
    text = bar_chart(
        [f"{s.name} (F={s.gzip_factor})" for s in l_specs],
        large,
        max_value=2.0,
        title="Figure 2 - relative energy, large files (1.0 = raw download)",
    )
    text += "\n\n" + bar_chart(
        [f"{s.name} ({s.size_bytes}B)" for s in s_specs],
        small,
        max_value=2.0,
        title="Figure 2 - relative energy, small files",
    )
    write_artifact(
        "fig2_energy",
        text,
        data={
            "large": {"files": [s.name for s in l_specs], "series": large},
            "small": {"files": [s.name for s in s_specs], "series": small},
        },
    )

    factors = [s.gzip_factor for s in l_specs]

    # Large + high factor: all schemes save energy.
    for i, f in enumerate(factors):
        if f > 5:
            for scheme in ("gzip", "compress", "bzip2"):
                assert large[scheme][i] < 1.0, (l_specs[i].name, scheme)

    # Low factor: not beneficial.
    for i, f in enumerate(factors):
        if f <= 1.11:
            assert large["gzip"][i] >= 0.98

    # gzip wins the energy contest on most compressible large files.
    wins = sum(
        1
        for i, f in enumerate(factors)
        if f > 1.2
        and large["gzip"][i] <= large["compress"][i] + 1e-9
        and large["gzip"][i] <= large["bzip2"][i] + 1e-9
    )
    contests = sum(1 for f in factors if f > 1.2)
    assert wins >= contests * 0.8

    # Small files: compression fares worse; most small-file gzip ratios
    # exceed their large-file counterparts at similar factors.
    tiny = [r for r, s in zip(small["gzip"], s_specs) if s.size_bytes < 3900]
    assert all(r > 0.95 for r in tiny)
