"""Figure 12: time comparison when compressing on demand.

Three bars per large file: gzip and compress run tool-style (compress
fully on the proxy, then send, then decompress — three stacked
components), revised zlib overlaps compression with transmission and
interleaves decompression with reception.  Claims: gzip still beats
compress in nearly all cases despite compressing slower, and the revised
zlib 'completely masks the compression time'.
"""

import pytest

from repro.analysis.report import bar_chart
from benchmarks.common import large_specs, write_artifact


def compute(analytic):
    labels, series = [], {"gzip": [], "compress": [], "zlib+overlap": []}
    for spec in large_specs():
        s = spec.size_bytes
        raw = analytic.raw(s)
        g = analytic.ondemand(s, int(s / spec.gzip_factor), "gzip", overlap=False)
        c = analytic.ondemand(
            s, int(s / spec.compress_factor), "compress", overlap=False
        )
        z = analytic.ondemand(s, int(s / spec.gzip_factor), "gzip", overlap=True)
        labels.append(f"{spec.name} (F={spec.gzip_factor})")
        series["gzip"].append(g.time_ratio(raw))
        series["compress"].append(c.time_ratio(raw))
        series["zlib+overlap"].append(z.time_ratio(raw))
    return labels, series


def test_fig12_ondemand_time(benchmark, analytic):
    labels, series = benchmark.pedantic(
        compute, args=(analytic,), rounds=1, iterations=1
    )
    text = bar_chart(
        labels,
        series,
        max_value=2.0,
        title="Figure 12 - relative time, compression on demand",
    )
    write_artifact(
        "fig12_ondemand_time",
        text,
        data={"files": labels, "time_ratios": series},
    )

    specs = large_specs()
    # The overlapped pipeline always beats the serialized tools.
    for i in range(len(labels)):
        assert series["zlib+overlap"][i] <= series["gzip"][i] + 1e-9

    # gzip beats compress in nearly all cases (its deeper factor pays for
    # the slower compression).
    wins = sum(
        1
        for i, spec in enumerate(specs)
        if spec.gzip_factor > 1.1 and series["gzip"][i] <= series["compress"][i]
    )
    contests = sum(1 for s in specs if s.gzip_factor > 1.1)
    assert wins >= contests * 0.8

    # Masking: on moderate-factor files the overlapped session takes no
    # longer than the receive phase of the compressed payload plus a
    # small pipeline latency.
    for i, spec in enumerate(specs):
        if 1.5 < spec.gzip_factor < 3.0:
            recv_only = (1.0 / spec.gzip_factor)
            assert series["zlib+overlap"][i] <= recv_only + 0.08, spec.name
