"""Batch-engine speedup gate: vectorized Eq 1-6 vs the scalar executor.

Times the numpy batch evaluator against the scalar cell executor on a
dense Equation 6 threshold grid and *asserts* the speedup floor — the
fast path only exists because it is dramatically faster, so a regression
that quietly drops it to ~1x should fail loudly, not just look slow.

The scalar side is timed on a systematic sample of the grid (every
cell of a 100k grid through 200-iteration bisections would take tens of
minutes) and extrapolated per-cell; the batch side runs the *entire*
grid for real.  A byte-equality spot check re-runs a spread of cells
through the scalar executor and requires the batch metrics to match
exactly — the same contract the differential-oracle suite pins.

Knobs (environment):

- ``REPRO_BATCH_BENCH_CELLS``   grid size (default 10_000 — CI smoke;
  ``make campaign-perf`` runs 100_000).
- ``REPRO_BATCH_BENCH_SCALAR``  scalar timing sample size (default 256).
- ``REPRO_BATCH_BENCH_MIN_SPEEDUP``  assertion floor (default 50).

Runs standalone (``python benchmarks/bench_batch_engine.py``) and as a
pytest benchmark (``pytest benchmarks/bench_batch_engine.py``).
"""

import json
import math
import os
import time

from repro.campaign.executor import execute_cell, sanitize_metrics
from repro.campaign.spec import CampaignSpec
from repro.simulator.batch import HAVE_NUMPY, evaluate_cells, partition_cells

#: Loss / BER / codec axes shared by every grid size; only the size
#: axis stretches to hit the requested cell count.
GRID_LOSSES = (0.0, 0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3)
GRID_BERS = (0.0, 1e-8, 1e-7, 3e-7, 1e-6)
GRID_CODECS = ("gzip", "compress", "bzip2")


def env_int(name, default):
    return int(os.environ.get(name) or default)


def grid_spec(n_cells):
    """A dense Eq-6 factor-threshold plane with >= ``n_cells`` cells."""
    per_size = len(GRID_LOSSES) * len(GRID_BERS) * len(GRID_CODECS)
    n_sizes = max(2, math.ceil(n_cells / per_size))
    return CampaignSpec(
        name="batch-bench",
        description="Synthetic dense Eq-6 plane for the speedup gate",
        mode="grid",
        base={"kind": "threshold", "quantity": "factor"},
        axes={
            "size_mb": [round(0.01 + 0.003 * i, 6) for i in range(n_sizes)],
            "codec": list(GRID_CODECS),
            "loss_rate": list(GRID_LOSSES),
            "corrupt_rate": list(GRID_BERS),
        },
    )


def canon(metrics):
    """Byte-comparable form of a metrics dict (what lands on disk)."""
    return json.dumps(
        sanitize_metrics(metrics), sort_keys=True, separators=(",", ":")
    )


def spread(seq, k):
    """Up to ``k`` elements spread evenly across ``seq``."""
    if len(seq) <= k:
        return list(seq)
    step = len(seq) / k
    return [seq[int(i * step)] for i in range(k)]


def run_gate():
    """Time both paths, verify byte-equality, assert the floor."""
    if not HAVE_NUMPY:  # pragma: no cover - numpy is a dependency
        raise SystemExit("SKIP: numpy not available, no batch engine")
    n_cells = env_int("REPRO_BATCH_BENCH_CELLS", 10_000)
    scalar_n = env_int("REPRO_BATCH_BENCH_SCALAR", 256)
    floor = env_int("REPRO_BATCH_BENCH_MIN_SPEEDUP", 50)

    cells = grid_spec(n_cells).expand()
    batchable, rest = partition_cells(cells)
    assert not rest, f"{len(rest)} grid cells declined by the planner"

    t0 = time.perf_counter()
    results, fallback = evaluate_cells(batchable)
    batch_s = time.perf_counter() - t0
    assert not fallback, f"{len(fallback)} cells fell back at runtime"
    assert len(results) == len(batchable)

    sample = spread(batchable, scalar_n)
    t0 = time.perf_counter()
    scalar_sample = [execute_cell(c.params, c.seed)[0] for c in sample]
    scalar_s = time.perf_counter() - t0

    by_id = {cell.cell_id: metrics for cell, metrics in results}
    for cell, want in zip(sample, scalar_sample):
        got = canon(by_id[cell.cell_id])
        assert got == canon(want), (
            f"batch/scalar byte divergence at {cell.cell_id}: "
            f"{got} != {canon(want)}"
        )

    batch_per = batch_s / len(batchable)
    scalar_per = scalar_s / len(sample)
    speedup = scalar_per / batch_per
    stats = {
        "cells": len(batchable),
        "batch_seconds": round(batch_s, 4),
        "batch_cells_per_second": round(1.0 / batch_per, 1),
        "scalar_sample": len(sample),
        "scalar_cells_per_second": round(1.0 / scalar_per, 1),
        "speedup": round(speedup, 1),
        "floor": floor,
        "oracle_checked": len(sample),
    }
    assert speedup >= floor, (
        f"batch engine speedup {speedup:.1f}x is below the {floor}x "
        f"floor ({stats})"
    )
    return stats


def report(stats):
    from benchmarks.common import write_artifact

    text = (
        "Batch engine speedup gate (vectorized Eq 1-6 vs scalar)\n"
        f"  grid cells        : {stats['cells']}\n"
        f"  batch             : {stats['batch_seconds']} s "
        f"({stats['batch_cells_per_second']} cells/s)\n"
        f"  scalar (sampled)  : {stats['scalar_cells_per_second']} cells/s "
        f"over {stats['scalar_sample']} cells\n"
        f"  speedup           : {stats['speedup']}x "
        f"(floor {stats['floor']}x)\n"
        f"  oracle spot check : {stats['oracle_checked']} cells "
        "byte-identical"
    )
    write_artifact("batch_engine", text, data=stats)
    return text


def test_batch_engine_speedup(benchmark):
    stats = benchmark.pedantic(run_gate, rounds=1, iterations=1)
    report(stats)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    report(run_gate())
