"""Equation 6 / Section 4.3: the selective-compression thresholds.

Checks the three headline constants — the 3900-byte size threshold, the
large-file factor threshold 1.13, and the small-file numerator 1.30 —
re-derived from the model rather than transcribed.  The sweep itself
runs as a campaign (``repro.campaign.presets.eq6_spec``) so the grid
fans out over the machine's cores; the bench assembles its table from
the campaign records.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.campaign.presets import EQ6_SIZES_MB, eq6_spec
from repro.campaign.runner import run_campaign
from repro.core import thresholds
from benchmarks.common import campaign_jobs, write_artifact
from tests.conftest import mb


def compute(model):
    result = run_campaign(eq6_spec(), jobs=campaign_jobs())
    assert result.ok, [r for r in result.records if r["status"] != "ok"]
    size_paper = result.metric("floor/literal", "size_floor_bytes")
    size_model = result.metric("floor/model", "size_floor_bytes")
    rows = []
    for s_mb in EQ6_SIZES_MB:
        rows.append(
            (
                f"{s_mb} MB",
                round(
                    result.metric(f"factor/{s_mb}/literal",
                                  "factor_threshold"), 3
                ),
                round(
                    result.metric(f"factor/{s_mb}/model",
                                  "factor_threshold"), 3
                ),
            )
        )
    return size_paper, size_model, rows


def test_eq6_thresholds(benchmark, model):
    size_paper, size_model, rows = benchmark.pedantic(
        compute, args=(model,), rounds=1, iterations=1
    )
    text = ascii_table(
        ["file size", "factor threshold (Eq.6 literal)", "factor threshold (model)"],
        rows,
        title="Equation 6 - compression-worthiness thresholds",
    )
    text += (
        f"\n\nsize threshold: paper 3900 B, literal Eq.6 {size_paper} B, "
        f"model-derived {size_model} B"
    )
    write_artifact(
        "eq6_thresholds",
        text,
        data={
            "size_threshold_paper": size_paper,
            "size_threshold_model": size_model,
            "factor_thresholds": rows,
        },
    )

    assert size_paper == 3900
    assert size_model == pytest.approx(3900, rel=0.05)
    # Large-file asymptote: 1.13.
    literal_large = thresholds.factor_threshold(mb(8))
    model_large = thresholds.factor_threshold(mb(8), model)
    assert literal_large == pytest.approx(1.13, rel=0.01)
    assert model_large == pytest.approx(1.13, rel=0.02)
    # Small-file asymptote: 1.30 (as s >> 0.00372 but <= 0.128).
    literal_small = thresholds.factor_threshold(mb(0.1))
    assert literal_small == pytest.approx(1.30 / (1 - 0.00372 / 0.1), rel=0.01)
    # Thresholds rise as files shrink.
    factors = [r[2] for r in rows]
    assert factors == sorted(factors, reverse=True)
