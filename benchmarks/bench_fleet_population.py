"""Population-scale fleet gate: a million handhelds, one minute, one byte.

Synthesizes a heterogeneous device population behind contended APs,
evaluates the full per-device energy/lifetime/decision distributions
through the analytic fleet layer, and *asserts* the contract that makes
the subsystem usable: the whole pipeline finishes inside the wall-clock
budget, and two runs at the same seed serialize to byte-identical JSON.
The analytic contention layer itself is re-validated against the
discrete-event ``MultiClientSimulation`` spot grid before anything is
timed, so a fast-but-wrong model cannot pass.

Knobs (environment):

- ``REPRO_FLEET_BENCH_DEVICES``  population size (default 1_000_000).
- ``REPRO_FLEET_BENCH_BUDGET_S`` wall-clock ceiling per run (default 60).
- ``REPRO_FLEET_BENCH_SEED``     synthesis seed (default 7).

Runs standalone (``python benchmarks/bench_fleet_population.py``) and as
a pytest benchmark (``pytest benchmarks/bench_fleet_population.py``).
"""

import os
import time

from repro.fleet import (
    HAVE_NUMPY,
    PopulationSpec,
    assert_des_agreement,
    evaluate_population,
    summary_json,
    synthesize,
)


def env_int(name, default):
    return int(os.environ.get(name) or default)


def one_run(spec, seed, policy):
    """Synthesize + evaluate + serialize; return (json_bytes, seconds)."""
    t0 = time.perf_counter()
    population = synthesize(spec, seed=seed)
    summary = evaluate_population(population, policy=policy)
    text = summary_json(summary)
    return text, time.perf_counter() - t0, summary


def run_gate():
    """Validate against the DES, run twice, assert budget + byte-equality."""
    if not HAVE_NUMPY:  # pragma: no cover - numpy is a dependency
        raise SystemExit("SKIP: numpy not available, no fleet engine")
    devices = env_int("REPRO_FLEET_BENCH_DEVICES", 1_000_000)
    budget_s = env_int("REPRO_FLEET_BENCH_BUDGET_S", 60)
    seed = env_int("REPRO_FLEET_BENCH_SEED", 7)

    # Correctness first: the closed forms must still sit inside the
    # pinned tolerance of the discrete-event oracle on every spot config.
    assert_des_agreement()

    spec = PopulationSpec.from_mix(devices, mix="balanced")
    first, first_s, summary = one_run(spec, seed, "fleet-advised")
    second, second_s, _ = one_run(spec, seed, "fleet-advised")

    assert first == second, (
        "same-seed fleet runs are not byte-identical "
        f"({len(first)} vs {len(second)} bytes)"
    )
    worst = max(first_s, second_s)
    assert worst <= budget_s, (
        f"fleet evaluation took {worst:.1f}s for {devices} devices, "
        f"over the {budget_s}s budget"
    )

    stats = summary.metrics()
    return {
        "devices": devices,
        "aps": stats["aps"],
        "cohorts": stats["cohorts"],
        "seed": seed,
        "run_seconds": [round(first_s, 3), round(second_s, 3)],
        "budget_seconds": budget_s,
        "devices_per_second": round(devices / worst, 1),
        "json_bytes": len(first),
        "fleet_energy_j": stats["fleet_energy_j"],
        "compress_fraction": stats["compress_fraction"],
        "flip_fraction": stats["flip_fraction"],
        "lifetime_h_p50": stats["lifetime_h_p50"],
    }


def report(stats):
    from benchmarks.common import write_artifact

    text = (
        "Population-scale fleet gate (synthesize + evaluate + serialize)\n"
        f"  devices            : {stats['devices']} "
        f"across {stats['aps']} APs ({stats['cohorts']} cohorts)\n"
        f"  runs               : {stats['run_seconds']} s "
        f"(budget {stats['budget_seconds']} s)\n"
        f"  throughput         : {stats['devices_per_second']} devices/s\n"
        f"  determinism        : byte-identical at seed {stats['seed']} "
        f"({stats['json_bytes']} JSON bytes)\n"
        f"  compress fraction  : {stats['compress_fraction']:.3f}\n"
        f"  flip fraction      : {stats['flip_fraction']:.3f}\n"
        f"  lifetime p50       : {stats['lifetime_h_p50']:.2f} h\n"
        "  DES agreement      : all spot configs within the 5% gate"
    )
    write_artifact("fleet_population", text, data=stats)
    return text


def test_fleet_population_gate(benchmark):
    stats = benchmark.pedantic(run_gate, rounds=1, iterations=1)
    report(stats)


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    print(report(run_gate()))
