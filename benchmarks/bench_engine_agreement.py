"""Ablation: from-scratch codecs vs CPython engines on corpus bytes.

The corpus is calibrated against native zlib; this bench checks that the
package's pure-Python codecs land close enough that every conclusion
would survive swapping engines — the justification for using the native
engines in corpus-scale benches (DESIGN.md §5 item 4).
"""

import pytest

from repro.analysis.report import ascii_table
from repro.compression import get_codec
from benchmarks.common import write_artifact

#: A slice of the corpus spanning the factor range, kept small because
#: the pure codecs run at pure-Python speed.
FILES = ["mail2", "yahooindex.html", "umcdig.eps", "intro.pdf", "tail"]

PAIRS = [("gzip", "zlib"), ("bzip2", "bz2")]


def compute(corpus):
    rows = []
    worst = 0.0
    for name in FILES:
        gf = corpus.generate(name)
        for pure_name, native_name in PAIRS:
            pure_codec = get_codec(pure_name)
            pure = pure_codec.compress(gf.data)
            native = get_codec(native_name).compress(gf.data)
            assert pure_codec.decompress_bytes(pure.payload) == gf.data
            rel = pure.factor / native.factor - 1.0
            worst = max(worst, abs(rel))
            rows.append(
                (
                    name,
                    pure_name,
                    round(pure.factor, 2),
                    round(native.factor, 2),
                    f"{rel * 100:+.1f}%",
                )
            )
    return rows, worst


def test_engine_agreement(benchmark, corpus):
    rows, worst = benchmark.pedantic(compute, args=(corpus,), rounds=1, iterations=1)
    text = ascii_table(
        ["file", "scheme", "pure factor", "native factor", "difference"],
        rows,
        title="Pure-Python codecs vs CPython engines (real corpus bytes)",
    )
    text += f"\n\nworst relative factor difference: {worst * 100:.1f}%"
    write_artifact("engine_agreement", text, data={"rows": rows, "worst": worst})

    # Factor differences stay well inside the corpus calibration band, so
    # engine choice cannot flip any figure's conclusion.
    assert worst < 0.30
    for _, scheme, pure_f, native_f, _ in rows:
        if native_f > 1.3:
            assert pure_f > 1.2  # compressible stays compressible