"""Extension bench: battery life under the paper's techniques.

Turns joules-per-file into the number a user feels: hours of browsing
and objects fetched per charge, across a configuration ladder from
naive (raw transfers, radio always on) to the full stack (selective
interleaved compression + power saving).  Two traffic shapes: an active
browsing burst (short gaps) and casual use (long think times).
"""

import pytest

from repro.analysis.report import ascii_table
from repro.device.powersave import (
    AlwaysOnPolicy,
    StaticPowerSavePolicy,
    TimeoutSleepPolicy,
)
from repro.simulator.lifetime import LifetimeSimulation
from repro.workload.traces import ZipfTraceGenerator
from benchmarks.common import write_artifact


def compute(model):
    rows = []
    results = {}
    for traffic, mean_gap in (("active", 3.0), ("casual", 45.0)):
        trace = ZipfTraceGenerator(
            zipf_alpha=0.9, mean_gap_s=mean_gap, seed=31
        ).generate(40)
        sim = LifetimeSimulation(model)
        ladder = [
            ("raw + always-on", "raw", AlwaysOnPolicy()),
            ("advised + always-on", "advised", AlwaysOnPolicy()),
            ("advised + timeout sleep", "advised", TimeoutSleepPolicy(1.0)),
            ("advised + power-save", "advised", StaticPowerSavePolicy()),
        ]
        for label, strategy, policy in ladder:
            report = sim.run(trace, strategy=strategy, idle_policy=policy)
            results[(traffic, label)] = report
            rows.append(
                (
                    traffic,
                    label,
                    round(report.hours, 2),
                    report.requests_served,
                )
            )
    return rows, results


def test_battery_lifetime_ladder(benchmark, model):
    rows, results = benchmark.pedantic(compute, args=(model,), rounds=1, iterations=1)
    text = ascii_table(
        ["traffic", "configuration", "hours / charge", "objects fetched"],
        rows,
        title="Battery life per charge (950 mAh iPAQ pack)",
    )
    write_artifact(
        "battery_lifetime",
        text,
        data={
            f"{t}|{l}": {"hours": r.hours, "served": r.requests_served}
            for (t, l), r in results.items()
        },
    )

    # Active traffic: compression is the lever (transfers dominate).
    active_raw = results[("active", "raw + always-on")]
    active_adv = results[("active", "advised + always-on")]
    assert active_adv.requests_served > active_raw.requests_served * 1.5

    # Casual traffic: power management is the lever (gaps dominate).
    casual_on = results[("casual", "advised + always-on")]
    casual_ps = results[("casual", "advised + power-save")]
    assert casual_ps.hours > casual_on.hours * 2.0

    # The full stack beats the naive configuration everywhere.
    for traffic in ("active", "casual"):
        naive = results[(traffic, "raw + always-on")]
        full = results[(traffic, "advised + power-save")]
        assert full.hours > naive.hours
        assert full.requests_served > naive.requests_served