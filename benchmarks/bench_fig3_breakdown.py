"""Figure 3: energy breakdown of download-then-decompress.

The paper's schematic shows receive energy, inter-packet idle energy and
decompression energy as the three components; Section 4.1 quantifies the
idle share of a plain download at ~30%.  The bench regenerates the
breakdown for a representative compressed download.
"""

import pytest

from repro.analysis.report import ascii_table
from benchmarks.common import write_artifact
from tests.conftest import mb


def compute(analytic):
    raw = analytic.raw(mb(4))
    seq = analytic.precompressed(mb(4), mb(1), interleave=False)
    return raw, seq


def test_fig3_energy_breakdown(benchmark, analytic):
    raw, seq = benchmark.pedantic(compute, args=(analytic,), rounds=1, iterations=1)
    rows = []
    for label, result in (("raw 4MB", raw), ("gzip 4MB F=4 sequential", seq)):
        breakdown = result.energy_breakdown()
        for tag, joules in sorted(breakdown.items()):
            rows.append(
                (label, tag, round(joules, 3), f"{joules / result.energy_j:.1%}")
            )
    text = ascii_table(
        ["session", "component", "J", "share"],
        rows,
        title="Figure 3 - energy breakdown (download then decompress)",
    )
    write_artifact(
        "fig3_breakdown",
        text,
        data={
            "sessions": {
                "raw_4mb": {
                    "energy_j": raw.energy_j,
                    "breakdown_j": dict(sorted(raw.energy_breakdown().items())),
                },
                "gzip_4mb_sequential": {
                    "energy_j": seq.energy_j,
                    "breakdown_j": dict(sorted(seq.energy_breakdown().items())),
                },
            },
        },
    )

    # 'about 30% of the total downloading energy is consumed when idling'.
    idle_share = raw.energy_breakdown()["idle"] / raw.energy_j
    assert idle_share == pytest.approx(0.30, abs=0.03)

    # The idle time is 40% of the receive time.
    times = raw.time_breakdown()
    assert times["idle"] / (times["idle"] + times["recv"]) == pytest.approx(
        0.40, abs=0.01
    )

    # The sequential compressed session has all three components.
    assert set(seq.energy_breakdown()) >= {"recv", "idle", "decompress"}
