"""Extension bench: the fleet-level break-even factor.

Equation 6's 1.13 assumes an idle medium.  With contenders queueing
behind each transfer, every removed byte also saves their idle-power
waiting, so the break-even factor falls with load.  The contention-aware
rule (FleetAdvisor) is validated against the DES fleet simulation.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core.fleet_advisor import FleetAdvisor
from benchmarks.common import write_artifact
from tests.conftest import mb


def compute(model):
    rows = []
    for n in (0, 1, 2, 4, 8, 16):
        advisor = FleetAdvisor(model, contenders=n)
        rows.append(
            (
                n,
                round(advisor.factor_threshold(mb(4)), 4),
                advisor.size_threshold_bytes(),
            )
        )
    return rows


def test_fleet_breakeven(benchmark, model):
    rows = benchmark.pedantic(compute, args=(model,), rounds=1, iterations=1)
    text = ascii_table(
        ["contenders", "break-even factor (4MB)", "size threshold (bytes)"],
        rows,
        title="Contention-adjusted Equation 6 thresholds",
    )
    write_artifact(
        "fleet_breakeven",
        text,
        data={"rows": rows},
    )

    factors = [r[1] for r in rows]
    sizes = [r[2] for r in rows]
    assert factors[0] == pytest.approx(1.13, rel=0.02)
    assert factors == sorted(factors, reverse=True)
    assert factors[-1] < 1.03
    assert sizes[0] == pytest.approx(3900, rel=0.05)
    assert sizes == sorted(sizes, reverse=True)
