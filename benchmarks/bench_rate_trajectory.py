"""Rate-trajectory sweep: fault timelines x scheme x resume policy.

The fault-timeline extension's headline experiment.  Each trajectory is
a scripted mid-session schedule on the 802.11b ladder (rate steps,
disconnects, proxy stalls); every (trajectory, scheme) cell runs through
BOTH engines — the analytic piecewise closed form and the DES packet
replay — and the artifact records their agreement.  A second table ranks
the outage-recovery policies: the range-capable resume receiver against
the restart-from-zero one, at a disconnect 90% into the transfer.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core.energy_model import EnergyModel
from repro.core.resume import ResumeConfig, compare_restart_resume
from repro.network.timeline import FaultTimeline, Outage, RateStep, Stall
from repro.simulator.analytic import AnalyticSession
from repro.simulator.des import DesSession
from benchmarks.common import write_artifact
from tests.conftest import mb

FACTOR = 3.8

TRAJECTORIES = [
    ("steady 11", FaultTimeline.scripted()),
    ("11 -> 2 at 1s", FaultTimeline.scripted(RateStep(1.0, 2.0))),
    (
        "fade 11 -> 1 -> 11",
        FaultTimeline.scripted(RateStep(0.8, 1.0), RateStep(2.2, 11.0)),
    ),
    (
        "outage + stall",
        FaultTimeline.scripted(Outage(0.9, 1.5, 0.3), Stall(3.0, 0.5)),
    ),
    ("seeded walk", FaultTimeline.seeded(
        7, horizon_s=12.0, rate_walk_interval_s=2.0, outage_interval_s=8.0,
    )),
]


def _run(session, scheme, raw_bytes, compressed):
    if scheme == "raw":
        return session.raw(raw_bytes)
    return session.precompressed(
        raw_bytes, compressed, "gzip", interleave=(scheme == "interleaved")
    )


def compute():
    model = EnergyModel()
    raw_bytes = mb(4)
    compressed = int(raw_bytes / FACTOR)
    resume = ResumeConfig()

    sweep_rows = []
    data = {"trajectories": [], "policies": []}
    for label, faults in TRAJECTORIES:
        for scheme in ("raw", "sequential", "interleaved"):
            analytic = _run(
                AnalyticSession(model, faults=faults, resume=resume),
                scheme, raw_bytes, compressed,
            )
            des = _run(
                DesSession(model, faults=faults, resume=resume),
                scheme, raw_bytes, compressed,
            )
            gap = abs(des.energy_j - analytic.energy_j) / analytic.energy_j
            sweep_rows.append(
                (
                    label,
                    scheme,
                    f"{analytic.energy_j:.3f}",
                    f"{des.energy_j:.3f}",
                    f"{gap:.2%}",
                    f"{analytic.fault_overhead_j:.3f}",
                )
            )
            data["trajectories"].append(
                {
                    "trajectory": label,
                    "scheme": scheme,
                    "analytic_j": analytic.energy_j,
                    "des_j": des.energy_j,
                    "gap": gap,
                    "fault_overhead_j": analytic.fault_overhead_j,
                }
            )

    policy_rows = []
    for fraction in (0.5, 0.9):
        cmp = compare_restart_resume(
            raw_bytes, compressed, outage_at_fraction=fraction, resume=resume
        )
        policy_rows.append(
            (
                f"outage at {fraction:.0%}",
                f"{cmp.restart_overhead_j:.3f}",
                f"{cmp.resume_overhead_j:.3f}",
                f"{cmp.saving_j:.3f}",
                "resume" if cmp.resume_wins else "restart",
            )
        )
        data["policies"].append(
            {
                "fraction": fraction,
                "restart_j": cmp.restart_overhead_j,
                "resume_j": cmp.resume_overhead_j,
                "saving_j": cmp.saving_j,
            }
        )
    return sweep_rows, policy_rows, data


def test_rate_trajectory(benchmark):
    sweep_rows, policy_rows, data = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    text = ascii_table(
        ["trajectory", "scheme", "analytic J", "DES J", "gap", "fault J"],
        sweep_rows,
        title="Rate trajectories - 4MB file, factor 3.8, both engines",
    )
    text += "\n\n" + ascii_table(
        ["disconnect", "restart J", "resume J", "saving J", "winner"],
        policy_rows,
        title="Outage recovery policy (interleaved, checkpoint 0.128 MB)",
    )
    write_artifact("rate_trajectory", text, data)

    # Twin-engine acceptance: <= 1% on every trajectory x scheme cell.
    for cell in data["trajectories"]:
        assert cell["gap"] <= 0.01, cell
    # The steady trajectory carries no fault overhead at all.
    steady = [
        c for c in data["trajectories"] if c["trajectory"] == "steady 11"
    ]
    assert all(c["fault_overhead_j"] == 0.0 for c in steady)
    # Disconnect-at-90%: resume strictly beats restart, and the gap
    # grows with how late the outage lands.
    assert data["policies"][-1]["saving_j"] > 0
    assert (
        data["policies"][1]["saving_j"] > data["policies"][0]["saving_j"]
    )
    # A rate fade makes the same download strictly more expensive.
    def cell(traj, scheme):
        return next(
            c for c in data["trajectories"]
            if c["trajectory"] == traj and c["scheme"] == scheme
        )

    assert (
        cell("fade 11 -> 1 -> 11", "interleaved")["analytic_j"]
        > cell("steady 11", "interleaved")["analytic_j"]
    )


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
