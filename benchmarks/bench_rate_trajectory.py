"""Rate-trajectory sweep: fault timelines x scheme x resume policy.

The fault-timeline extension's headline experiment.  Each trajectory is
a scripted mid-session schedule on the 802.11b ladder (rate steps,
disconnects, proxy stalls); every (trajectory, scheme) cell runs through
BOTH engines — the analytic piecewise closed form and the DES packet
replay — and the artifact records their agreement.  A second table ranks
the outage-recovery policies: the range-capable resume receiver against
the restart-from-zero one, at a disconnect 90% into the transfer.

The (trajectory, scheme, engine) grid lives in
``repro.campaign.presets.trajectory_spec``; this bench runs it through
the campaign runner and assembles its tables from the result records.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.campaign.presets import TRAJECTORIES, trajectory_spec
from repro.campaign.runner import run_campaign
from benchmarks.common import campaign_jobs, write_artifact


def compute():
    result = run_campaign(trajectory_spec(), jobs=campaign_jobs())
    assert result.ok, [r for r in result.records if r["status"] != "ok"]
    by_id = result.by_id()

    sweep_rows = []
    data = {"trajectories": [], "policies": []}
    for traj in TRAJECTORIES:
        label = traj["label"]
        for scheme in ("raw", "sequential", "interleaved"):
            analytic = by_id[f"run/{label}/{scheme}/analytic"]["metrics"]
            des = by_id[f"run/{label}/{scheme}/des"]["metrics"]
            gap = abs(des["energy_j"] - analytic["energy_j"]) / analytic["energy_j"]
            # The steady trajectory carries no fault machinery at all,
            # so its overhead metric is simply absent.
            fault_j = analytic.get("fault_overhead_j", 0.0)
            sweep_rows.append(
                (
                    label,
                    scheme,
                    f"{analytic['energy_j']:.3f}",
                    f"{des['energy_j']:.3f}",
                    f"{gap:.2%}",
                    f"{fault_j:.3f}",
                )
            )
            data["trajectories"].append(
                {
                    "trajectory": label,
                    "scheme": scheme,
                    "analytic_j": analytic["energy_j"],
                    "des_j": des["energy_j"],
                    "gap": gap,
                    "fault_overhead_j": fault_j,
                }
            )

    policy_rows = []
    for fraction in (0.5, 0.9):
        metrics = by_id[f"policy/{fraction}"]["metrics"]
        policy_rows.append(
            (
                f"outage at {fraction:.0%}",
                f"{metrics['restart_overhead_j']:.3f}",
                f"{metrics['resume_overhead_j']:.3f}",
                f"{metrics['saving_j']:.3f}",
                "resume" if metrics["resume_wins"] else "restart",
            )
        )
        data["policies"].append(
            {
                "fraction": fraction,
                "restart_j": metrics["restart_overhead_j"],
                "resume_j": metrics["resume_overhead_j"],
                "saving_j": metrics["saving_j"],
            }
        )
    return sweep_rows, policy_rows, data


def test_rate_trajectory(benchmark):
    sweep_rows, policy_rows, data = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    text = ascii_table(
        ["trajectory", "scheme", "analytic J", "DES J", "gap", "fault J"],
        sweep_rows,
        title="Rate trajectories - 4MB file, factor 3.8, both engines",
    )
    text += "\n\n" + ascii_table(
        ["disconnect", "restart J", "resume J", "saving J", "winner"],
        policy_rows,
        title="Outage recovery policy (interleaved, checkpoint 0.128 MB)",
    )
    write_artifact("rate_trajectory", text, data)

    # Twin-engine acceptance: <= 1% on every trajectory x scheme cell.
    for cell in data["trajectories"]:
        assert cell["gap"] <= 0.01, cell
    # The steady trajectory carries no fault overhead at all.
    steady = [
        c for c in data["trajectories"] if c["trajectory"] == "steady 11"
    ]
    assert all(c["fault_overhead_j"] == 0.0 for c in steady)
    # Disconnect-at-90%: resume strictly beats restart, and the gap
    # grows with how late the outage lands.
    assert data["policies"][-1]["saving_j"] > 0
    assert (
        data["policies"][1]["saving_j"] > data["policies"][0]["saving_j"]
    )
    # A rate fade makes the same download strictly more expensive.
    def cell(traj, scheme):
        return next(
            c for c in data["trajectories"]
            if c["trajectory"] == traj and c["scheme"] == scheme
        )

    assert (
        cell("fade 11 -> 1 -> 11", "interleaved")["analytic_j"]
        > cell("steady 11", "interleaved")["analytic_j"]
    )


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
