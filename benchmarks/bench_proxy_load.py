"""Extension bench: live proxy under seeded chaos load.

The robustness claim in one artifact: drive the streaming proxy service
with every fault injector armed (compressor stalls, mid-stream
disconnects, payload corruption, slow readers) and show the degradation
ladder holds — every request ends in a typed outcome, partial outputs
are always reclaimed, the circuit breaker trips and the service keeps
serving raw, and the modeled report is identical when the storm
replays at the same seed.
"""

from repro.analysis.report import ascii_table
from repro.proxy.chaos import ChaosConfig
from repro.proxy.loadgen import LoadSpec, run_load_sync
from repro.proxy.resilience import BreakerConfig, RetryPolicy
from repro.proxy.server import ProxyServer
from repro.proxy.service import ProxyService, ServiceConfig
from repro.workload.corpus import Corpus
from benchmarks.common import write_artifact

REQUESTS = 120
CLIENTS = 4
SEED = 3
CHAOS_RATE = 0.2


def make_service() -> ProxyService:
    store = ProxyServer()
    for gen in Corpus(scale=0.02).files():
        store.put(gen.name, gen.data)
    return ProxyService(
        store=store,
        config=ServiceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.05),
            breaker=BreakerConfig(failure_threshold=3, cooldown_s=5.0),
        ),
        chaos=ChaosConfig.all_on(seed=SEED, rate=CHAOS_RATE),
    )


def run_storm():
    spec = LoadSpec(requests=REQUESTS, clients=CLIENTS, seed=SEED)
    service = make_service()
    report = run_load_sync(service, spec)
    replay = run_load_sync(make_service(), spec)
    return report, report.to_json() == replay.to_json()


def test_proxy_load(benchmark):
    report, replay_identical = benchmark.pedantic(
        run_storm, rounds=1, iterations=1
    )
    doc = report.to_dict()
    stats = doc["service"]
    rows = [
        ("requests", REQUESTS),
        ("ok", doc["outcomes"]["ok"]),
        ("shed", doc["outcomes"]["shed"]),
        ("disconnected", doc["outcomes"]["disconnected"]),
        ("errors", doc["outcomes"]["error"]),
        ("retries", doc["retries"]),
        ("degraded to raw", doc["degraded"]),
        ("breaker trips", stats["breaker_trips"]),
        ("req/s (modeled)", doc["req_per_s_modeled"]),
        ("p99 latency (modeled s)", doc["latency_modeled_s"]["p99"]),
        ("client energy (J)", doc["energy"]["total_j"]),
        ("verify energy (J)", doc["energy"]["verify_j"]),
        ("outstanding partials", stats["outstanding_partials"]),
    ]
    text = ascii_table(
        ["metric", "value"],
        rows,
        title=(
            f"Proxy chaos load ({REQUESTS} requests, {CLIENTS} clients, "
            f"all injectors at {CHAOS_RATE}, seed {SEED})"
        ),
    )
    write_artifact("proxy_load", text, data=doc)

    # The storm resolves completely: no hung requests, nothing leaked.
    accounted = sum(doc["outcomes"].values())
    assert accounted == REQUESTS
    assert doc["outcomes"]["ok"] > 0
    assert stats["outstanding_partials"] == 0
    # Faults actually fired and the ladder absorbed them.
    assert sum(doc["chaos_injected"].values()) > 0
    assert doc["degraded"] + doc["retries"] > 0
    # Deterministic replay: same seed, byte-identical modeled report.
    assert replay_identical
