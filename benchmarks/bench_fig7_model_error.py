"""Figure 7: error of the interleaving energy model (Equation 3).

'Measured' values come from the packet-level DES replay (the literal
mechanism); 'calculated' values from Equation 3.  The paper reports an
average error of 2.5% for large files (max 6.5%) and 9.1% for small
files (4.5% excluding the five smallest).
"""

import pytest

from repro.analysis.fitting import relative_errors
from repro.analysis.report import ascii_table
from benchmarks.common import large_specs, small_specs, write_artifact


def compute(analytic_unused, des, model):
    rows = []
    for spec in large_specs() + small_specs():
        s = spec.size_bytes
        sc = int(s / spec.gzip_factor)
        measured = des.precompressed(s, sc, interleave=True).energy_j
        calculated = model.interleaved_energy_j(s, sc)
        rows.append((spec, measured, calculated))
    return rows


def test_fig7_interleave_model_error(benchmark, analytic, des, model):
    rows = benchmark.pedantic(
        compute, args=(analytic, des, model), rounds=1, iterations=1
    )
    large_rows = [r for r in rows if not r[0].is_small]
    small_rows = [r for r in rows if r[0].is_small]

    def error_table(subset):
        errs = relative_errors(
            [m for _, m, _ in subset], [c for _, _, c in subset]
        )
        return errs

    large_errs = error_table(large_rows)
    small_errs = error_table(small_rows)
    table = [
        (spec.name, round(m, 4), round(c, 4), f"{e * 100:+.1f}%")
        for (spec, m, c), e in zip(rows, large_errs + small_errs)
    ]
    avg_large = sum(abs(e) for e in large_errs) / len(large_errs)
    avg_small = sum(abs(e) for e in small_errs) / len(small_errs)
    text = ascii_table(
        ["file", "measured J (DES)", "Eq.3 J", "error"],
        table,
        title="Figure 7 - interleaving energy model error",
    )
    text += (
        f"\n\nlarge files: avg |error| {avg_large * 100:.1f}% "
        f"(paper: 2.5%), max {max(abs(e) for e in large_errs) * 100:.1f}% (paper: 6.5%)"
        f"\nsmall files: avg |error| {avg_small * 100:.1f}% (paper: 9.1%)"
    )
    write_artifact(
        "fig7_model_error",
        text,
        data={
            "avg_abs_error_large": avg_large,
            "avg_abs_error_small": avg_small,
            "paper_large": 0.025,
            "paper_small": 0.091,
        },
    )

    assert avg_large < 0.065
    assert max(abs(e) for e in large_errs) < 0.10
    assert avg_small < 0.10
