"""Figure 9: error rate of the Equation 5 closed form, 11 and 2 Mb/s.

At 11 Mb/s the paper reports 2.4% average error for large files (5.3%
for small files excluding the three smallest).  At 2 Mb/s we compare the
generic link-parameterized model against DES measurements and also print
the paper's literal 2 Mb/s coefficients; the scanned TR's constants do
not decompose under Table 1's powers (see EXPERIMENTS.md), so the
assertion is on our self-consistent model, and the crossover constant
(factor 27 to fill the idle time) is checked against the paper's.
"""

import pytest

from repro import units
from repro.analysis.fitting import relative_errors
from repro.analysis.report import ascii_table
from repro.simulator.des import DesSession
from benchmarks.common import large_specs, small_specs, write_artifact


def paper_2mbps_formula(s_bytes: float, sc_bytes: float) -> float:
    """The TR's literal 2 Mb/s equation (Section 4.2)."""
    s = units.bytes_to_mb(s_bytes)
    sc = units.bytes_to_mb(sc_bytes)
    return 2.0125 * s + 12.4291 * sc + 0.0275


def compute(model, model_2mbps):
    des11 = DesSession(model)
    des2 = DesSession(model_2mbps)
    rows = []
    for spec in large_specs() + small_specs():
        s = spec.size_bytes
        sc = int(s / spec.gzip_factor)
        m11 = des11.precompressed(s, sc, interleave=True).energy_j
        c11 = model.closed_form_energy_j(s, spec.gzip_factor)
        m2 = des2.precompressed(s, sc, interleave=True).energy_j
        c2 = model_2mbps.closed_form_energy_j(s, spec.gzip_factor)
        rows.append((spec, m11, c11, m2, c2, paper_2mbps_formula(s, sc)))
    return rows


def test_fig9_closed_form_error(benchmark, model, model_2mbps):
    rows = benchmark.pedantic(
        compute, args=(model, model_2mbps), rounds=1, iterations=1
    )
    large = [r for r in rows if not r[0].is_small]
    err11 = relative_errors([r[1] for r in large], [r[2] for r in large])
    err2 = relative_errors([r[3] for r in large], [r[4] for r in large])
    small = [r for r in rows if r[0].is_small]
    err11_small = relative_errors([r[1] for r in small], [r[2] for r in small])

    table = [
        (
            spec.name,
            f"{e11 * 100:+.1f}%",
            f"{e2 * 100:+.1f}%",
            round(m2, 2),
            round(paper2, 2),
        )
        for (spec, m11, c11, m2, c2, paper2), e11, e2 in zip(
            large, err11, err2
        )
    ]
    avg11 = sum(abs(e) for e in err11) / len(err11)
    avg2 = sum(abs(e) for e in err2) / len(err2)
    avg11_small = sum(abs(e) for e in err11_small) / len(err11_small)
    text = ascii_table(
        ["file", "11Mb/s err", "2Mb/s err", "2Mb/s DES J", "TR literal J"],
        table,
        title="Figure 9 - closed-form (Eq.5) error vs DES measurements",
    )
    text += (
        f"\n\n11 Mb/s large files: avg |error| {avg11 * 100:.1f}% (paper: 2.4%)"
        f"\n11 Mb/s small files: avg |error| {avg11_small * 100:.1f}% (paper: 5.3%)"
        f"\n2 Mb/s large files: avg |error| {avg2 * 100:.1f}% "
        "(vs our link-parameterized model; TR-literal column shown for reference)"
    )
    write_artifact(
        "fig9_model_error_rates",
        text,
        data={
            "per_file": [
                {
                    "file": spec.name,
                    "err_11mbps": e11,
                    "err_2mbps": e2,
                    "des_2mbps_j": m2,
                    "tr_literal_j": paper2,
                }
                for (spec, m11, c11, m2, c2, paper2), e11, e2 in zip(
                    large, err11, err2
                )
            ],
            "avg_abs_error": {
                "large_11mbps": avg11,
                "small_11mbps": avg11_small,
                "large_2mbps": avg2,
            },
        },
    )

    assert avg11 < 0.05
    assert avg11_small < 0.08
    assert avg2 < 0.08
    # The fill-idle crossover at 2 Mb/s reproduces the paper's 27.
    assert model_2mbps.fill_idle_factor() == pytest.approx(27.0, rel=0.05)
