"""Extension bench: precompression cache vs compress-on-demand.

Section 1: the proxy compresses "in advance or on demand".  Under a
Zipf-popular trace the distinction is a cache question — the first
request for an object pays on-demand compression, repeats serve the
cached precompressed copy.  This bench replays a trace both ways and
shows that with realistic skew the warm cache converts nearly all
requests to the precompressed cost, closing the tool-style on-demand
penalty.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.core import thresholds
from repro.workload.traces import ZipfTraceGenerator
from benchmarks.common import write_artifact


def session_energy(analytic, entry, mode, model):
    s = entry.raw_bytes
    worthwhile = thresholds.compression_worthwhile(s, entry.gzip_factor, model)
    if not worthwhile:
        return analytic.raw(s).energy_j
    sc = int(s / entry.gzip_factor)
    if mode == "precompressed":
        return analytic.precompressed(s, sc, interleave=True).energy_j
    if mode == "ondemand":
        return analytic.ondemand(s, sc, overlap=False).energy_j
    raise ValueError(mode)


def compute(model, analytic):
    trace = ZipfTraceGenerator(zipf_alpha=0.9, seed=11).generate(120)
    rows = []
    always_ondemand = 0.0
    always_pre = 0.0
    cached = 0.0
    seen = set()
    hits = 0
    for entry in trace:
        always_ondemand += session_energy(analytic, entry, "ondemand", model)
        always_pre += session_energy(analytic, entry, "precompressed", model)
        if entry.name in seen:
            hits += 1
            cached += session_energy(analytic, entry, "precompressed", model)
        else:
            seen.add(entry.name)
            cached += session_energy(analytic, entry, "ondemand", model)
    hit_rate = hits / len(trace)
    rows = [
        ("always on-demand (tool-style)", round(always_ondemand, 1)),
        ("cold cache -> warm (realistic)", round(cached, 1)),
        ("always precompressed (ideal)", round(always_pre, 1)),
    ]
    return rows, hit_rate


def test_cache_study(benchmark, model, analytic):
    rows, hit_rate = benchmark.pedantic(
        compute, args=(model, analytic), rounds=1, iterations=1
    )
    text = ascii_table(
        ["serving policy", "trace energy (J)"],
        rows,
        title=f"Precompression cache study (120 Zipf requests, hit rate {hit_rate:.0%})",
    )
    write_artifact(
        "cache_study",
        text,
        data={
            "policies": [
                {"policy": label, "trace_energy_j": joules}
                for label, joules in rows
            ],
            "hit_rate": hit_rate,
        },
    )

    ondemand_j = rows[0][1]
    cached_j = rows[1][1]
    ideal_j = rows[2][1]
    assert ideal_j < cached_j < ondemand_j
    # With Zipf-0.9 skew the warm cache recovers most of the gap.
    recovered = (ondemand_j - cached_j) / (ondemand_j - ideal_j)
    assert recovered > 0.6
    assert hit_rate > 0.6
