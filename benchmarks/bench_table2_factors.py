"""Table 2: compression factors of the corpus under the three schemes.

Runs the native engines (CPython zlib/bz2 plus the package's LZW) over
the regenerated corpus and prints achieved factors next to the paper's.
The gzip column is the calibration target, so it must land within the
corpus validation band; the other columns are checked for the paper's
ordering (bzip2 usually deepest, compress shallowest).
"""

import pytest

from repro.analysis.report import ascii_table
from repro.compression import get_codec
from benchmarks.common import write_artifact

ENGINES = {
    "gzip": "gzip-native",
    "compress": "compress-native",
    "bzip2": "bzip2-native",
}


def compress_corpus(corpus):
    rows = []
    for gf in corpus.files():
        spec = gf.spec
        achieved = {}
        for scheme, engine in ENGINES.items():
            res = get_codec(engine).compress(gf.data)
            achieved[scheme] = res.factor
        rows.append((spec, achieved))
    return rows


def test_table2_compression_factors(benchmark, corpus):
    rows = benchmark.pedantic(compress_corpus, args=(corpus,), rounds=1, iterations=1)
    table = []
    gzip_errors = []
    ordering_votes = 0
    contests = 0
    for spec, achieved in rows:
        table.append(
            (
                spec.name,
                spec.size_bytes,
                f"{spec.gzip_factor:.2f}/{achieved['gzip']:.2f}",
                f"{spec.compress_factor:.2f}/{achieved['compress']:.2f}",
                f"{spec.bzip2_factor:.2f}/{achieved['bzip2']:.2f}",
            )
        )
        gzip_errors.append(
            abs(achieved["gzip"] - spec.gzip_factor) / spec.gzip_factor
        )
        if spec.gzip_factor > 1.3:
            contests += 1
            if achieved["bzip2"] >= achieved["compress"]:
                ordering_votes += 1
    text = ascii_table(
        ["file", "size", "gzip paper/ours", "compress paper/ours", "bzip2 paper/ours"],
        table,
        title="Table 2 - compression factors (paper / regenerated corpus)",
    )
    avg_err = sum(gzip_errors) / len(gzip_errors)
    text += f"\n\ngzip-column mean |error|: {avg_err * 100:.1f}%"
    write_artifact(
        "table2_factors",
        text,
        data={
            "files": [
                {
                    "name": spec.name,
                    "size": spec.size_bytes,
                    "paper": {
                        "gzip": spec.gzip_factor,
                        "compress": spec.compress_factor,
                        "bzip2": spec.bzip2_factor,
                    },
                    "ours": achieved,
                }
                for spec, achieved in rows
            ],
            "gzip_mean_abs_error": avg_err,
        },
    )

    assert avg_err < 0.10
    assert max(gzip_errors) < 0.17
    # bzip2 >= compress on compressible files, as in the paper.
    assert ordering_votes >= contests * 0.9
