# Convenience targets for the reproduction.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test ci bench fuzz chaos coverage trace-check examples artifacts clean \
	campaign-smoke baseline campaign-perf campaign-mega proxy-smoke crash-chaos fsck-smoke \
	fleet-smoke

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# What the GitHub workflow runs (the tier-1 gate), plus the 10k-cell
# batch-engine smoke: speedup floor + byte-equality spot check.
ci:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/bench_batch_engine.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Long-budget corruption fuzzing of every registered codec.
fuzz:
	REPRO_FUZZ_EXAMPLES=500 $(PYTHON) -m pytest \
		tests/compression/test_mutation_properties.py \
		tests/compression/test_fuzzing.py -q

# Long-budget fault-timeline chaos: random schedules, bombs, mutations,
# and the cross-engine ledger differential suite.
chaos:
	REPRO_FUZZ_EXAMPLES=200 $(PYTHON) -m pytest \
		tests/integration/test_timeline_properties.py \
		tests/compression/test_bomb_guards.py \
		tests/compression/test_mutation_properties.py \
		tests/compression/test_fuzzing.py \
		tests/observability/test_engine_trace_diff.py -q

# Line-coverage gate (needs pytest-cov; CI installs it).
coverage:
	$(PYTHON) -m pytest tests/ -q --cov=repro --cov-fail-under=80

# End-to-end observability check: trace one session per engine, then
# let `repro trace summarize` audit span/energy conservation offline.
trace-check:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for engine in analytic des; do \
		echo "== $$engine"; \
		$(PYTHON) -m repro simulate --size-mb 1 --engine $$engine \
			--scenario interleaved --trace "$$tmp/$$engine.jsonl" \
			--metrics "$$tmp/$$engine.prom" >/dev/null; \
		$(PYTHON) -m repro trace summarize "$$tmp/$$engine.jsonl" || exit 1; \
		grep -q "repro_metrics_schema_version 1" "$$tmp/$$engine.prom" || exit 1; \
	done

# CI campaign gate: run the checked-in smoke campaign cold, rerun it
# warm from the shared cache (must recompute zero cells and reproduce
# results.jsonl byte for byte), then diff against the pinned baseline
# (non-zero exit on any out-of-tolerance drift).
campaign-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(PYTHON) -m repro campaign run --spec benchmarks/campaigns/smoke.json \
		--out "$$tmp/cold" --cache-dir "$$tmp/cache" -j 2 || exit 1; \
	$(PYTHON) -m repro campaign run --spec benchmarks/campaigns/smoke.json \
		--out "$$tmp/warm" --cache-dir "$$tmp/cache" -j 2 \
		| tee "$$tmp/warm.log" || exit 1; \
	grep -q "executed 0" "$$tmp/warm.log" || \
		{ echo "FAIL: warm rerun recomputed cells"; exit 1; }; \
	cmp "$$tmp/cold/results.jsonl" "$$tmp/warm/results.jsonl" || \
		{ echo "FAIL: cold and warm results differ"; exit 1; }; \
	$(PYTHON) -m repro campaign status --out "$$tmp/warm" || exit 1; \
	$(PYTHON) -m repro campaign fsck --out "$$tmp/warm" \
		--cache-dir "$$tmp/cache" || exit 1; \
	$(PYTHON) -m repro campaign diff --out "$$tmp/warm" \
		--baseline benchmarks/campaigns/smoke_baseline.jsonl

# CI fsck gate over the checked-in artifacts: the pinned baseline must
# always verify (report-only pass piggybacked on a fresh smoke run).
fsck-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(PYTHON) -m repro campaign run --spec benchmarks/campaigns/smoke.json \
		--out "$$tmp/run" --no-cache >/dev/null || exit 1; \
	$(PYTHON) -m repro campaign fsck --out "$$tmp/run" \
		--baseline benchmarks/campaigns/smoke_baseline.jsonl

# CI crash-chaos gate: SIGKILL a live campaign at every seeded crash
# point (append tears, both results renames, the manifest journal),
# resume each wreck, and require byte-identical results + clean fsck.
crash-chaos:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(PYTHON) -m repro campaign crash-chaos \
		--spec benchmarks/campaigns/smoke.json --out "$$tmp/chaos" \
		-j 2 --min-fired 10

# CI proxy gate: a seeded chaos storm over the in-process transport.
# The load runs twice; the CLI exits non-zero if any partial output
# leaks, and the two JSON reports must be byte-identical (everything
# in them is modeled, so a fixed seed fully determines the bytes).
proxy-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for run in a b; do \
		$(PYTHON) -m repro proxy load -n 200 --clients 4 --seed 3 \
			--chaos --corpus-scale 0.02 --json \
			> "$$tmp/$$run.json" || exit 1; \
	done; \
	cmp "$$tmp/a.json" "$$tmp/b.json" || \
		{ echo "FAIL: chaos load is not byte-stable at a fixed seed"; exit 1; }; \
	$(PYTHON) -c "import json,sys; doc=json.load(open('$$tmp/a.json')); \
	outc=doc['outcomes']; total=sum(outc.values()); \
	assert total == 200, f'unaccounted requests: {total}'; \
	assert outc['ok'] > 0, 'no request completed'; \
	assert doc['service']['outstanding_partials'] == 0, 'leaked partials'; \
	assert sum(doc['chaos_injected'].values()) > 0, 'chaos never fired'; \
	print('OK: 200/200 accounted,', outc['ok'], 'ok,', \
	      doc['degraded'], 'degraded,', doc['service']['breaker_trips'], \
	      'breaker trips, 0 leaked partials')"

# CI fleet gate: the population layer's end-to-end contract at CI
# scale.  The CLI runs twice and the canonical JSON must be
# byte-identical (synthesis is a pure function of seed + spec), then
# the population bench runs at 50k devices — which still exercises the
# DES-agreement gate, the wall-clock budget, and the determinism
# assertion the 1M-device run pins.
fleet-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for run in a b; do \
		$(PYTHON) -m repro fleet --population 20000 --mix balanced \
			--policy fleet-advised --seed 7 --json \
			> "$$tmp/$$run.json" || exit 1; \
	done; \
	cmp "$$tmp/a.json" "$$tmp/b.json" || \
		{ echo "FAIL: fleet summary is not byte-stable at a fixed seed"; exit 1; }; \
	echo "OK: 20k-device summary byte-identical across runs"; \
	REPRO_FLEET_BENCH_DEVICES=50000 \
		$(PYTHON) benchmarks/bench_fleet_population.py

# Refresh the pinned smoke baseline after an intentional model change.
baseline:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(PYTHON) -m repro campaign run --spec benchmarks/campaigns/smoke.json \
		--out "$$tmp/run" --no-cache || exit 1; \
	$(PYTHON) -m repro campaign baseline --out "$$tmp/run" \
		--baseline benchmarks/campaigns/smoke_baseline.jsonl

# Opt-in perf gates.  First the vectorized batch engine on a 100k-cell
# Eq. 6 grid (asserts the >=50x speedup floor and byte-equality against
# the scalar executor), then the dense Eq. 6 sweep at -j 1 vs -j 4 and
# with/without the batch fast path — all three result files must be
# byte-identical.  -j speedup is only meaningful on a multi-core box.
campaign-perf:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	echo "== batch engine 100k-cell speedup gate"; \
	REPRO_BATCH_BENCH_CELLS=100000 \
		$(PYTHON) benchmarks/bench_batch_engine.py || exit 1; \
	echo "== eq6-dense -j 1"; \
	$(PYTHON) -m repro campaign run --preset eq6-dense \
		--out "$$tmp/j1" --no-cache -j 1 || exit 1; \
	echo "== eq6-dense -j 4"; \
	$(PYTHON) -m repro campaign run --preset eq6-dense \
		--out "$$tmp/j4" --no-cache -j 4 || exit 1; \
	echo "== eq6-dense -j 4 --no-batch"; \
	$(PYTHON) -m repro campaign run --preset eq6-dense \
		--out "$$tmp/scalar" --no-cache -j 4 --no-batch || exit 1; \
	cmp "$$tmp/j1/results.jsonl" "$$tmp/j4/results.jsonl" || \
		{ echo "FAIL: -j 1 and -j 4 results differ"; exit 1; }; \
	cmp "$$tmp/j1/results.jsonl" "$$tmp/scalar/results.jsonl" && \
		echo "OK: batch/scalar and -j 1/-j 4 results are byte-identical"

# The scale demonstration: the ~1M-cell eq6-mega preset through the
# batch engine into a 16-way sharded store, then a full fsck over the
# sharded layout.  Minutes end to end; the scalar path would take
# roughly half a day.
campaign-mega:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(PYTHON) -m repro campaign run --preset eq6-mega \
		--out "$$tmp/mega" --no-cache --shards 16 || exit 1; \
	$(PYTHON) -m repro campaign status --out "$$tmp/mega" || exit 1; \
	$(PYTHON) -m repro campaign fsck --out "$$tmp/mega" && \
		echo "OK: 1M-cell sharded campaign verifies clean"

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; echo; done

# The final deliverable logs.
artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt benchmarks/results/*.json
	find . -name __pycache__ -type d -exec rm -rf {} +
