# Convenience targets for the reproduction.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test ci bench fuzz chaos examples artifacts clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# What the GitHub workflow runs (the tier-1 gate).
ci:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Long-budget corruption fuzzing of every registered codec.
fuzz:
	REPRO_FUZZ_EXAMPLES=500 $(PYTHON) -m pytest \
		tests/compression/test_mutation_properties.py \
		tests/compression/test_fuzzing.py -q

# Long-budget fault-timeline chaos: random schedules, bombs, mutations.
chaos:
	REPRO_FUZZ_EXAMPLES=200 $(PYTHON) -m pytest \
		tests/integration/test_timeline_properties.py \
		tests/compression/test_bomb_guards.py \
		tests/compression/test_mutation_properties.py \
		tests/compression/test_fuzzing.py -q

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; echo; done

# The final deliverable logs.
artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt benchmarks/results/*.json
	find . -name __pycache__ -type d -exec rm -rf {} +
