# Convenience targets for the reproduction.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test ci bench fuzz chaos coverage trace-check examples artifacts clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# What the GitHub workflow runs (the tier-1 gate).
ci:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Long-budget corruption fuzzing of every registered codec.
fuzz:
	REPRO_FUZZ_EXAMPLES=500 $(PYTHON) -m pytest \
		tests/compression/test_mutation_properties.py \
		tests/compression/test_fuzzing.py -q

# Long-budget fault-timeline chaos: random schedules, bombs, mutations,
# and the cross-engine ledger differential suite.
chaos:
	REPRO_FUZZ_EXAMPLES=200 $(PYTHON) -m pytest \
		tests/integration/test_timeline_properties.py \
		tests/compression/test_bomb_guards.py \
		tests/compression/test_mutation_properties.py \
		tests/compression/test_fuzzing.py \
		tests/observability/test_engine_trace_diff.py -q

# Line-coverage gate (needs pytest-cov; CI installs it).
coverage:
	$(PYTHON) -m pytest tests/ -q --cov=repro --cov-fail-under=80

# End-to-end observability check: trace one session per engine, then
# let `repro trace summarize` audit span/energy conservation offline.
trace-check:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for engine in analytic des; do \
		echo "== $$engine"; \
		$(PYTHON) -m repro simulate --size-mb 1 --engine $$engine \
			--scenario interleaved --trace "$$tmp/$$engine.jsonl" \
			--metrics "$$tmp/$$engine.prom" >/dev/null; \
		$(PYTHON) -m repro trace summarize "$$tmp/$$engine.jsonl" || exit 1; \
		grep -q "repro_metrics_schema_version 1" "$$tmp/$$engine.prom" || exit 1; \
	done

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; echo; done

# The final deliverable logs.
artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results/*.txt benchmarks/results/*.json
	find . -name __pycache__ -type d -exec rm -rf {} +
